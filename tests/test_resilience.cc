/**
 * @file
 * Resilience battery: per-tenant quotas, the graceful-degradation
 * ladder, the idle/half-open connection reaper, the retrying
 * client, and the fault-injection chaos gate.
 *
 *   TenantGovernor — token-bucket and in-flight quotas, RAII ticket
 *   release, per-tenant overrides, and quota enforcement ACROSS
 *   connections of one tenant over a live server (the quota follows
 *   the kHello identity, not the socket).
 *
 *   OverloadShedder — ladder ordering (kBatch before kNormal before
 *   kHigh) under forced levels, automatic rise under sustained
 *   queue-latency pressure, automatic fall once pressure is gone
 *   (including out of a level-3 blackout, where no samples arrive),
 *   and the session answering shed requests with typed kOverloaded.
 *
 *   Reaper — idle connections are reaped and their threads joined,
 *   half-open connections (partial header, then silence) are
 *   reaped, and a connection with an in-flight request is NOT
 *   reaped no matter how quiet its socket is.
 *
 *   RetryingClient — reconnects after a server-side EOF (the reaper
 *   provides one), retries kQuotaExceeded until the bucket refills,
 *   passes non-retryable statuses through untouched, and bounds a
 *   call by its timeout.
 *
 *   Chaos — with the fault injector corrupting the wire (drops,
 *   delays, truncations, header bit-flips, short writes) on top of
 *   a tiny admission gate, a tenant quota, the shed ladder, and a
 *   fast reaper, every request must eventually complete
 *   BIT-IDENTICAL to the local engine, and afterwards no admission
 *   slot or tenant token may be leaked (probed via the governor and
 *   a full-burst re-admission).
 *
 * Thread counts: SMASH_SERVE_THREADS pins one count (the ctest
 * variants run 1, 2, and 8); unset, every count is covered.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "engine/dispatch.hh"
#include "formats/csr_matrix.hh"
#include "net/client.hh"
#include "net/demo_matrices.hh"
#include "net/fault.hh"
#include "net/retry_client.hh"
#include "net/server.hh"
#include "serve/session.hh"
#include "serve/shed.hh"
#include "serve/tenant.hh"
#include "sim/exec_model.hh"

namespace smash
{
namespace
{

using namespace std::chrono_literals;

std::vector<int>
threadCounts()
{
    if (const char* env = std::getenv("SMASH_SERVE_THREADS"))
        return {std::atoi(env)};
    return {1, 2, 8};
}

std::string
socketPath(const char* tag)
{
    return "/tmp/smash_res_" + std::to_string(::getpid()) + "_" +
        tag + ".sock";
}

/** Poll @p cond up to @p budget; resilience teardown is eventually-
 *  consistent (tickets die with the request envelope, slightly after
 *  the response), so leak probes must wait, not sample once. */
bool
eventually(const std::function<bool()>& cond,
           std::chrono::milliseconds budget = 2000ms)
{
    const auto end = std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < end) {
        if (cond())
            return true;
        std::this_thread::sleep_for(2ms);
    }
    return cond();
}

std::vector<Value>
localSpmv(const fmt::CsrMatrix& csr, const std::vector<Value>& x)
{
    sim::NativeExec e;
    std::vector<Value> y(static_cast<std::size_t>(csr.rows()),
                         Value(0));
    eng::spmv(csr, x, y, e);
    return y;
}

bool
bitIdentical(const std::vector<Value>& a, const std::vector<Value>& b)
{
    return a.size() == b.size() &&
        (a.empty() ||
         std::memcmp(a.data(), b.data(),
                     a.size() * sizeof(Value)) == 0);
}

/** Disarm the process-global injector when a test scope ends. */
struct FaultGuard
{
    ~FaultGuard() { net::FaultInjector::global().disable(); }
};

// --------------------------------------------------------------
// TenantGovernor (unit)
// --------------------------------------------------------------

TEST(TenantGovernor, UnlimitedQuotaIsPassThroughButCounted)
{
    serve::TenantGovernor governor;
    auto a = governor.admit("t");
    auto b = governor.admit("t");
    EXPECT_TRUE(a.status.ok());
    EXPECT_TRUE(b.status.ok());
    EXPECT_EQ(governor.inflightOf("t"), 2);
    a.ticket.reset();
    EXPECT_EQ(governor.inflightOf("t"), 1);
    b.ticket.reset();
    EXPECT_EQ(governor.inflightOf("t"), 0);
    EXPECT_EQ(governor.rejects(), 0u);
}

TEST(TenantGovernor, RateLimitDeniesWhenBucketEmptyThenRefills)
{
    serve::TenantQuota quota;
    quota.ratePerSec = 100;
    quota.burst = 2;
    serve::TenantGovernor governor(quota);

    EXPECT_TRUE(governor.admit("t").status.ok());
    EXPECT_TRUE(governor.admit("t").status.ok());
    const auto denied = governor.admit("t");
    EXPECT_FALSE(denied.status.ok());
    EXPECT_EQ(denied.status.code(),
              serve::StatusCode::kQuotaExceeded);
    EXPECT_EQ(denied.ticket, nullptr);
    EXPECT_EQ(governor.rejects(), 1u);

    // 100 tokens/s: the bucket must be re-admittable well within
    // the poll budget.
    EXPECT_TRUE(eventually(
        [&] { return governor.admit("t").status.ok(); }));
}

TEST(TenantGovernor, InflightCapReleasesWithTicket)
{
    serve::TenantQuota quota;
    quota.maxInflight = 2;
    serve::TenantGovernor governor(quota);

    auto a = governor.admit("t");
    auto b = governor.admit("t");
    EXPECT_TRUE(a.status.ok());
    EXPECT_TRUE(b.status.ok());
    const auto denied = governor.admit("t");
    EXPECT_EQ(denied.status.code(),
              serve::StatusCode::kQuotaExceeded);

    // Another tenant has its own slots under the same defaults.
    auto other = governor.admit("u");
    EXPECT_TRUE(other.status.ok());

    a.ticket.reset();
    EXPECT_TRUE(governor.admit("t").status.ok());
}

TEST(TenantGovernor, SetQuotaOverridesDefaultsPerTenant)
{
    serve::TenantGovernor governor; // unlimited defaults
    serve::TenantQuota strict;
    strict.maxInflight = 1;
    governor.setQuota("strict", strict);

    auto held = governor.admit("strict");
    EXPECT_TRUE(held.status.ok());
    EXPECT_FALSE(governor.admit("strict").status.ok());
    // The default tenant is untouched by the override.
    EXPECT_TRUE(governor.admit("lax").status.ok());
    EXPECT_TRUE(governor.admit("lax").status.ok());
}

// --------------------------------------------------------------
// OverloadShedder (unit)
// --------------------------------------------------------------

TEST(OverloadShedder, ForcedLaddersShedInPriorityOrder)
{
    serve::ShedOptions options;
    serve::OverloadShedder shedder(options, /*max_inflight=*/0);

    EXPECT_FALSE(shedder.enabled());
    EXPECT_TRUE(shedder.admit(serve::Priority::kBatch));

    shedder.forceLevel(1);
    EXPECT_TRUE(shedder.enabled());
    EXPECT_TRUE(shedder.admit(serve::Priority::kHigh));
    EXPECT_TRUE(shedder.admit(serve::Priority::kNormal));
    EXPECT_FALSE(shedder.admit(serve::Priority::kBatch));

    shedder.forceLevel(2);
    EXPECT_TRUE(shedder.admit(serve::Priority::kHigh));
    EXPECT_FALSE(shedder.admit(serve::Priority::kNormal));
    EXPECT_FALSE(shedder.admit(serve::Priority::kBatch));

    shedder.forceLevel(3);
    EXPECT_FALSE(shedder.admit(serve::Priority::kHigh));
    EXPECT_FALSE(shedder.admit(serve::Priority::kNormal));
    EXPECT_FALSE(shedder.admit(serve::Priority::kBatch));
    EXPECT_EQ(shedder.shedTotal(), 6u);

    shedder.forceLevel(-1);
    EXPECT_EQ(shedder.level(), 0);
    EXPECT_TRUE(shedder.admit(serve::Priority::kBatch));
}

TEST(OverloadShedder, RisesUnderSustainedPressureOneLevelPerHold)
{
    serve::ShedOptions options;
    options.queueTarget = 1000us;
    options.hold = 5ms;
    serve::OverloadShedder shedder(options, /*max_inflight=*/0);

    // Keep feeding 50x-target latency; the ladder must climb one
    // level per hold interval, not jump straight to blackout.
    const auto start = std::chrono::steady_clock::now();
    int max_seen = 0;
    while (shedder.level() < 3 &&
           std::chrono::steady_clock::now() - start < 3s) {
        shedder.noteQueueLatency(50000);
        const int level = shedder.level();
        EXPECT_LE(level - max_seen, 1) << "ladder skipped a level";
        max_seen = std::max(max_seen, level);
        shedder.admit(serve::Priority::kBatch);
        std::this_thread::sleep_for(1ms);
    }
    EXPECT_EQ(shedder.level(), 3);

    // Blackout: no deliveries, so no fresh samples — the EWMA decay
    // must still walk the ladder back down to 0.
    EXPECT_TRUE(eventually(
        [&] {
            shedder.admit(serve::Priority::kHigh);
            return shedder.level() == 0;
        },
        3000ms));
    EXPECT_TRUE(shedder.admit(serve::Priority::kBatch));
}

TEST(SessionShed, ShedRequestsResolveToTypedOverloaded)
{
    serve::MatrixRegistry registry;
    net::populateDemoRegistry(registry, 1);
    serve::SessionOptions options;
    options.threads = 2;
    options.shed.queueTarget = 1ms;
    serve::Session session(registry, options);

    session.shedder().forceLevel(3);
    auto shed = session
                    .submit(serve::SpmvRequest{
                        "ranker", net::demoVector(0), {}})
                    .get();
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.status().code(), serve::StatusCode::kOverloaded);
    EXPECT_NE(shed.status().message().find("degradation level 3"),
              std::string::npos);
    EXPECT_GE(session.overloadRejects(), 1u);
    EXPECT_GE(session.shedder().shedTotal(), 1u);

    session.shedder().forceLevel(-1);
    auto ok = session
                  .submit(serve::SpmvRequest{
                      "ranker", net::demoVector(0), {}})
                  .get();
    EXPECT_TRUE(ok.ok());
    session.close();
}

// --------------------------------------------------------------
// Tenant quotas across connections (server-level)
// --------------------------------------------------------------

TEST(TenantQuotaWire, RateLimitSharedAcrossConnectionsOfOneTenant)
{
    for (const int threads : threadCounts()) {
        serve::MatrixRegistry registry;
        net::populateDemoRegistry(registry, 1);
        net::ServerOptions options;
        options.unixPath = socketPath("quota_rate");
        options.session.threads = threads;
        // A 2-token bucket refilling far too slowly to matter
        // within the test: exactly two admits per tenant, wherever
        // they come from.
        options.tenantQuota.ratePerSec = 0.001;
        options.tenantQuota.burst = 2;
        net::Server server(registry, options);
        std::string error;
        ASSERT_TRUE(server.start(error)) << error;

        net::Client conn1, conn2, conn3;
        ASSERT_TRUE(
            conn1.connectUnixSocket(options.unixPath, error));
        ASSERT_TRUE(
            conn2.connectUnixSocket(options.unixPath, error));
        ASSERT_TRUE(
            conn3.connectUnixSocket(options.unixPath, error));
        ASSERT_TRUE(conn1.hello("team-a").ok());
        ASSERT_TRUE(conn2.hello("team-a").ok());
        ASSERT_TRUE(conn3.hello("team-b").ok());

        // Two tokens, spent across two different connections...
        EXPECT_TRUE(conn1
                        .spmv(serve::SpmvRequest{
                            "ranker", net::demoVector(0), {}})
                        .ok());
        EXPECT_TRUE(conn2
                        .spmv(serve::SpmvRequest{
                            "ranker", net::demoVector(1), {}})
                        .ok());
        // ...so the third request is denied on EITHER connection:
        // the bucket follows the tenant, not the socket.
        auto denied = conn1.spmv(
            serve::SpmvRequest{"ranker", net::demoVector(2), {}});
        ASSERT_FALSE(denied.ok());
        EXPECT_EQ(denied.status().code(),
                  serve::StatusCode::kQuotaExceeded);
        EXPECT_GE(server.governor().rejects(), 1u);

        // A different tenant has its own bucket.
        EXPECT_TRUE(conn3
                        .spmv(serve::SpmvRequest{
                            "ranker", net::demoVector(3), {}})
                        .ok());

        // Leak probe: every response resolved, so no slot is held.
        EXPECT_TRUE(eventually([&] {
            return server.governor().inflightOf("team-a") == 0 &&
                server.governor().inflightOf("team-b") == 0;
        }));
        server.shutdown();
    }
}

TEST(TenantQuotaWire, InflightCapSharedAcrossConnections)
{
    for (const int threads : threadCounts()) {
        serve::MatrixRegistry registry;
        net::populateDemoRegistry(registry, 1);
        net::ServerOptions options;
        options.unixPath = socketPath("quota_inflight");
        options.session.threads = threads;
        options.tenantQuota.maxInflight = 2;
        // Park admitted kBatch requests in the batcher long enough
        // to observe the cap deterministically.
        options.session.maxDelay = 10ms;
        options.session.batchDelay = 500ms;
        net::Server server(registry, options);
        std::string error;
        ASSERT_TRUE(server.start(error)) << error;

        net::Client conn1, conn2;
        ASSERT_TRUE(
            conn1.connectUnixSocket(options.unixPath, error));
        ASSERT_TRUE(
            conn2.connectUnixSocket(options.unixPath, error));
        ASSERT_TRUE(conn1.hello("team-a").ok());
        ASSERT_TRUE(conn2.hello("team-a").ok());

        serve::RequestOptions batched;
        batched.priority = serve::Priority::kBatch;
        ASSERT_NE(conn1.sendSpmv(serve::SpmvRequest{
                      "ranker", net::demoVector(0), batched}),
                  0u);
        ASSERT_NE(conn1.sendSpmv(serve::SpmvRequest{
                      "ranker", net::demoVector(1), batched}),
                  0u);
        ASSERT_TRUE(eventually([&] {
            return server.governor().inflightOf("team-a") == 2;
        }));

        // The tenant is at its cap — the OTHER connection is denied.
        auto denied = conn2.spmv(
            serve::SpmvRequest{"ranker", net::demoVector(2), {}});
        ASSERT_FALSE(denied.ok());
        EXPECT_EQ(denied.status().code(),
                  serve::StatusCode::kQuotaExceeded);

        // Drain the parked requests; the slots come back.
        for (int i = 0; i < 2; ++i) {
            const auto resp = conn1.readSpmvResponse();
            ASSERT_TRUE(resp.has_value());
            EXPECT_TRUE(resp->result.ok());
        }
        EXPECT_TRUE(eventually([&] {
            return server.governor().inflightOf("team-a") == 0;
        }));
        EXPECT_TRUE(conn2
                        .spmv(serve::SpmvRequest{
                            "ranker", net::demoVector(3), {}})
                        .ok());
        server.shutdown();
    }
}

// --------------------------------------------------------------
// Idle / half-open reaper
// --------------------------------------------------------------

TEST(Reaper, IdleConnectionIsReapedAndHalfOpenToo)
{
    for (const int threads : threadCounts()) {
        serve::MatrixRegistry registry;
        net::populateDemoRegistry(registry, 1);
        net::ServerOptions options;
        options.unixPath = socketPath("reap_idle");
        options.session.threads = threads;
        options.idleTimeout = 100ms;
        net::Server server(registry, options);
        std::string error;
        ASSERT_TRUE(server.start(error)) << error;

        // Idle: a connection that said hello and went quiet.
        net::Client idle;
        ASSERT_TRUE(idle.connectUnixSocket(options.unixPath, error));
        ASSERT_TRUE(idle.ping().ok());

        // Half-open: a peer that wrote half a header and stalled —
        // without the reaper this pins a read thread forever.
        net::Fd half = net::connectUnix(options.unixPath, error);
        ASSERT_TRUE(half.valid());
        const std::uint8_t partial[8] = {'S', 'M', 'S', 'H'};
        ASSERT_TRUE(net::writeFull(half.get(), partial, 8));

        EXPECT_TRUE(eventually(
            [&] { return server.connectionsReaped() >= 2; }, 3000ms));
        // The reaped idle client sees a clean EOF on its next use.
        EXPECT_FALSE(idle.ping().ok());
        server.shutdown();
    }
}

TEST(Reaper, ConnectionWithInflightRequestIsNotReaped)
{
    for (const int threads : threadCounts()) {
        serve::MatrixRegistry registry;
        net::populateDemoRegistry(registry, 1);
        net::ServerOptions options;
        options.unixPath = socketPath("reap_busy");
        options.session.threads = threads;
        options.idleTimeout = 80ms;
        // The parked kBatch request outlives several reaper scans.
        options.session.maxDelay = 10ms;
        options.session.batchDelay = 400ms;
        net::Server server(registry, options);
        std::string error;
        ASSERT_TRUE(server.start(error)) << error;

        net::Client client;
        ASSERT_TRUE(
            client.connectUnixSocket(options.unixPath, error));
        serve::RequestOptions batched;
        batched.priority = serve::Priority::kBatch;
        ASSERT_NE(client.sendSpmv(serve::SpmvRequest{
                      "ranker", net::demoVector(0), batched}),
                  0u);
        // Quiet socket + in-flight request, across many timeouts:
        // the response must still arrive on this connection.
        const auto resp = client.readSpmvResponse();
        ASSERT_TRUE(resp.has_value());
        EXPECT_TRUE(resp->result.ok());
        EXPECT_EQ(server.connectionsReaped(), 0u);
        server.shutdown();
    }
}

// --------------------------------------------------------------
// RetryingClient
// --------------------------------------------------------------

TEST(RetryingClient, ReconnectsAfterServerSideEofFromTheReaper)
{
    serve::MatrixRegistry registry;
    net::populateDemoRegistry(registry, 1);
    net::ServerOptions options;
    options.unixPath = socketPath("retry_eof");
    options.idleTimeout = 80ms;
    net::Server server(registry, options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    net::Endpoint ep;
    ep.unixPath = options.unixPath;
    net::RetryingClient rc(ep, {}, "team-a");
    EXPECT_TRUE(rc.ping().ok());

    // Let the reaper kill the connection under the client...
    ASSERT_TRUE(eventually(
        [&] { return server.connectionsReaped() >= 1; }, 3000ms));
    // ...then the next call must transparently reconnect (replaying
    // the tenant handshake) and succeed.
    const fmt::CsrMatrix csr =
        fmt::CsrMatrix::fromCoo(net::demoRanker());
    const std::vector<Value> x = net::demoVector(7);
    auto r = rc.spmv(serve::SpmvRequest{"ranker", x, {}});
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_TRUE(bitIdentical(r.value(), localSpmv(csr, x)));
    EXPECT_GE(rc.stats().reconnects, 1u);
    server.shutdown();
}

TEST(RetryingClient, RetriesQuotaDenialUntilTheBucketRefills)
{
    serve::MatrixRegistry registry;
    net::populateDemoRegistry(registry, 1);
    net::ServerOptions options;
    options.unixPath = socketPath("retry_quota");
    options.tenantQuota.ratePerSec = 50;
    options.tenantQuota.burst = 1;
    net::Server server(registry, options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    net::Endpoint ep;
    ep.unixPath = options.unixPath;
    net::RetryPolicy policy;
    policy.maxAttempts = 50;
    policy.initialBackoff = 10ms;
    policy.maxBackoff = 40ms;
    net::RetryingClient rc(ep, policy, "team-a");

    // Burst of 1: the second back-to-back call is denied first, then
    // succeeds off a retry once the 50/s bucket refills (~20ms).
    for (int i = 0; i < 2; ++i) {
        auto r = rc.spmv(
            serve::SpmvRequest{"ranker", net::demoVector(i), {}});
        EXPECT_TRUE(r.ok()) << r.status().toString();
    }
    EXPECT_GE(rc.stats().retries, 1u);
    EXPECT_GE(server.governor().rejects(), 1u);
    server.shutdown();
}

TEST(RetryingClient, NonRetryableStatusPassesThroughUnretried)
{
    serve::MatrixRegistry registry;
    net::populateDemoRegistry(registry, 1);
    net::ServerOptions options;
    options.unixPath = socketPath("retry_notfound");
    net::Server server(registry, options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    net::Endpoint ep;
    ep.unixPath = options.unixPath;
    net::RetryingClient rc(ep);
    auto r = rc.spmv(
        serve::SpmvRequest{"no-such-matrix", net::demoVector(0), {}});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), serve::StatusCode::kNotFound);
    EXPECT_EQ(rc.stats().retries, 0u);
    server.shutdown();
}

TEST(RetryingClient, CallTimeoutBoundsAnUnreachableEndpoint)
{
    net::Endpoint ep;
    ep.unixPath = "/tmp/smash_res_no_such_server.sock";
    net::RetryPolicy policy;
    policy.maxAttempts = 1000;
    policy.callTimeout = 150ms;
    net::RetryingClient rc(ep, policy);

    const auto start = std::chrono::steady_clock::now();
    const serve::Status s = rc.ping();
    const auto took = std::chrono::steady_clock::now() - start;
    EXPECT_FALSE(s.ok());
    EXPECT_LT(took, 5s) << "call timeout did not bound the call";
}

// --------------------------------------------------------------
// Chaos battery
// --------------------------------------------------------------

TEST(Chaos, FaultedWireStaysBitIdenticalAndLeaksNothing)
{
    for (const int threads : threadCounts()) {
        FaultGuard guard;
        net::FaultConfig faults;
        std::string parse_error;
        ASSERT_TRUE(net::parseFaultSpec(
            "drop=0.02,delay=0.02:1,truncate=0.02,bitflip=0.02,"
            "short=0.06,seed=9",
            faults, parse_error))
            << parse_error;
        net::FaultInjector::global().configure(faults);

        serve::MatrixRegistry registry;
        net::populateDemoRegistry(registry, 1);
        net::ServerOptions options;
        options.unixPath = socketPath("chaos");
        options.session.threads = threads;
        options.session.maxInflight = 8;
        options.tenantQuota.ratePerSec = 2000;
        options.tenantQuota.burst = 64;
        options.tenantQuota.maxInflight = 6;
        options.session.shed.queueTarget = 20ms;
        options.idleTimeout = 250ms;
        net::Server server(registry, options);
        std::string error;
        ASSERT_TRUE(server.start(error)) << error;

        const fmt::CsrMatrix csr =
            fmt::CsrMatrix::fromCoo(net::demoRanker());
        constexpr int kClientThreads = 3;
        constexpr int kRequests = 40;
        std::atomic<int> completed{0};
        std::atomic<int> mismatches{0};
        std::atomic<std::uint64_t> retries{0};

        std::vector<std::thread> workers;
        for (int t = 0; t < kClientThreads; ++t)
            workers.emplace_back([&, t] {
                net::Endpoint ep;
                ep.unixPath = options.unixPath;
                net::RetryPolicy policy;
                policy.maxAttempts = 6;
                policy.initialBackoff = 1ms;
                policy.maxBackoff = 30ms;
                policy.jitterSeed = 13 + std::uint64_t(t);
                policy.retryBudgetCap = 0; // retry to completion
                net::RetryingClient rc(
                    ep, policy, "chaos-" + std::to_string(t));
                for (int i = 0; i < kRequests; ++i) {
                    const std::vector<Value> x =
                        net::demoVector(t * 977 + i);
                    const std::vector<Value> expect =
                        localSpmv(csr, x);
                    const auto give_up =
                        std::chrono::steady_clock::now() + 30s;
                    while (std::chrono::steady_clock::now() <
                           give_up) {
                        auto r = rc.spmv(serve::SpmvRequest{
                            "ranker", x, {}});
                        if (!r.ok())
                            continue;
                        if (!bitIdentical(r.value(), expect))
                            mismatches.fetch_add(1);
                        completed.fetch_add(1);
                        break;
                    }
                }
                retries.fetch_add(rc.stats().retries);
            });
        for (std::thread& w : workers)
            w.join();

        EXPECT_EQ(completed.load(), kClientThreads * kRequests);
        EXPECT_EQ(mismatches.load(), 0);
        EXPECT_GT(net::FaultInjector::global().injected(), 0u)
            << "chaos run injected no faults — the battery tested "
               "nothing";

        // Leak probes. Slots: every tenant drains to zero in-flight.
        for (int t = 0; t < kClientThreads; ++t) {
            const std::string tenant =
                "chaos-" + std::to_string(t);
            EXPECT_TRUE(eventually([&] {
                return server.governor().inflightOf(tenant) == 0;
            })) << tenant;
        }
        // Tokens: buckets refill toward burst once traffic stops.
        EXPECT_TRUE(eventually([&] {
            return server.governor().tokensOf("chaos-0") >= 1.0;
        }));
        // Admission gate: with faults off, a full-burst fan-out is
        // admitted and answered — nothing from the chaos run still
        // occupies the gate.
        net::FaultInjector::global().disable();
        server.session().shedder().forceLevel(-1);
        net::Client probe;
        ASSERT_TRUE(
            probe.connectUnixSocket(options.unixPath, error));
        for (int i = 0;
             i < static_cast<int>(options.session.maxInflight); ++i) {
            auto r = probe.spmv(
                serve::SpmvRequest{"ranker", net::demoVector(i), {}});
            EXPECT_TRUE(r.ok()) << r.status().toString();
        }
        probe.close();
        server.shutdown();
    }
}

} // namespace
} // namespace smash
