/**
 * @file
 * Tests for the graph substrate and workloads: graph construction,
 * generators, PageRank (all encodings agree; ranks form a
 * distribution) and Betweenness Centrality (CSR and SMASH agree;
 * known closed-form cases).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "formats/convert.hh"
#include "graph/bc.hh"
#include "sim/exec_model.hh"
#include "graph/generators.hh"
#include "graph/pagerank.hh"

namespace smash::graph
{
namespace
{

using core::HierarchyConfig;
using core::SmashMatrix;
using sim::NativeExec;

TEST(Graph, FromEdgesDeduplicates)
{
    Graph g = Graph::fromEdges(4, {{0, 1}, {0, 1}, {1, 2}, {2, 2}});
    EXPECT_EQ(g.numVertices(), 4);
    EXPECT_EQ(g.numEdges(), 2); // duplicate and self-loop removed
    EXPECT_EQ(g.outDegree(0), 1);
    EXPECT_EQ(g.outDegree(3), 0);
}

TEST(Graph, RejectsOutOfRangeEdges)
{
    EXPECT_THROW(Graph::fromEdges(2, {{0, 5}}), FatalError);
}

TEST(Graph, AdjacencyMatrixMatches)
{
    Graph g = Graph::fromEdges(3, {{0, 1}, {1, 2}, {2, 0}});
    fmt::CsrMatrix adj = g.toAdjacencyMatrix();
    EXPECT_EQ(adj.nnz(), 3);
    EXPECT_EQ(adj.at(0, 1), 1.0);
    EXPECT_EQ(adj.at(1, 0), 0.0);
}

TEST(Graph, PageRankMatrixColumnStochastic)
{
    Graph g = Graph::fromEdges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3},
                                   {3, 0}});
    fmt::CooMatrix m = g.toPageRankMatrix();
    fmt::DenseMatrix d = m.toDense();
    // Column u sums to 1 when outdeg(u) > 0.
    for (Index u = 0; u < 4; ++u) {
        Value sum = 0;
        for (Index v = 0; v < 4; ++v)
            sum += d.at(v, u);
        EXPECT_NEAR(sum, 1.0, 1e-12) << "column " << u;
    }
}

TEST(Generators, RmatHasRequestedShape)
{
    Graph g = rmatGraph(1000, 5000, 17);
    EXPECT_EQ(g.numVertices(), 1000);
    EXPECT_GT(g.numEdges(), 5000); // symmetrized, minus dedup losses
    EXPECT_LT(g.numEdges(), 10001);
}

TEST(Generators, RmatIsSkewed)
{
    Graph g = rmatGraph(2048, 20000, 23);
    Index max_deg = 0;
    double sum_deg = 0;
    for (Vertex v = 0; v < g.numVertices(); ++v) {
        max_deg = std::max(max_deg, g.outDegree(v));
        sum_deg += static_cast<double>(g.outDegree(v));
    }
    double avg = sum_deg / static_cast<double>(g.numVertices());
    EXPECT_GT(static_cast<double>(max_deg), 8.0 * avg);
}

TEST(Generators, GridDegreesBounded)
{
    Graph g = gridGraph(20, 30, 3, 0.0);
    EXPECT_EQ(g.numVertices(), 600);
    for (Vertex v = 0; v < g.numVertices(); ++v) {
        EXPECT_GE(g.outDegree(v), 2);
        EXPECT_LE(g.outDegree(v), 4);
    }
}

TEST(Generators, GridIsSymmetric)
{
    Graph g = gridGraph(8, 8, 3, 0.1);
    fmt::CsrMatrix adj = g.toAdjacencyMatrix();
    fmt::CsrMatrix adj_t = fmt::transpose(adj);
    EXPECT_TRUE(adj.toDense().approxEquals(adj_t.toDense(), 0.0));
}

TEST(Generators, UniformRandomDeterministic)
{
    Graph a = uniformRandomGraph(100, 400, 9);
    Graph b = uniformRandomGraph(100, 400, 9);
    EXPECT_EQ(a.numEdges(), b.numEdges());
    EXPECT_EQ(a.adjacency(), b.adjacency());
}

class PageRankEncodings : public ::testing::TestWithParam<int>
{
};

TEST_P(PageRankEncodings, AllAgree)
{
    Graph g = rmatGraph(256, 1500, static_cast<std::uint64_t>(GetParam()));
    fmt::CooMatrix coo = g.toPageRankMatrix();
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    SmashMatrix smash = SmashMatrix::fromCoo(
        coo, HierarchyConfig::fromPaperNotation({16, 4, 2}));

    PageRankParams params;
    params.iterations = 10;
    NativeExec e;
    auto r_csr = pagerankCsr(csr, params, e);
    auto r_sw = pagerankSmashSw(smash, params, e);
    isa::Bmu bmu;
    auto r_hw = pagerankSmashHw(smash, bmu, params, e);

    ASSERT_EQ(r_csr.size(), r_sw.size());
    ASSERT_EQ(r_csr.size(), r_hw.size());
    for (std::size_t i = 0; i < r_csr.size(); ++i) {
        EXPECT_NEAR(r_csr[i], r_sw[i], 1e-9);
        EXPECT_NEAR(r_csr[i], r_hw[i], 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageRankEncodings,
                         ::testing::Values(1, 2, 3));

TEST(PageRank, RanksArePositiveAndBounded)
{
    Graph g = rmatGraph(512, 3000, 77);
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(g.toPageRankMatrix());
    NativeExec e;
    PageRankParams params;
    params.iterations = 20;
    auto ranks = pagerankCsr(csr, params, e);
    double sum = 0;
    for (Value r : ranks) {
        EXPECT_GT(r, 0.0);
        EXPECT_LT(r, 1.0);
        sum += r;
    }
    // With dangling vertices rank mass can leak below 1.
    EXPECT_LE(sum, 1.0 + 1e-9);
    EXPECT_GT(sum, 0.2);
}

TEST(PageRank, StarCenterRanksHighest)
{
    // Star: every leaf points at vertex 0.
    std::vector<std::pair<Vertex, Vertex>> edges;
    for (Vertex v = 1; v < 20; ++v)
        edges.push_back({v, 0});
    Graph g = Graph::fromEdges(20, edges);
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(g.toPageRankMatrix());
    NativeExec e;
    auto ranks = pagerankCsr(csr, PageRankParams{}, e);
    for (std::size_t v = 1; v < ranks.size(); ++v)
        EXPECT_GT(ranks[0], ranks[v]);
}

TEST(Bc, PathGraphCenterHighest)
{
    // Path 0-1-2-3-4 (undirected): vertex 2 has max betweenness.
    std::vector<std::pair<Vertex, Vertex>> edges;
    for (Vertex v = 0; v + 1 < 5; ++v) {
        edges.push_back({v, v + 1});
        edges.push_back({v + 1, v});
    }
    Graph g = Graph::fromEdges(5, edges);
    fmt::CsrMatrix adj = g.toAdjacencyMatrix();
    NativeExec e;
    BcParams params;
    params.numSources = 5; // exact
    auto bc = bcCsr(adj, params, e);
    for (Index v = 0; v < 5; ++v) {
        if (v != 2)
            EXPECT_GT(bc[2], bc[static_cast<std::size_t>(v)]);
    }
}

class BcEncodings : public ::testing::TestWithParam<int>
{
};

TEST_P(BcEncodings, CsrAndSmashAgree)
{
    Graph g = rmatGraph(200, 900, static_cast<std::uint64_t>(
        100 + GetParam()));
    fmt::CsrMatrix adj = g.toAdjacencyMatrix();
    SmashMatrix smash = SmashMatrix::fromCoo(adj.toCoo(),
                                             HierarchyConfig({2}));
    NativeExec e;
    BcParams params;
    params.numSources = 6;
    auto bc_csr = bcCsr(adj, params, e);
    isa::Bmu bmu;
    auto bc_hw = bcSmashHw(smash, bmu, params, e);
    ASSERT_EQ(bc_csr.size(), bc_hw.size());
    for (std::size_t v = 0; v < bc_csr.size(); ++v)
        EXPECT_NEAR(bc_csr[v], bc_hw[v], 1e-9) << "vertex " << v;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BcEncodings, ::testing::Values(1, 2, 3));

TEST(BcCost, SmashHwCheaperThanCsr)
{
    // Large enough that the per-vertex state arrays spill past L2:
    // CSR's dependent state loads then expose their miss latency,
    // which is where SMASH's register-sourced indices win (the
    // cache-resident case shows no benefit, as in the paper, whose
    // graph inputs are millions of vertices).
    Graph g = rmatGraph(16384, 80000, 55);
    fmt::CsrMatrix adj = g.toAdjacencyMatrix();
    SmashMatrix smash = SmashMatrix::fromCoo(
        adj.toCoo(), HierarchyConfig::fromPaperNotation({16, 4, 2}));
    BcParams params;
    params.numSources = 2;

    sim::Machine m1, m2;
    sim::SimExec e1(m1), e2(m2);
    auto bc1 = bcCsr(adj, params, e1);
    isa::Bmu bmu;
    auto bc2 = bcSmashHw(smash, bmu, params, e2);
    EXPECT_LT(m2.core().cycles(), m1.core().cycles());
}

} // namespace
} // namespace smash::graph
