/**
 * @file
 * Cross-module property tests: algebraic identities of the kernels
 * (linearity, commutativity, distributivity), native/simulated
 * execution consistency, misuse handling (failure injection), and
 * storage-accounting invariants — the behaviours no single-module
 * test pins down.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "formats/convert.hh"
#include "isa/bmu.hh"
#include "kernels/reference.hh"
#include "kernels/spadd.hh"
#include "kernels/spmm.hh"
#include "kernels/spmv.hh"
#include "sim/exec_model.hh"
#include "workloads/matrix_gen.hh"

namespace smash
{
namespace
{

using core::HierarchyConfig;
using core::SmashMatrix;
using kern::padVector;
using sim::NativeExec;

std::vector<Value>
randomVector(Index n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Value> v(static_cast<std::size_t>(n));
    for (auto& x : v)
        x = static_cast<Value>(rng.uniform()) - Value(0.5);
    return v;
}

/** SpMV is linear: A(ax + by) == a(Ax) + b(Ay). */
class SpmvLinearity : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SpmvLinearity, HoldsForSmashHw)
{
    const std::uint64_t seed = GetParam();
    const Index n = 96;
    fmt::CooMatrix coo = wl::genClustered(n, n, 900, 4, seed);
    SmashMatrix m = SmashMatrix::fromCoo(
        coo, HierarchyConfig::fromPaperNotation({16, 4, 2}));
    NativeExec e;
    isa::Bmu bmu;

    std::vector<Value> u = randomVector(n, seed + 1);
    std::vector<Value> v = randomVector(n, seed + 2);
    const Value a = 2.5, b = -1.25;

    std::vector<Value> combo(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i) {
        auto si = static_cast<std::size_t>(i);
        combo[si] = a * u[si] + b * v[si];
    }
    std::vector<Value> y_combo(static_cast<std::size_t>(n), 0);
    kern::spmvSmashHw(m, bmu, padVector(combo, m.paddedCols()), y_combo,
                      e);

    std::vector<Value> y_u(static_cast<std::size_t>(n), 0);
    std::vector<Value> y_v(static_cast<std::size_t>(n), 0);
    kern::spmvSmashHw(m, bmu, padVector(u, m.paddedCols()), y_u, e);
    kern::spmvSmashHw(m, bmu, padVector(v, m.paddedCols()), y_v, e);

    for (Index i = 0; i < n; ++i) {
        auto si = static_cast<std::size_t>(i);
        EXPECT_NEAR(y_combo[si], a * y_u[si] + b * y_v[si], 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpmvLinearity,
                         ::testing::Values(11, 22, 33, 44));

/** Sparse addition commutes and agrees across encodings. */
class SpaddAlgebra : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SpaddAlgebra, CommutesAndMatchesCsr)
{
    const std::uint64_t seed = GetParam();
    fmt::CooMatrix coo_a = wl::genRunScatter(64, 64, 300, 3, seed);
    fmt::CooMatrix coo_b = wl::genClustered(64, 64, 300, 5, seed + 9);
    HierarchyConfig cfg({2, 4});
    SmashMatrix sa = SmashMatrix::fromCoo(coo_a, cfg);
    SmashMatrix sb = SmashMatrix::fromCoo(coo_b, cfg);
    NativeExec e;

    SmashMatrix ab = kern::spaddSmash(sa, sb, e);
    SmashMatrix ba = kern::spaddSmash(sb, sa, e);
    EXPECT_TRUE(ab.toDense().approxEquals(ba.toDense(), 1e-12));

    fmt::CooMatrix csr_sum = kern::spaddCsr(
        fmt::CsrMatrix::fromCoo(coo_a), fmt::CsrMatrix::fromCoo(coo_b),
        e);
    EXPECT_TRUE(ab.toDense().approxEquals(csr_sum.toDense(), 1e-12));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpaddAlgebra,
                         ::testing::Values(5, 6, 7));

/** (A + B) x == A x + B x ties SpMV and SpAdd together. */
TEST(KernelAlgebra, AdditionDistributesOverSpmv)
{
    fmt::CooMatrix coo_a = wl::genUniform(80, 80, 600, 71);
    fmt::CooMatrix coo_b = wl::genUniform(80, 80, 600, 72);
    HierarchyConfig cfg({4, 4});
    SmashMatrix sa = SmashMatrix::fromCoo(coo_a, cfg);
    SmashMatrix sb = SmashMatrix::fromCoo(coo_b, cfg);
    NativeExec e;
    SmashMatrix sum = kern::spaddSmash(sa, sb, e);

    std::vector<Value> x = randomVector(80, 99);
    std::vector<Value> xp = padVector(x, sa.paddedCols());
    std::vector<Value> y_sum(80, 0), y_a(80, 0), y_b(80, 0);
    kern::spmvSmashSw(sum, xp, y_sum, e);
    kern::spmvSmashSw(sa, xp, y_a, e);
    kern::spmvSmashSw(sb, xp, y_b, e);
    for (std::size_t i = 0; i < 80; ++i)
        EXPECT_NEAR(y_sum[i], y_a[i] + y_b[i], 1e-9);
}

/** The same kernel template must compute identical results under
 *  NativeExec and SimExec (the hooks must not perturb semantics). */
TEST(ExecConsistency, NativeAndSimulatedResultsMatch)
{
    fmt::CooMatrix coo = wl::genPowerLaw(128, 128, 2500, 0.8, 31, 4);
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    SmashMatrix sm = SmashMatrix::fromCoo(
        coo, HierarchyConfig::fromPaperNotation({16, 4, 2}));
    std::vector<Value> x = randomVector(128, 5);
    std::vector<Value> xp = padVector(x, sm.paddedCols());

    std::vector<Value> y_native(128, 0), y_sim(128, 0);
    NativeExec ne;
    kern::spmvCsr(csr, x, y_native, ne);
    sim::Machine machine;
    sim::SimExec se(machine);
    kern::spmvCsr(csr, x, y_sim, se);
    EXPECT_EQ(y_native, y_sim);

    std::fill(y_native.begin(), y_native.end(), Value(0));
    std::fill(y_sim.begin(), y_sim.end(), Value(0));
    isa::Bmu b1, b2;
    kern::spmvSmashHw(sm, b1, xp, y_native, ne);
    kern::spmvSmashHw(sm, b2, xp, y_sim, se);
    EXPECT_EQ(y_native, y_sim);
}

/** Simulation is deterministic: identical runs, identical cycles. */
TEST(ExecConsistency, SimulationIsDeterministic)
{
    fmt::CooMatrix coo = wl::genClustered(100, 100, 1200, 4, 17);
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    std::vector<Value> x = randomVector(100, 3);
    auto run = [&]() {
        sim::Machine m;
        sim::SimExec e(m);
        std::vector<Value> y(100, 0);
        kern::spmvCsr(csr, x, y, e);
        return m.core().cycles();
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

// --- Failure injection: every kernel rejects malformed operands. ---

TEST(FailureInjection, SpmvRejectsShortVectors)
{
    fmt::CooMatrix coo = wl::genUniform(16, 16, 30, 1);
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    SmashMatrix sm = SmashMatrix::fromCoo(coo, HierarchyConfig({4}));
    NativeExec e;
    std::vector<Value> short_x(8, 1.0);
    std::vector<Value> y(16, 0.0);
    EXPECT_THROW(kern::spmvCsr(csr, short_x, y, e), FatalError);
    EXPECT_THROW(kern::spmvSmashSw(sm, short_x, y, e), FatalError);
    isa::Bmu bmu;
    EXPECT_THROW(kern::spmvSmashHw(sm, bmu, short_x, y, e), FatalError);
    std::vector<Value> x(16, 1.0);
    std::vector<Value> xp = padVector(x, sm.paddedCols());
    std::vector<Value> short_y(8, 0.0);
    EXPECT_THROW(kern::spmvSmashHw(sm, bmu, xp, short_y, e), FatalError);
}

TEST(FailureInjection, SpmmRejectsMismatchedShapes)
{
    fmt::CooMatrix coo_a = wl::genUniform(16, 16, 30, 1);
    fmt::CooMatrix coo_b = wl::genUniform(8, 8, 20, 2); // wrong inner
    NativeExec e;
    fmt::DenseMatrix c(16, 8);
    EXPECT_THROW(kern::spmmCsr(fmt::CsrMatrix::fromCoo(coo_a),
                               fmt::CscMatrix::fromCoo(coo_b), c, e),
                 FatalError);

    SmashMatrix sa = SmashMatrix::fromCoo(coo_a, HierarchyConfig({2}));
    SmashMatrix sb4 = SmashMatrix::fromCoo(coo_a, HierarchyConfig({4}));
    EXPECT_THROW(kern::spmmSmashSw(sa, sb4, c, e), FatalError);
}

TEST(FailureInjection, SpaddRejectsConfigMismatch)
{
    fmt::CooMatrix coo = wl::genUniform(16, 16, 30, 1);
    SmashMatrix a = SmashMatrix::fromCoo(coo, HierarchyConfig({2}));
    SmashMatrix b = SmashMatrix::fromCoo(coo, HierarchyConfig({4}));
    NativeExec e;
    EXPECT_THROW(kern::spaddSmash(a, b, e), FatalError);
}

TEST(FailureInjection, FromBlocksRejectsInconsistentNza)
{
    core::Bitmap level0(8);
    level0.set(0);
    std::vector<Value> nza(4, 1.0); // 2 blocks' worth for 1 set bit
    EXPECT_THROW(SmashMatrix::fromBlocks(2, 8, HierarchyConfig({2}),
                                         level0, nza),
                 FatalError);
}

// --- Storage invariants. ---

TEST(StorageInvariants, CompactNeverExceedsDenseBitmaps)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        fmt::CooMatrix coo = wl::genRunScatter(
            128, 128, 200 + static_cast<Index>(seed) * 150, 4, seed);
        SmashMatrix m = SmashMatrix::fromCoo(
            coo, HierarchyConfig::fromPaperNotation({16, 4, 2}));
        EXPECT_LE(m.hierarchy().compactStorageBytes(),
                  m.hierarchy().denseStorageBytes() +
                      static_cast<std::size_t>(
                          m.hierarchy().levels())); // rounding slack
    }
}

TEST(StorageInvariants, NzaAccountsForAllNonZeros)
{
    fmt::CooMatrix coo = wl::genPowerLaw(64, 64, 800, 0.7, 3, 4);
    SmashMatrix m = SmashMatrix::fromCoo(coo, HierarchyConfig({2, 4}));
    Index stored_nnz = 0;
    for (Value v : m.nza()) {
        if (v != Value(0))
            ++stored_nnz;
    }
    EXPECT_EQ(stored_nnz, coo.nnz());
    EXPECT_EQ(m.nnz(), coo.nnz());
}

/** Locality metric bounds: 1/blockSize <= locality <= 1. */
class LocalityBounds : public ::testing::TestWithParam<Index>
{
};

TEST_P(LocalityBounds, WithinRange)
{
    const Index bs = GetParam();
    fmt::CooMatrix coo = wl::genUniform(64, 64, 500, 21);
    SmashMatrix m = SmashMatrix::fromCoo(coo, HierarchyConfig({bs}));
    EXPECT_GE(m.localityOfSparsity(),
              1.0 / static_cast<double>(bs) - 1e-12);
    EXPECT_LE(m.localityOfSparsity(), 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Blocks, LocalityBounds,
                         ::testing::Values<Index>(2, 4, 8, 16));

} // namespace
} // namespace smash
