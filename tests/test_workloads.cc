/**
 * @file
 * Tests for the workload generators: requested shapes are honored,
 * structure classes have their defining properties (bandedness,
 * clustering, skew), the locality-controlled generator hits its
 * target, and the Table-3/Table-4 suites match the paper's numbers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "core/smash_matrix.hh"
#include "workloads/graph_suite.hh"
#include "workloads/matrix_gen.hh"
#include "workloads/matrix_suite.hh"

namespace smash::wl
{
namespace
{

TEST(MatrixGen, UniformHonorsNnz)
{
    auto coo = genUniform(100, 80, 500, 1);
    EXPECT_EQ(coo.rows(), 100);
    EXPECT_EQ(coo.cols(), 80);
    EXPECT_EQ(coo.nnz(), 500);
    EXPECT_TRUE(coo.isCanonical());
}

TEST(MatrixGen, UniformIsDeterministic)
{
    auto a = genUniform(64, 64, 300, 42);
    auto b = genUniform(64, 64, 300, 42);
    EXPECT_TRUE(a.toDense().approxEquals(b.toDense(), 0.0));
}

TEST(MatrixGen, UniformRejectsOverfull)
{
    EXPECT_THROW(genUniform(4, 4, 17, 1), FatalError);
}

TEST(MatrixGen, TrefethenIsBandedSymmetric)
{
    auto coo = genTrefethen(128, 1400);
    for (const auto& entry : coo.entries()) {
        Index d = std::abs(entry.row - entry.col);
        // Offsets are 0 or powers of two.
        EXPECT_TRUE(d == 0 || (d & (d - 1)) == 0) << "offset " << d;
    }
    // Structure is symmetric.
    auto dense = coo.toDense();
    for (Index i = 0; i < 128; ++i) {
        for (Index j = i + 1; j < 128; ++j) {
            EXPECT_EQ(dense.at(i, j) != 0.0, dense.at(j, i) != 0.0);
        }
    }
}

TEST(MatrixGen, ClusteredHasHigherLocalityThanUniform)
{
    const Index rows = 256, cols = 256, nnz = 3000;
    auto clustered = genClustered(rows, cols, nnz, 8, 5);
    auto uniform = genUniform(rows, cols, nnz, 5);
    core::HierarchyConfig cfg({8});
    double loc_c = core::SmashMatrix::fromCoo(clustered, cfg)
        .localityOfSparsity();
    double loc_u = core::SmashMatrix::fromCoo(uniform, cfg)
        .localityOfSparsity();
    EXPECT_GT(loc_c, 1.5 * loc_u);
}

TEST(MatrixGen, PowerLawIsSkewed)
{
    auto coo = genPowerLaw(512, 512, 20000, 0.8, 7);
    EXPECT_EQ(coo.nnz(), 20000);
    std::vector<Index> row_nnz(512, 0);
    for (const auto& entry : coo.entries())
        ++row_nnz[static_cast<std::size_t>(entry.row)];
    Index max_deg = *std::max_element(row_nnz.begin(), row_nnz.end());
    double avg = 20000.0 / 512.0;
    EXPECT_GT(static_cast<double>(max_deg), 5.0 * avg);
}

class LocalityTarget : public ::testing::TestWithParam<double>
{
};

TEST_P(LocalityTarget, GeneratorHitsRequestedLocality)
{
    const double locality = GetParam();
    const Index block = 8;
    auto coo = genWithLocality(256, 512, 6000, block, locality, 3);
    core::SmashMatrix m = core::SmashMatrix::fromCoo(
        coo, core::HierarchyConfig({block}));
    // Average non-zeros per block should match the target closely.
    EXPECT_NEAR(m.localityOfSparsity(), locality, 0.06);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LocalityTarget,
                         ::testing::Values(0.125, 0.25, 0.375, 0.5,
                                           0.625, 0.75, 0.875, 1.0));

TEST(MatrixGen, LocalityRejectsBadArgs)
{
    EXPECT_THROW(genWithLocality(16, 16, 50, 8, 0.0, 1), FatalError);
    EXPECT_THROW(genWithLocality(16, 16, 50, 8, 1.5, 1), FatalError);
    EXPECT_THROW(genWithLocality(16, 4, 50, 8, 0.5, 1), FatalError);
}

TEST(MatrixSuite, HasFifteenEntriesMatchingTable3)
{
    auto specs = table3Specs();
    ASSERT_EQ(specs.size(), 15U);
    EXPECT_EQ(specs[0].rows, 20738);   // descriptor_xingo6u
    EXPECT_EQ(specs[0].nnz, 73916);
    EXPECT_EQ(specs[12].rows, 22283);  // human_gene1
    EXPECT_EQ(specs[12].nnz, 24669643);
    // Sorted by ascending sparsity, as in the paper.
    for (std::size_t i = 1; i < specs.size(); ++i)
        EXPECT_GE(specs[i].sparsityPct, specs[i - 1].sparsityPct);
}

TEST(MatrixSuite, PaperConfigsMatchFigure10Captions)
{
    auto specs = table3Specs();
    std::vector<Index> def{16, 4, 2};
    EXPECT_EQ(specs[0].paperConfig, def);
    EXPECT_EQ(specs[10].paperConfig, (std::vector<Index>{2, 4, 2}));
    EXPECT_EQ(specs[11].paperConfig, (std::vector<Index>{8, 4, 2}));
    EXPECT_EQ(specs[13].paperConfig, (std::vector<Index>{2, 4, 2}));
}

TEST(MatrixSuite, ScaleBalancesSparsityAndRowPopulation)
{
    // nnz scales with rows^1.5 (see scaleSpec): both the sparsity%
    // inflation and the nnz/row shrinkage stay within sqrt(scale).
    auto specs = table3Specs();
    const double scale = 0.25;
    MatrixSpec scaled = scaleSpec(specs[7], scale);
    double ratio = static_cast<double>(scaled.rows) /
        static_cast<double>(specs[7].rows);
    double nnz_ratio = static_cast<double>(scaled.nnz) /
        static_cast<double>(specs[7].nnz);
    EXPECT_NEAR(nnz_ratio, std::pow(ratio, 1.5), 0.05 * nnz_ratio);

    double density_factor = nnz_ratio / (ratio * ratio);
    double row_pop_factor = nnz_ratio / ratio;
    EXPECT_LT(density_factor, 1.0 / std::sqrt(ratio) * 1.05);
    EXPECT_GT(row_pop_factor, std::sqrt(ratio) * 0.95);
}

TEST(MatrixSuite, GenerateSmallScaleWorks)
{
    for (const auto& spec : table3Specs()) {
        MatrixSpec s = scaleSpec(spec, 0.02);
        auto coo = generateMatrix(s);
        EXPECT_EQ(coo.rows(), s.rows) << s.name;
        EXPECT_GT(coo.nnz(), 0) << s.name;
        // Generators may fall slightly short only for banded
        // structure (band capacity), never overshoot.
        EXPECT_LE(coo.nnz(), s.nnz) << s.name;
        EXPECT_GE(static_cast<double>(coo.nnz()),
                  0.5 * static_cast<double>(s.nnz)) << s.name;
    }
}

TEST(MatrixSuite, BenchScaleReadsEnvironment)
{
    unsetenv("SMASH_BENCH_SCALE");
    EXPECT_DOUBLE_EQ(benchScale(0.3), 0.3);
    setenv("SMASH_BENCH_SCALE", "0.5", 1);
    EXPECT_DOUBLE_EQ(benchScale(0.3), 0.5);
    setenv("SMASH_BENCH_SCALE", "7", 1);
    EXPECT_DOUBLE_EQ(benchScale(0.3), 0.3); // out of range -> default
    unsetenv("SMASH_BENCH_SCALE");
}

TEST(GraphSuite, HasFourEntriesMatchingTable4)
{
    auto specs = table4Specs();
    ASSERT_EQ(specs.size(), 4U);
    EXPECT_EQ(specs[0].vertices, 1100000); // com-Youtube
    EXPECT_EQ(specs[2].structure, GraphStructure::kRoadGrid);
}

TEST(GraphSuite, GenerateSmallScaleWorks)
{
    for (const auto& spec : table4Specs()) {
        GraphSpec s = scaleSpec(spec, 0.005);
        auto g = generateGraph(s);
        EXPECT_GT(g.numVertices(), 0) << s.name;
        EXPECT_GT(g.numEdges(), 0) << s.name;
    }
}

} // namespace
} // namespace smash::wl
