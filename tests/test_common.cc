/**
 * @file
 * Unit tests for src/common: bit operations, the PCG32 RNG, error
 * helpers, and the text-table writer.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"

namespace smash
{
namespace
{

TEST(BitOps, PopcountBasics)
{
    EXPECT_EQ(popcount(0), 0);
    EXPECT_EQ(popcount(1), 1);
    EXPECT_EQ(popcount(0xFFFFFFFFFFFFFFFFULL), 64);
    EXPECT_EQ(popcount(0x8000000000000001ULL), 2);
}

TEST(BitOps, FindFirstSet)
{
    EXPECT_EQ(findFirstSet(1), 0);
    EXPECT_EQ(findFirstSet(0x8000000000000000ULL), 63);
    EXPECT_EQ(findFirstSet(0b101000), 3);
}

TEST(BitOps, FindLastSet)
{
    EXPECT_EQ(findLastSet(1), 0);
    EXPECT_EQ(findLastSet(0x8000000000000000ULL), 63);
    EXPECT_EQ(findLastSet(0b101000), 5);
}

TEST(BitOps, ClearLowestSet)
{
    EXPECT_EQ(clearLowestSet(0b101000), 0b100000U);
    EXPECT_EQ(clearLowestSet(1), 0U);
}

TEST(BitOps, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(65));
    EXPECT_TRUE(isPowerOfTwo(1ULL << 63));
}

TEST(BitOps, RoundUp)
{
    EXPECT_EQ(roundUp(0, 8), 0U);
    EXPECT_EQ(roundUp(1, 8), 8U);
    EXPECT_EQ(roundUp(8, 8), 8U);
    EXPECT_EQ(roundUp(9, 8), 16U);
}

TEST(BitOps, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0U);
    EXPECT_EQ(ceilDiv(1, 4), 1U);
    EXPECT_EQ(ceilDiv(4, 4), 1U);
    EXPECT_EQ(ceilDiv(5, 4), 2U);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.nextU32() == b.nextU32();
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = rng.below(17);
        EXPECT_LT(v, 17U);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8U);
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.between(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(SMASH_FATAL("bad input ", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(SMASH_PANIC("broken invariant"), PanicError);
}

TEST(Logging, CheckPassesOnTrue)
{
    EXPECT_NO_THROW(SMASH_CHECK(1 + 1 == 2, "arithmetic"));
}

TEST(Logging, CheckThrowsOnFalse)
{
    EXPECT_THROW(SMASH_CHECK(false, "expected failure"), FatalError);
}

TEST(Logging, MessageCarriesContext)
{
    try {
        SMASH_FATAL("value was ", 7);
        FAIL() << "should have thrown";
    } catch (const FatalError& err) {
        EXPECT_NE(std::string(err.what()).find("value was 7"),
                  std::string::npos);
    }
}

TEST(TextTable, PrintsHeaderAndRows)
{
    TextTable t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"bb", "22"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("bb"), std::string::npos);
}

TEST(TextTable, RejectsRaggedRows)
{
    TextTable t("demo");
    t.setHeader({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(TextTable, FormatFixedDigits)
{
    EXPECT_EQ(formatFixed(1.23456, 2), "1.23");
    EXPECT_EQ(formatFixed(2.0, 3), "2.000");
}

} // namespace
} // namespace smash
