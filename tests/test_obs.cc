/**
 * @file
 * Observability layer tests: MetricsRegistry under concurrent
 * get-or-create + increment hammering, the documented
 * Histogram::percentile edge semantics, per-request span stage
 * accounting through a live serve::Session, trace ring-buffer
 * wraparound, JSON validity of a dumped trace, and the
 * zero-allocation property of the warmed *instrumented* SpMV path
 * (the same global operator new override idiom as test_perf_paths —
 * instrumentation must not cost the steady state its no-heap
 * contract).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/dispatch.hh"
#include "formats/convert.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/session.hh"
#include "workloads/matrix_gen.hh"

namespace smash
{
namespace
{

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

/** Allocations observed (on any thread) while fn() ran. */
template <typename Fn>
std::uint64_t
allocationsDuring(Fn&& fn)
{
    g_allocs.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_release);
    fn();
    g_counting.store(false, std::memory_order_release);
    return g_allocs.load(std::memory_order_relaxed);
}

} // namespace
} // namespace smash

// Counting overrides (outside any namespace, whole-binary scope).
void*
operator new(std::size_t size)
{
    if (smash::g_counting.load(std::memory_order_acquire))
        smash::g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size == 0 ? 1 : size))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace smash
{
namespace
{

TEST(MetricsRegistry, ConcurrentGetOrCreateAndIncrement)
{
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    constexpr int kThreads = 8;
    constexpr int kIncsPerThread = 10000;
    // Every thread resolves the same names (racing get-or-create)
    // and also a name of its own, then hammers both.
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg, t] {
            obs::Counter& shared =
                reg.counter("test_obs_shared_total");
            obs::Counter& own = reg.counter(
                "test_obs_own_total{t=\"" + std::to_string(t) +
                "\"}");
            obs::Histogram& h =
                reg.histogram("test_obs_shared_hist");
            for (int i = 0; i < kIncsPerThread; ++i) {
                shared.inc();
                own.inc();
                h.record(static_cast<std::uint64_t>(i % 1024));
            }
        });
    }
    for (std::thread& th : threads)
        th.join();
    EXPECT_EQ(reg.counterValue("test_obs_shared_total"),
              static_cast<std::uint64_t>(kThreads * kIncsPerThread));
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(reg.counterValue("test_obs_own_total{t=\"" +
                                   std::to_string(t) + "\"}"),
                  static_cast<std::uint64_t>(kIncsPerThread));
    EXPECT_EQ(reg.histogram("test_obs_shared_hist").count(),
              static_cast<std::uint64_t>(kThreads * kIncsPerThread));

    // The exposition renders without tearing and groups the labeled
    // family under a single # TYPE line.
    std::ostringstream os;
    reg.exportText(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("# TYPE test_obs_shared_total counter"),
              std::string::npos);
    const std::size_t first =
        text.find("# TYPE test_obs_own_total counter");
    EXPECT_NE(first, std::string::npos);
    EXPECT_EQ(first, text.rfind("# TYPE test_obs_own_total counter"));
    EXPECT_NE(text.find("test_obs_shared_hist_bucket{le=\"+Inf\"}"),
              std::string::npos);
}

TEST(Histogram, PercentileEdgeSemantics)
{
    // Empty histogram: exactly 0 at any quantile.
    obs::Histogram empty;
    EXPECT_EQ(empty.percentile(0.0), 0.0);
    EXPECT_EQ(empty.percentile(0.5), 0.0);
    EXPECT_EQ(empty.percentile(1.0), 0.0);

    // Bucket 0 (value 0) reports the sub-unit placeholder 0.5.
    obs::Histogram zeros;
    zeros.record(0);
    zeros.record(0);
    EXPECT_EQ(zeros.percentile(0.5), 0.5);

    // Middle buckets report the geometric midpoint 1.5 * 2^(i-1):
    // value 6 lands in bucket 3 = [4, 8) -> 6.0.
    obs::Histogram mid;
    mid.record(6);
    EXPECT_EQ(mid.percentile(0.5), 6.0);

    // The open-ended top bucket reports its lower bound, never a
    // midpoint of an unbounded range.
    obs::Histogram top;
    top.record(~std::uint64_t(0)); // clamps into the last bucket
    const double expect_lower =
        static_cast<double>(std::uint64_t(1)
                            << (obs::Histogram::kBuckets - 2));
    EXPECT_EQ(top.percentile(0.99), expect_lower);

    // Quantiles are nearest-rank at index floor(q * (n - 1)): with
    // 3 small and 1 large value the median stays small and only the
    // max (q = 1) reaches the large bucket's midpoint.
    obs::Histogram mix;
    mix.record(3);
    mix.record(3);
    mix.record(3);
    mix.record(1000);
    EXPECT_EQ(mix.percentile(0.5), 3.0);
    EXPECT_EQ(mix.percentile(1.0), 768.0); // [512,1024) midpoint
}

TEST(Spans, StageAccountingThroughSession)
{
    serve::MatrixRegistry registry;
    registry.put("m", wl::genUniform(256, 256, 2048, 7));
    serve::SessionOptions opts;
    opts.threads = 2;
    opts.maxBatch = 4;
    serve::Session session(registry, opts);

    constexpr Index kRequests = 24;
    std::vector<Value> x(256, Value(1));
    std::vector<std::future<serve::Result<std::vector<Value>>>> fs;
    for (Index r = 0; r < kRequests; ++r)
        fs.push_back(session.submit(serve::SpmvRequest{"m", x}));
    for (auto& f : fs)
        EXPECT_TRUE(f.get().ok());
    session.drain();

    // Every delivered request contributes one span per stage, and
    // the stamps are monotonic, so no stage can record a negative
    // (wrapped) latency — percentiles stay finite and ordered.
    const serve::PipelineStats& stats = session.stats();
    for (std::size_t s = 0; s < serve::kNumPipelineStages; ++s) {
        const auto stage = static_cast<serve::PipelineStage>(s);
        const serve::LatencyHistogram& h = stats.stage(stage);
        EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kRequests))
            << serve::toString(stage);
        EXPECT_GE(h.percentileUs(0.99), h.percentileUs(0.5))
            << serve::toString(stage);
    }
    // The queue/compute split exactly partitions the per-stage
    // sums, and 24 batched request lifetimes cannot be all-zero.
    const std::uint64_t stage_total =
        stats.queueUs() + stats.computeUs();
    std::uint64_t by_stage = 0;
    for (std::size_t s = 0; s < serve::kNumPipelineStages; ++s)
        by_stage +=
            stats.stage(static_cast<serve::PipelineStage>(s)).sumUs();
    EXPECT_EQ(stage_total, by_stage);
    EXPECT_GT(stage_total, 0u);
}

TEST(TraceRing, WraparoundKeepsNewestEvents)
{
    obs::TraceCollector& tc = obs::TraceCollector::global();
    const bool was_on = obs::traceEnabled();
    obs::setTraceEnabled(true);
    tc.clear();

    const std::size_t total = obs::TraceCollector::kRingCapacity + 512;
    const std::uint64_t before_retained = tc.retained();
    // kPlanCacheMiss args carry a0 verbatim ({"kind": i}), so the
    // dump reveals which window of the sequence survived the wrap.
    for (std::size_t i = 0; i < total; ++i)
        obs::record(obs::EventKind::kPlanCacheMiss,
                    static_cast<std::uint32_t>(i));
    obs::setTraceEnabled(was_on);

    // This thread's ring wrapped: it retains exactly kRingCapacity
    // events and reports the overwritten prefix as dropped.
    EXPECT_EQ(tc.retained() - before_retained,
              obs::TraceCollector::kRingCapacity);
    EXPECT_GE(tc.dropped(), static_cast<std::uint64_t>(512));

    // The retained window is the *newest* events: the dump carries
    // the last argument value but not the first.
    std::ostringstream os;
    tc.dumpJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("{\"kind\": " + std::to_string(total - 1)),
              std::string::npos);
    EXPECT_EQ(json.find("{\"kind\": 0}"), std::string::npos);
    tc.clear();
    EXPECT_EQ(tc.retained(), 0u);
}

TEST(TraceDump, ProducesValidJson)
{
    obs::TraceCollector& tc = obs::TraceCollector::global();
    const bool was_on = obs::traceEnabled();
    obs::setTraceEnabled(true);
    tc.clear();

    // One event of every kind, spans included, so the dump
    // exercises every writeArgs branch.
    obs::record(obs::EventKind::kPoolChunk, 3, 1);
    obs::record(obs::EventKind::kBatchEnqueue, 0, 1);
    obs::record(obs::EventKind::kBatchFlush, 1, 8);
    obs::record(obs::EventKind::kPipelineDeliver, 1);
    obs::record(obs::EventKind::kDispatch, 1, 2, 2);
    obs::record(obs::EventKind::kPlanCacheHit, 0);
    obs::record(obs::EventKind::kPlanCacheMiss, 3);
    obs::record(obs::EventKind::kEpochSwap, 7);
    const std::uint64_t t0 = obs::traceNowNs();
    obs::recordSpan(obs::EventKind::kPoolBatch, t0, 16, 4096);
    obs::recordSpan(obs::EventKind::kPoolTask, t0);
    obs::recordSpan(obs::EventKind::kPipelinePrepare, t0, 0, 1);
    obs::recordSpan(obs::EventKind::kPipelineCompute, t0, 0, 8);
    obs::setTraceEnabled(was_on);

    std::ostringstream os;
    tc.dumpJson(os);
    const std::string json = os.str();
    std::string error;
    EXPECT_TRUE(obs::validateJson(json, error)) << error;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"pool\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"plan_cache\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    tc.clear();

    // The validator itself rejects what it should.
    EXPECT_FALSE(obs::validateJson("{\"a\": }", error));
    EXPECT_FALSE(obs::validateJson("[1, 2", error));
    EXPECT_FALSE(obs::validateJson("{} trailing", error));
    EXPECT_FALSE(obs::validateJson("\"unterminated", error));
    EXPECT_TRUE(obs::validateJson(
        "{\"a\": [1, 2.5, -3e2, \"s\\u00e9\", true, null]}", error));
}

TEST(ZeroAlloc, WarmedInstrumentedSpmvPathsStayHeapFree)
{
    eng::SparseMatrixAny m(
        fmt::CsrMatrix::fromCoo(wl::genUniform(512, 512, 4096, 11)));
    std::vector<Value> x(512, Value(1));
    std::vector<Value> y(512, Value(0));

    // Tracing ON: the ring registration and metric statics resolve
    // during the warm call; after that, recording an event is a
    // 32-byte store into the pre-allocated ring — no heap.
    const bool was_on = obs::traceEnabled();
    obs::setTraceEnabled(true);
    sim::NativeExec ne;
    eng::spmv(m.ref(), x, y, ne); // warm: statics + this ring
    const std::uint64_t with_trace = allocationsDuring([&] {
        for (int i = 0; i < 16; ++i)
            eng::spmv(m.ref(), x, y, ne);
    });
    EXPECT_EQ(with_trace, 0u)
        << "warmed instrumented serial SpMV must not allocate "
           "with tracing on";

    obs::setTraceEnabled(false);
    const std::uint64_t without_trace = allocationsDuring([&] {
        for (int i = 0; i < 16; ++i)
            eng::spmv(m.ref(), x, y, ne);
    });
    EXPECT_EQ(without_trace, 0u)
        << "warmed instrumented serial SpMV must not allocate "
           "with tracing off";
    obs::setTraceEnabled(was_on);
    obs::TraceCollector::global().clear();
}

} // namespace
} // namespace smash
