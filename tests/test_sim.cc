/**
 * @file
 * Unit tests for the simulation substrate: cache geometry/LRU,
 * stride prefetcher training, DRAM row-buffer behaviour, the
 * hierarchy walk, and the core cost model's dependent/independent
 * stall accounting.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/exec_model.hh"
#include "sim/machine.hh"

namespace smash::sim
{
namespace
{

TEST(Cache, HitAfterInsert)
{
    Cache c(CacheConfig{"t", 1024, 2, 1, false});
    EXPECT_FALSE(c.access(0x100));
    c.insert(0x100);
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x13F)); // same 64B line
    EXPECT_FALSE(c.access(0x140)); // next line
}

TEST(Cache, LruEvictsOldest)
{
    // 2 ways, 8 sets: lines 64 bytes; three lines in one set.
    Cache c(CacheConfig{"t", 1024, 2, 1, false});
    const Addr set_stride = 8 * 64; // same set every 512 bytes
    c.insert(0);
    c.insert(set_stride);
    EXPECT_TRUE(c.access(0));           // 0 is now MRU
    c.insert(2 * set_stride);           // evicts set_stride
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(set_stride));
    EXPECT_TRUE(c.contains(2 * set_stride));
}

TEST(Cache, FlushDropsEverything)
{
    Cache c(CacheConfig{"t", 1024, 2, 1, false});
    c.insert(0x40);
    c.flush();
    EXPECT_FALSE(c.contains(0x40));
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache(CacheConfig{"t", 1000, 3, 1, false}), FatalError);
}

TEST(Cache, StatsCountMisses)
{
    Cache c(CacheConfig{"t", 1024, 2, 1, false});
    c.access(0);
    c.insert(0);
    c.access(0);
    EXPECT_EQ(c.stats().accesses, 2U);
    EXPECT_EQ(c.stats().misses, 1U);
}

TEST(Prefetcher, TrainsOnUnitStride)
{
    StridePrefetcher pf;
    std::array<Addr, StridePrefetcher::kMaxIssue> out;
    int issued = 0;
    for (int i = 0; i < 8; ++i)
        issued += pf.observe(static_cast<Addr>(i) * 64, out);
    EXPECT_GT(issued, 0);
    EXPECT_GE(pf.stats().trained, 1U);
}

TEST(Prefetcher, PrefetchesAheadOfStream)
{
    StridePrefetcher pf;
    std::array<Addr, StridePrefetcher::kMaxIssue> out;
    Addr last_line = 0;
    for (int i = 0; i < 10; ++i) {
        int n = pf.observe(static_cast<Addr>(i) * 64, out);
        for (int k = 0; k < n; ++k) {
            EXPECT_GT(out[static_cast<std::size_t>(k)] / 64,
                      static_cast<Addr>(i));
            last_line = out[static_cast<std::size_t>(k)] / 64;
        }
    }
    EXPECT_GT(last_line, 9U);
}

TEST(Prefetcher, IgnoresRandomAccesses)
{
    StridePrefetcher pf;
    std::array<Addr, StridePrefetcher::kMaxIssue> out;
    int issued = 0;
    // Strides far above kMaxStride never form a stream.
    Addr a = 0;
    for (int i = 0; i < 50; ++i) {
        a += 64 * 1000 + static_cast<Addr>(i * 640);
        issued += pf.observe(a, out);
    }
    EXPECT_EQ(issued, 0);
}

TEST(Prefetcher, TracksNegativeStride)
{
    StridePrefetcher pf;
    std::array<Addr, StridePrefetcher::kMaxIssue> out;
    int issued = 0;
    for (int i = 20; i > 0; --i)
        issued += pf.observe(static_cast<Addr>(i) * 64, out);
    EXPECT_GT(issued, 0);
}

TEST(Dram, RowHitIsCheaper)
{
    DramModel dram;
    Cycles first = dram.access(0);
    Cycles second = dram.access(64); // same row
    EXPECT_EQ(first, dram.config().rowMissLatency);
    EXPECT_EQ(second, dram.config().rowHitLatency);
    EXPECT_EQ(dram.stats().rowHits, 1U);
    EXPECT_EQ(dram.stats().rowMisses, 1U);
}

TEST(Dram, BankConflictReopensRow)
{
    DramModel dram;
    const Addr row_bytes = dram.config().rowBytes;
    const Addr banks = static_cast<Addr>(dram.config().banks);
    dram.access(0);
    // Same bank, different row: rows banks apart map to one bank.
    Cycles lat = dram.access(row_bytes * banks);
    EXPECT_EQ(lat, dram.config().rowMissLatency);
}

TEST(Dram, DifferentBanksKeepRowsOpen)
{
    DramModel dram;
    const Addr row_bytes = dram.config().rowBytes;
    dram.access(0);
    dram.access(row_bytes);     // next row -> next bank
    EXPECT_EQ(dram.access(64), dram.config().rowHitLatency);
    EXPECT_EQ(dram.access(row_bytes + 64), dram.config().rowHitLatency);
}

TEST(MemoryHierarchy, LatencyGrowsOutward)
{
    MemoryHierarchy mem;
    HitLevel level;
    Cycles dram_lat = mem.access(1 << 20, &level);
    EXPECT_EQ(level, HitLevel::kDram);
    Cycles l1_lat = mem.access(1 << 20, &level);
    EXPECT_EQ(level, HitLevel::kL1);
    EXPECT_GT(dram_lat, l1_lat);
    EXPECT_EQ(l1_lat, mem.l1Latency());
}

TEST(MemoryHierarchy, FillsInnerLevels)
{
    MemoryHierarchy mem;
    mem.access(0x5000);
    EXPECT_TRUE(mem.l1().contains(0x5000));
    EXPECT_TRUE(mem.l2().contains(0x5000));
    EXPECT_TRUE(mem.l3().contains(0x5000));
}

TEST(MemoryHierarchy, L1EvictionFallsBackToL2)
{
    MemoryHierarchy mem;
    // Touch enough distinct lines to overflow the 32 KB L1.
    for (Addr a = 0; a < 64 * 1024; a += 64)
        mem.access(a);
    HitLevel level;
    mem.access(0, &level);
    EXPECT_NE(level, HitLevel::kDram); // L2/L3 keep it
    EXPECT_TRUE(level == HitLevel::kL2 || level == HitLevel::kL1);
}

TEST(MemoryHierarchy, StreamingGetsPrefetched)
{
    MemoryHierarchy mem;
    Counter dram_before = mem.dram().stats().reads;
    for (Addr a = 0; a < 512 * 64; a += 64)
        mem.access(a);
    Counter dram_after = mem.dram().stats().reads;
    // Prefetchers should have converted most stream misses into
    // hits; far fewer than one DRAM read per line.
    EXPECT_GT(mem.l1().stats().prefetchHits +
              mem.l2().stats().prefetchHits +
              mem.l3().stats().prefetchHits, 100U);
    EXPECT_LT(dram_after - dram_before, 520U);
}

TEST(CoreModel, InstructionsToCycles)
{
    CoreModel core(CoreConfig{4, 4.0});
    core.retire(400);
    EXPECT_DOUBLE_EQ(core.cycles(), 100.0);
}

TEST(CoreModel, DependentLoadStallsFully)
{
    CoreModel core(CoreConfig{4, 4.0});
    core.finishLoad(102, 2, Dep::kDependent);
    EXPECT_DOUBLE_EQ(core.stallCycles(), 100.0);
}

TEST(CoreModel, IndependentLoadOverlaps)
{
    CoreModel core(CoreConfig{4, 4.0});
    core.finishLoad(102, 2, Dep::kIndependent);
    EXPECT_DOUBLE_EQ(core.stallCycles(), 25.0);
}

TEST(CoreModel, L1HitAddsNoStall)
{
    CoreModel core;
    core.finishLoad(2, 2, Dep::kDependent);
    EXPECT_DOUBLE_EQ(core.stallCycles(), 0.0);
    EXPECT_EQ(core.instructions(), 1U);
}

TEST(CoreModel, DeviceStallRetiresNothing)
{
    CoreModel core(CoreConfig{4, 4.0});
    core.deviceStall(102, 2);
    EXPECT_EQ(core.instructions(), 0U);
    EXPECT_DOUBLE_EQ(core.stallCycles(), 25.0);
}

TEST(CoreModel, RejectsBadConfig)
{
    EXPECT_THROW(CoreModel(CoreConfig{0, 4.0}), FatalError);
    EXPECT_THROW(CoreModel(CoreConfig{4, 0.5}), FatalError);
}

TEST(Machine, MultiLineLoadTouchesEachLine)
{
    Machine m;
    m.load(0x100 - 8, 16); // straddles two lines
    EXPECT_EQ(m.memory().stats().accesses, 2U);
    EXPECT_EQ(m.core().loads(), 1U);
}

TEST(Machine, SnapshotDelta)
{
    Machine m;
    auto before = m.snapshot();
    m.op(10);
    m.load(0, 8);
    auto after = m.snapshot();
    auto d = Machine::delta(before, after);
    EXPECT_EQ(d.instructions, 11U);
    EXPECT_GT(d.cycles, 0.0);
    EXPECT_EQ(d.loads, 1U);
}

TEST(Machine, ResetClearsState)
{
    Machine m;
    m.load(0x9000, 8);
    m.reset();
    EXPECT_EQ(m.core().instructions(), 0U);
    EXPECT_FALSE(m.memory().l1().contains(0x9000));
}

TEST(ExecModel, NativeExecIsFree)
{
    NativeExec e;
    // Compiles to nothing; the calls must simply be valid.
    e.op(5);
    e.load(nullptr, 8);
    e.store(nullptr, 8);
    e.deviceFetch(nullptr, 256);
    SUCCEED();
}

TEST(ExecModel, SimExecChargesMachine)
{
    Machine m;
    SimExec e(m);
    e.op(3);
    int dummy = 0;
    e.load(&dummy, sizeof(dummy));
    e.store(&dummy, sizeof(dummy));
    EXPECT_EQ(m.core().instructions(), 5U);
}

/** Pointer-chasing microbenchmark property: for the same access
 *  pattern, dependent tagging must never be faster. */
class DependencePenalty : public ::testing::TestWithParam<int>
{
};

TEST_P(DependencePenalty, DependentNeverFaster)
{
    const int n = GetParam();
    auto run = [&](Dep dep) {
        Machine m;
        SimExec e(m);
        for (int i = 0; i < n; ++i) {
            // Spread accesses so most miss somewhere.
            e.load(reinterpret_cast<const void*>(
                       static_cast<Addr>(i) * 4096 + 64), 8, dep);
        }
        return m.core().cycles();
    };
    EXPECT_GE(run(Dep::kDependent), run(Dep::kIndependent));
}

INSTANTIATE_TEST_SUITE_P(Sizes, DependencePenalty,
                         ::testing::Values(16, 256, 4096));

} // namespace
} // namespace smash::sim
