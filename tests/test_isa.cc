/**
 * @file
 * Unit tests for the SMASH ISA layer: BMU configuration, the
 * five-instruction scan protocol, ranged scans, buffer-refill
 * accounting, multi-group independence, and the area model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/smash_matrix.hh"
#include "isa/area_model.hh"
#include "isa/bmu.hh"
#include "sim/exec_model.hh"
#include "workloads/matrix_gen.hh"

namespace smash::isa
{
namespace
{

using core::HierarchyConfig;
using core::SmashMatrix;
using sim::NativeExec;

/** Drive a full PBMAP/RDIND scan; return visited (row, col) pairs. */
template <typename E>
std::vector<std::pair<Index, Index>>
scanAll(const SmashMatrix& m, Bmu& bmu, E& e, int grp = 0)
{
    const HierarchyConfig& cfg = m.config();
    bmu.clearGroup(grp);
    bmu.matinfo(m.rows(), m.paddedCols(), grp, e);
    for (int lvl = 0; lvl < cfg.levels(); ++lvl)
        bmu.bmapinfo(cfg.ratio(lvl), lvl, grp, e);
    for (int lvl = 0; lvl < cfg.levels(); ++lvl)
        bmu.rdbmap(&m.hierarchy().level(lvl), lvl, grp, e);
    std::vector<std::pair<Index, Index>> out;
    Index row = 0, col = 0;
    while (bmu.pbmap(grp, e)) {
        bmu.rdind(row, col, grp, e);
        out.emplace_back(row, col);
    }
    return out;
}

fmt::CooMatrix
sampleMatrix(Index rows = 40, Index cols = 40, Index nnz = 120,
             std::uint64_t seed = 5)
{
    return wl::genClustered(rows, cols, nnz, 3, seed);
}

TEST(Bmu, ScanMatchesBitmapTruth)
{
    auto coo = sampleMatrix();
    SmashMatrix m = SmashMatrix::fromCoo(
        coo, HierarchyConfig::fromPaperNotation({16, 4, 2}));
    Bmu bmu;
    NativeExec e;
    auto visited = scanAll(m, bmu, e);
    ASSERT_EQ(static_cast<Index>(visited.size()), m.numBlocks());

    // Every visited position must be a set Bitmap-0 bit, in order.
    const core::Bitmap& level0 = m.hierarchy().level(0);
    Index k = 0;
    for (Index bit = level0.findNextSet(0); bit >= 0;
         bit = level0.findNextSet(bit + 1), ++k) {
        auto pos = m.positionOfBit(bit);
        EXPECT_EQ(visited[static_cast<std::size_t>(k)].first, pos.row);
        EXPECT_EQ(visited[static_cast<std::size_t>(k)].second,
                  pos.colStart);
    }
}

TEST(Bmu, SingleLevelScan)
{
    auto coo = sampleMatrix(16, 16, 30, 9);
    SmashMatrix m = SmashMatrix::fromCoo(coo, HierarchyConfig({2}));
    Bmu bmu;
    NativeExec e;
    auto visited = scanAll(m, bmu, e);
    EXPECT_EQ(static_cast<Index>(visited.size()), m.numBlocks());
}

TEST(Bmu, ExhaustedScanStaysExhausted)
{
    auto coo = sampleMatrix(16, 16, 10, 2);
    SmashMatrix m = SmashMatrix::fromCoo(coo, HierarchyConfig({2, 4}));
    Bmu bmu;
    NativeExec e;
    scanAll(m, bmu, e);
    EXPECT_FALSE(bmu.pbmap(0, e));
    EXPECT_FALSE(bmu.pbmap(0, e));
}

TEST(Bmu, EmptyMatrixFindsNothing)
{
    fmt::CooMatrix coo(8, 8);
    SmashMatrix m = SmashMatrix::fromCoo(coo, HierarchyConfig({2, 4}));
    Bmu bmu;
    NativeExec e;
    EXPECT_TRUE(scanAll(m, bmu, e).empty());
}

TEST(Bmu, GroupsAreIndependent)
{
    auto coo_a = sampleMatrix(24, 24, 40, 3);
    auto coo_b = sampleMatrix(24, 24, 40, 4);
    SmashMatrix ma = SmashMatrix::fromCoo(coo_a, HierarchyConfig({2, 4}));
    SmashMatrix mb = SmashMatrix::fromCoo(coo_b, HierarchyConfig({2, 4}));
    Bmu bmu;
    NativeExec e;

    // Interleave configuration, then interleave scanning.
    bmu.matinfo(ma.rows(), ma.paddedCols(), 0, e);
    bmu.matinfo(mb.rows(), mb.paddedCols(), 1, e);
    for (int lvl = 0; lvl < 2; ++lvl) {
        bmu.bmapinfo(ma.config().ratio(lvl), lvl, 0, e);
        bmu.bmapinfo(mb.config().ratio(lvl), lvl, 1, e);
    }
    for (int lvl = 0; lvl < 2; ++lvl) {
        bmu.rdbmap(&ma.hierarchy().level(lvl), lvl, 0, e);
        bmu.rdbmap(&mb.hierarchy().level(lvl), lvl, 1, e);
    }
    Index blocks_a = 0, blocks_b = 0;
    bool more_a = true, more_b = true;
    while (more_a || more_b) {
        if (more_a && (more_a = bmu.pbmap(0, e)))
            ++blocks_a;
        if (more_b && (more_b = bmu.pbmap(1, e)))
            ++blocks_b;
    }
    EXPECT_EQ(blocks_a, ma.numBlocks());
    EXPECT_EQ(blocks_b, mb.numBlocks());
}

TEST(Bmu, RangedScanCoversOneRow)
{
    auto coo = sampleMatrix(12, 12, 40, 8);
    SmashMatrix m = SmashMatrix::fromCoo(coo, HierarchyConfig({2}));
    const Index bpr = m.paddedCols() / m.blockSize();
    Bmu bmu;
    NativeExec e;
    bmu.matinfo(m.rows(), m.paddedCols(), 0, e);
    bmu.bmapinfo(m.blockSize(), 0, 0, e);
    bmu.rdbmap(&m.hierarchy().level(0), 0, 0, e);

    const core::Bitmap& level0 = m.hierarchy().level(0);
    for (Index r = 0; r < m.rows(); ++r) {
        bmu.beginScan(r * bpr, (r + 1) * bpr, 0, e);
        Index found = 0;
        Index row = 0, col = 0;
        while (bmu.pbmap(0, e)) {
            bmu.rdind(row, col, 0, e);
            EXPECT_EQ(row, r);
            ++found;
        }
        Index expect = 0;
        for (Index b = r * bpr; b < (r + 1) * bpr; ++b)
            expect += level0.test(b);
        EXPECT_EQ(found, expect) << "row " << r;
    }
}

TEST(Bmu, RangedScanWorksAcrossHierarchyLevels)
{
    // Multi-level ranged scan: upper levels skip empty stretches
    // inside the row, and the per-row results still match the truth.
    auto coo = sampleMatrix(20, 96, 80, 8);
    SmashMatrix m = SmashMatrix::fromCoo(
        coo, HierarchyConfig::fromPaperNotation({16, 4, 2}));
    const Index bpr = m.paddedCols() / m.blockSize();
    Bmu bmu;
    NativeExec e;
    const HierarchyConfig& cfg = m.config();
    bmu.matinfo(m.rows(), m.paddedCols(), 0, e);
    for (int lvl = 0; lvl < cfg.levels(); ++lvl)
        bmu.bmapinfo(cfg.ratio(lvl), lvl, 0, e);
    for (int lvl = 0; lvl < cfg.levels(); ++lvl)
        bmu.rdbmap(&m.hierarchy().level(lvl), lvl, 0, e);

    const core::Bitmap& level0 = m.hierarchy().level(0);
    for (Index r = 0; r < m.rows(); ++r) {
        bmu.beginScan(r * bpr, (r + 1) * bpr, 0, e);
        std::vector<Index> cols;
        Index row = 0, col = 0;
        while (bmu.pbmap(0, e)) {
            bmu.rdind(row, col, 0, e);
            EXPECT_EQ(row, r);
            cols.push_back(col);
        }
        std::vector<Index> expect;
        for (Index b = r * bpr; b < (r + 1) * bpr; ++b) {
            if (level0.test(b))
                expect.push_back((b - r * bpr) * m.blockSize());
        }
        EXPECT_EQ(cols, expect) << "row " << r;
    }
}

TEST(Bmu, RangedScanRequiresConfiguredGroup)
{
    Bmu bmu;
    NativeExec e;
    EXPECT_THROW(bmu.beginScan(0, 4, 0, e), FatalError);
}

TEST(Bmu, RejectsBadGroupAndRatio)
{
    Bmu bmu;
    NativeExec e;
    EXPECT_THROW(bmu.matinfo(4, 4, Bmu::kGroups, e), FatalError);
    EXPECT_THROW(bmu.bmapinfo(1, 0, 0, e), FatalError);
    EXPECT_THROW(bmu.bmapinfo(Bmu::kMaxRatio + 1, 0, 0, e), FatalError);
    EXPECT_THROW(bmu.bmapinfo(2, Bmu::kBuffersPerGroup, 0, e),
                 FatalError);
}

TEST(Bmu, ChargesOneInstructionPerIsaOp)
{
    auto coo = sampleMatrix(16, 16, 12, 6);
    SmashMatrix m = SmashMatrix::fromCoo(coo, HierarchyConfig({2}));
    sim::Machine machine;
    sim::SimExec e(machine);
    Bmu bmu;
    bmu.matinfo(m.rows(), m.paddedCols(), 0, e);
    bmu.bmapinfo(2, 0, 0, e);
    bmu.rdbmap(&m.hierarchy().level(0), 0, 0, e);
    EXPECT_EQ(machine.core().instructions(), 3U);
    Counter before = machine.core().instructions();
    bmu.pbmap(0, e);
    Index r, c;
    bmu.rdind(r, c, 0, e);
    EXPECT_EQ(machine.core().instructions(), before + 2);
}

TEST(Bmu, RefillsChargeDeviceTrafficNotInstructions)
{
    // A bitmap much larger than one 256-byte buffer forces refills.
    fmt::CooMatrix coo = wl::genUniform(64, 4096, 2000, 11);
    SmashMatrix m = SmashMatrix::fromCoo(coo, HierarchyConfig({2}));
    ASSERT_GT(m.hierarchy().level(0).numWords(), 32 * 2);
    sim::Machine machine;
    sim::SimExec e(machine);
    Bmu bmu;
    bmu.matinfo(m.rows(), m.paddedCols(), 0, e);
    bmu.bmapinfo(2, 0, 0, e);
    bmu.rdbmap(&m.hierarchy().level(0), 0, 0, e);
    while (bmu.pbmap(0, e)) {
    }
    EXPECT_GT(bmu.stats().bufferRefills, 1U);
    // Memory saw the bitmap stream...
    EXPECT_GT(machine.memory().stats().accesses,
              machine.core().loads());
    // ...but instructions = ISA ops only (3 setup + pbmaps).
    EXPECT_EQ(machine.core().instructions(),
              3U + bmu.stats().pbmapCalls);
}

TEST(Bmu, RejectsHierarchiesDeeperThanItsBuffers)
{
    // Software supports up to kMaxLevels; the BMU has three SRAM
    // buffers per group (§4.2), so a fourth level must be refused.
    Bmu bmu;
    NativeExec e;
    bmu.bmapinfo(2, 0, 0, e);
    bmu.bmapinfo(4, 1, 0, e);
    bmu.bmapinfo(4, 2, 0, e);
    EXPECT_THROW(bmu.bmapinfo(4, 3, 0, e), FatalError);
}

TEST(AreaModel, ReproducesPaperBound)
{
    AreaReport report = computeBmuArea();
    EXPECT_EQ(report.sramBytes, 3 * 1024);
    EXPECT_GT(report.totalAreaMm2, 0.0);
    // The paper's headline: at most 0.076% of a Xeon-class core.
    EXPECT_LE(report.coreOverheadPct, 0.076);
    EXPECT_GT(report.coreOverheadPct, 0.01); // sanity: not absurdly low
}

TEST(AreaModel, ScalesWithBuffers)
{
    BmuSizing big;
    big.bufferBytes = 1024;
    EXPECT_GT(computeBmuArea(big).totalAreaMm2,
              computeBmuArea().totalAreaMm2);
}

TEST(AreaModel, RejectsNonPositiveSizing)
{
    BmuSizing bad;
    bad.groups = 0;
    EXPECT_THROW(computeBmuArea(bad), FatalError);
    AreaParams p;
    p.coreAreaMm2 = 0;
    EXPECT_THROW(computeBmuArea(BmuSizing{}, p), FatalError);
}

} // namespace
} // namespace smash::isa
