/**
 * @file
 * Tests for the SpGEMM kernels: all four dataflows (Gustavson,
 * outer-product, SMASH-SW, SMASH-HW) must produce the same CSR
 * output as the dense oracle on randomized inputs, and the cost
 * relations the paper relies on (SMASH-HW executes fewer
 * instructions than the software scan) must hold.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "formats/convert.hh"
#include "kernels/reference.hh"
#include "kernels/spgemm.hh"
#include "sim/exec_model.hh"
#include "workloads/matrix_gen.hh"

namespace smash::kern
{
namespace
{

using core::HierarchyConfig;
using core::SmashMatrix;
using sim::Machine;
using sim::NativeExec;
using sim::SimExec;

/** Dense oracle for C := A B. */
fmt::DenseMatrix
denseProduct(const fmt::CooMatrix& a, const fmt::CooMatrix& b)
{
    fmt::DenseMatrix c(a.rows(), b.cols());
    denseSpmm(a.toDense(), b.toDense(), c);
    return c;
}

struct SpgemmCase
{
    const char* name;
    Index m, k, n;
    Index nnz_a, nnz_b;
    std::uint64_t seed;
};

class Spgemm : public ::testing::TestWithParam<SpgemmCase>
{
  protected:
    void
    SetUp() override
    {
        const auto& p = GetParam();
        a_ = wl::genUniform(p.m, p.k, p.nnz_a, p.seed);
        b_ = wl::genUniform(p.k, p.n, p.nnz_b, p.seed + 100);
        oracle_ = denseProduct(a_, b_);
    }

    fmt::CooMatrix a_, b_;
    fmt::DenseMatrix oracle_;
};

TEST_P(Spgemm, GustavsonMatchesDenseOracle)
{
    NativeExec e;
    fmt::CsrMatrix c = spgemmGustavson(fmt::CsrMatrix::fromCoo(a_),
                                       fmt::CsrMatrix::fromCoo(b_), e);
    EXPECT_TRUE(c.checkInvariants());
    EXPECT_TRUE(c.toDense().approxEquals(oracle_, 1e-9));
}

TEST_P(Spgemm, OuterProductMatchesDenseOracle)
{
    NativeExec e;
    fmt::CsrMatrix b_csr = fmt::CsrMatrix::fromCoo(b_);
    fmt::CscMatrix a_csc = fmt::csrToCsc(fmt::CsrMatrix::fromCoo(a_));
    fmt::CsrMatrix c = spgemmOuter(a_csc, b_csr, e);
    EXPECT_TRUE(c.checkInvariants());
    EXPECT_TRUE(c.toDense().approxEquals(oracle_, 1e-9));
}

TEST_P(Spgemm, OuterAgreesWithGustavsonExactly)
{
    NativeExec e;
    fmt::CsrMatrix a_csr = fmt::CsrMatrix::fromCoo(a_);
    fmt::CsrMatrix b_csr = fmt::CsrMatrix::fromCoo(b_);
    fmt::CsrMatrix g = spgemmGustavson(a_csr, b_csr, e);
    fmt::CsrMatrix o = spgemmOuter(fmt::csrToCsc(a_csr), b_csr, e);
    // Same SPA, same harvest order: structures must be identical.
    EXPECT_EQ(g.rowPtr(), o.rowPtr());
    EXPECT_EQ(g.colInd(), o.colInd());
    ASSERT_EQ(g.values().size(), o.values().size());
    for (std::size_t i = 0; i < g.values().size(); ++i)
        EXPECT_NEAR(g.values()[i], o.values()[i], 1e-9);
}

TEST_P(Spgemm, SmashSwMatchesDenseOracle)
{
    NativeExec e;
    SmashMatrix a = SmashMatrix::fromCoo(
        a_, HierarchyConfig::fromPaperNotation({16, 4, 2}));
    fmt::CsrMatrix c = spgemmSmashSw(a, fmt::CsrMatrix::fromCoo(b_), e);
    EXPECT_TRUE(c.checkInvariants());
    EXPECT_TRUE(c.toDense().approxEquals(oracle_, 1e-9));
}

TEST_P(Spgemm, SmashHwMatchesDenseOracle)
{
    NativeExec e;
    isa::Bmu bmu;
    SmashMatrix a = SmashMatrix::fromCoo(
        a_, HierarchyConfig::fromPaperNotation({16, 4, 2}));
    fmt::CsrMatrix c = spgemmSmashHw(a, bmu, fmt::CsrMatrix::fromCoo(b_), e);
    EXPECT_TRUE(c.checkInvariants());
    EXPECT_TRUE(c.toDense().approxEquals(oracle_, 1e-9));
}

TEST_P(Spgemm, SmashHwExecutesFewerInstructionsThanSw)
{
    SmashMatrix a = SmashMatrix::fromCoo(
        a_, HierarchyConfig::fromPaperNotation({16, 4, 2}));
    fmt::CsrMatrix b_csr = fmt::CsrMatrix::fromCoo(b_);

    Machine m_sw, m_hw;
    SimExec e_sw(m_sw), e_hw(m_hw);
    isa::Bmu bmu;
    spgemmSmashSw(a, b_csr, e_sw);
    spgemmSmashHw(a, bmu, b_csr, e_hw);
    EXPECT_LT(m_hw.core().instructions(), m_sw.core().instructions());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Spgemm,
    ::testing::Values(
        SpgemmCase{"square_sparse", 48, 48, 48, 200, 200, 21},
        SpgemmCase{"square_denser", 32, 32, 32, 400, 400, 22},
        SpgemmCase{"rect_tall", 64, 24, 40, 180, 160, 23},
        SpgemmCase{"rect_wide", 24, 64, 40, 180, 300, 24},
        SpgemmCase{"very_sparse", 80, 80, 80, 90, 90, 25}),
    [](const auto& info) { return info.param.name; });

TEST(SpgemmEdge, EmptyTimesAnything)
{
    NativeExec e;
    fmt::CooMatrix a(8, 8), b = wl::genUniform(8, 8, 20, 31);
    a.canonicalize();
    fmt::CsrMatrix c = spgemmGustavson(fmt::CsrMatrix::fromCoo(a),
                                       fmt::CsrMatrix::fromCoo(b), e);
    EXPECT_EQ(c.nnz(), 0);
    EXPECT_TRUE(c.checkInvariants());
}

TEST(SpgemmEdge, DimensionMismatchThrows)
{
    NativeExec e;
    fmt::CooMatrix a = wl::genUniform(4, 5, 8, 1);
    fmt::CooMatrix b = wl::genUniform(4, 4, 8, 2);
    EXPECT_THROW(spgemmGustavson(fmt::CsrMatrix::fromCoo(a),
                                 fmt::CsrMatrix::fromCoo(b), e),
                 FatalError);
}

TEST(SpgemmEdge, IdentityIsNeutral)
{
    NativeExec e;
    fmt::CooMatrix ident(16, 16);
    for (Index i = 0; i < 16; ++i)
        ident.add(i, i, 1.0);
    ident.canonicalize();
    fmt::CooMatrix a = wl::genUniform(16, 16, 60, 7);
    fmt::CsrMatrix a_csr = fmt::CsrMatrix::fromCoo(a);
    fmt::CsrMatrix c = spgemmGustavson(a_csr,
                                       fmt::CsrMatrix::fromCoo(ident), e);
    EXPECT_TRUE(c.toDense().approxEquals(a.toDense(), 0.0));
}

TEST(SpgemmEdge, ChainAssociativity)
{
    // (A B) C == A (B C) — exercises fromRaw outputs as inputs.
    NativeExec e;
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(wl::genUniform(20, 24, 90, 3));
    fmt::CsrMatrix b = fmt::CsrMatrix::fromCoo(wl::genUniform(24, 16, 80, 4));
    fmt::CsrMatrix c = fmt::CsrMatrix::fromCoo(wl::genUniform(16, 20, 70, 5));
    fmt::CsrMatrix ab_c = spgemmGustavson(spgemmGustavson(a, b, e), c, e);
    fmt::CsrMatrix a_bc = spgemmGustavson(a, spgemmGustavson(b, c, e), e);
    EXPECT_TRUE(ab_c.toDense().approxEquals(a_bc.toDense(), 1e-9));
}

TEST(SpaRowUnit, ScatterAccumulatesAndHarvestSorts)
{
    NativeExec e;
    SpaRow spa(10);
    spa.scatter(7, 1.5, e);
    spa.scatter(2, 1.0, e);
    spa.scatter(7, 0.5, e);
    EXPECT_EQ(spa.touchedCount(), 2);
    std::vector<fmt::CsrIndex> cols;
    std::vector<Value> vals;
    spa.harvest(cols, vals, e);
    EXPECT_EQ(cols, (std::vector<fmt::CsrIndex>{2, 7}));
    EXPECT_EQ(vals, (std::vector<Value>{1.0, 2.0}));
    EXPECT_EQ(spa.touchedCount(), 0);
    // Reusable after harvest.
    spa.scatter(2, -1.0, e);
    spa.harvest(cols, vals, e);
    EXPECT_EQ(vals.back(), Value(-1.0));
}

} // namespace
} // namespace smash::kern
