/**
 * @file
 * Tests for the extension-layer pieces that don't belong to one
 * module's suite: the Poisson / diagonally-dominant generators, raw
 * CSR adoption (fromRaw) failure injection, round-capped semiring
 * traversals, and the simulated-cost character of the structured
 * formats (DIA has no pointer chasing; ELL does).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "formats/convert.hh"
#include "graph/generators.hh"
#include "graph/semiring.hh"
#include "graph/traversal.hh"
#include "kernels/spmv.hh"
#include "kernels/spmv_structured.hh"
#include "sim/exec_model.hh"
#include "workloads/matrix_gen.hh"

namespace smash
{
namespace
{

using sim::Machine;
using sim::NativeExec;
using sim::SimExec;

// ----------------------------------------------------- genPoisson2d

TEST(Poisson2d, StructureOfTinyGrid)
{
    // 2x2 grid: each node has 2 neighbours -> 4 + 8 entries.
    fmt::CooMatrix coo = wl::genPoisson2d(2, 2);
    EXPECT_EQ(coo.rows(), 4);
    EXPECT_EQ(coo.nnz(), 12);
    fmt::DenseMatrix d = coo.toDense();
    for (Index i = 0; i < 4; ++i)
        EXPECT_EQ(d.at(i, i), 4.0);
}

TEST(Poisson2d, IsSymmetric)
{
    fmt::CooMatrix coo = wl::genPoisson2d(7, 5);
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo);
    fmt::CsrMatrix at = fmt::transpose(a);
    EXPECT_EQ(a.rowPtr(), at.rowPtr());
    EXPECT_EQ(a.colInd(), at.colInd());
    EXPECT_EQ(a.values(), at.values());
}

TEST(Poisson2d, IsPositiveDefinite)
{
    // x^T A x > 0 for random non-zero x (sampled check).
    fmt::CooMatrix coo = wl::genPoisson2d(6, 6);
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo);
    Rng rng(9);
    NativeExec e;
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<Value> x(static_cast<std::size_t>(a.rows()));
        for (auto& v : x)
            v = rng.uniform() - 0.5;
        std::vector<Value> ax(x.size(), 0.0);
        kern::spmvCsr(a, x, ax, e);
        double quad = 0;
        for (std::size_t i = 0; i < x.size(); ++i)
            quad += x[i] * ax[i];
        EXPECT_GT(quad, 0.0);
    }
}

TEST(Poisson2d, RejectsEmptyGrid)
{
    EXPECT_THROW(wl::genPoisson2d(0, 4), FatalError);
    EXPECT_THROW(wl::genPoisson2d(4, 0), FatalError);
}

TEST(Poisson2d, RectangularGridRowDegreeBounds)
{
    fmt::CooMatrix coo = wl::genPoisson2d(9, 3);
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo);
    for (Index r = 0; r < a.rows(); ++r) {
        EXPECT_GE(a.rowNnz(r), 3); // corner: diag + 2 neighbours
        EXPECT_LE(a.rowNnz(r), 5); // interior: diag + 4 neighbours
    }
}

// -------------------------------------------------- genDiagDominant

TEST(DiagDominant, RowsAreStrictlyDominant)
{
    fmt::CooMatrix coo = wl::genDiagDominant(40, 5, 0.75, 11);
    fmt::DenseMatrix d = coo.toDense();
    for (Index r = 0; r < 40; ++r) {
        double off = 0;
        for (Index c = 0; c < 40; ++c)
            if (c != r)
                off += std::abs(d.at(r, c));
        EXPECT_NEAR(d.at(r, r), off + 0.75, 1e-9) << "row " << r;
    }
}

TEST(DiagDominant, HonorsOffDiagonalBudget)
{
    fmt::CooMatrix coo = wl::genDiagDominant(30, 4, 1.0, 5);
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo);
    for (Index r = 0; r < 30; ++r)
        EXPECT_EQ(a.rowNnz(r), 5); // 4 off-diagonals + diagonal
}

TEST(DiagDominant, IsDeterministic)
{
    fmt::CooMatrix a = wl::genDiagDominant(20, 3, 1.0, 42);
    fmt::CooMatrix b = wl::genDiagDominant(20, 3, 1.0, 42);
    ASSERT_EQ(a.nnz(), b.nnz());
    for (std::size_t i = 0; i < a.entries().size(); ++i) {
        EXPECT_EQ(a.entries()[i].row, b.entries()[i].row);
        EXPECT_EQ(a.entries()[i].col, b.entries()[i].col);
        EXPECT_EQ(a.entries()[i].value, b.entries()[i].value);
    }
}

TEST(DiagDominant, RejectsBadArguments)
{
    EXPECT_THROW(wl::genDiagDominant(0, 1, 1.0, 1), FatalError);
    EXPECT_THROW(wl::genDiagDominant(8, 8, 1.0, 1), FatalError);
    EXPECT_THROW(wl::genDiagDominant(8, 2, 0.0, 1), FatalError);
}

// ------------------------------------------------- CsrMatrix::fromRaw

TEST(CsrFromRaw, AcceptsWellFormedTriples)
{
    fmt::CsrMatrix m = fmt::CsrMatrix::fromRaw(
        2, 3, {0, 2, 3}, {0, 2, 1}, {1.0, 2.0, 3.0});
    EXPECT_EQ(m.nnz(), 3);
    EXPECT_EQ(m.at(0, 2), 2.0);
    EXPECT_TRUE(m.checkInvariants());
}

TEST(CsrFromRaw, KeepsExplicitZeros)
{
    fmt::CsrMatrix m = fmt::CsrMatrix::fromRaw(
        1, 2, {0, 1}, {1}, {0.0});
    EXPECT_EQ(m.nnz(), 1); // stored entries, even if zero-valued
}

TEST(CsrFromRaw, RejectsMalformedTriples)
{
    // row_ptr wrong length
    EXPECT_THROW(fmt::CsrMatrix::fromRaw(2, 2, {0, 1}, {0}, {1.0}),
                 FatalError);
    // non-monotone row_ptr
    EXPECT_THROW(fmt::CsrMatrix::fromRaw(2, 2, {0, 2, 1}, {0, 1},
                                         {1.0, 2.0}),
                 FatalError);
    // unsorted columns within a row
    EXPECT_THROW(fmt::CsrMatrix::fromRaw(1, 3, {0, 2}, {2, 0},
                                         {1.0, 2.0}),
                 FatalError);
    // column out of range
    EXPECT_THROW(fmt::CsrMatrix::fromRaw(1, 2, {0, 1}, {2}, {1.0}),
                 FatalError);
    // col_ind / values length mismatch
    EXPECT_THROW(fmt::CsrMatrix::fromRaw(1, 2, {0, 1}, {0}, {1.0, 2.0}),
                 FatalError);
}

// ------------------------------------------- round-capped traversals

TEST(CappedTraversal, BfsStopsAtRequestedDepth)
{
    // Path graph 0 -> 1 -> 2 -> 3 -> 4.
    graph::Graph g = graph::Graph::fromEdges(
        5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
    fmt::CsrMatrix at = fmt::transpose(g.toAdjacencyMatrix());
    NativeExec e;
    auto spmv = [&](const std::vector<Value>& x, std::vector<Value>& y) {
        graph::spmvSemiringCsr<graph::BooleanSemiring>(at, x, y, e);
    };
    auto capped = graph::bfsSemiring(5, 0, spmv, 2);
    EXPECT_EQ(capped, (std::vector<Index>{0, 1, 2, graph::kUnreached,
                                          graph::kUnreached}));
    auto full = graph::bfsSemiring(5, 0, spmv);
    EXPECT_EQ(full, (std::vector<Index>{0, 1, 2, 3, 4}));
}

TEST(CappedTraversal, SsspPartialDistancesAreUpperBounds)
{
    graph::Graph g = graph::gridGraph(6, 6, 3);
    fmt::CsrMatrix at = fmt::transpose(g.toAdjacencyMatrix());
    NativeExec e;
    auto spmv = [&](const std::vector<Value>& x, std::vector<Value>& y) {
        graph::spmvSemiringCsr<graph::MinPlusSemiring>(at, x, y, e);
    };
    auto partial = graph::ssspSemiring(g.numVertices(), 0, spmv, 3);
    auto full = graph::ssspSemiring(g.numVertices(), 0, spmv);
    for (std::size_t v = 0; v < full.size(); ++v)
        EXPECT_GE(partial[v], full[v]) << "vertex " << v;
    // Within 3 hops the partial result is already exact.
    for (std::size_t v = 0; v < full.size(); ++v) {
        if (full[v] <= 3.0) {
            EXPECT_EQ(partial[v], full[v]);
        }
    }
}

// ------------------------------ structured formats under simulation

TEST(StructuredCost, DiaHasNoDependentLoads)
{
    fmt::CooMatrix coo = wl::genTrefethen(128, 1000);
    fmt::DiaMatrix dia = fmt::DiaMatrix::fromCoo(coo);
    std::vector<Value> x(static_cast<std::size_t>(coo.cols()), 1.0);
    std::vector<Value> y(static_cast<std::size_t>(coo.rows()), 0.0);

    Machine m;
    SimExec e(m);
    kern::spmvDia(dia, x, y, e);
    EXPECT_EQ(m.core().dependentLoads(), 0u);
    EXPECT_GT(m.core().instructions(), 0u);
}

TEST(StructuredCost, EllChasesLikeCsr)
{
    fmt::CooMatrix coo = wl::genUniform(96, 96, 600, 7);
    fmt::EllMatrix ell = fmt::EllMatrix::fromCoo(coo);
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    std::vector<Value> x(static_cast<std::size_t>(coo.cols()), 1.0);
    std::vector<Value> y(static_cast<std::size_t>(coo.rows()), 0.0);

    Machine m_ell, m_csr;
    SimExec e_ell(m_ell), e_csr(m_csr);
    kern::spmvEll(ell, x, y, e_ell);
    std::fill(y.begin(), y.end(), 0.0);
    kern::spmvCsr(csr, x, y, e_csr);
    // One dependent x-load per stored non-zero in both.
    EXPECT_EQ(m_ell.core().dependentLoads(),
              m_csr.core().dependentLoads());
}

TEST(StructuredCost, DiaBeatsCsrOnBandedMatrixInSim)
{
    // The §2.3 story quantified: on a banded matrix, DIA's regular
    // traversal needs fewer cycles than CSR's indexed one.
    fmt::CooMatrix coo = wl::genTrefethen(512, 5000);
    fmt::DiaMatrix dia = fmt::DiaMatrix::fromCoo(coo);
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    std::vector<Value> x(static_cast<std::size_t>(coo.cols()), 1.0);
    std::vector<Value> y(static_cast<std::size_t>(coo.rows()), 0.0);

    Machine m_dia, m_csr;
    SimExec e_dia(m_dia), e_csr(m_csr);
    kern::spmvDia(dia, x, y, e_dia);
    std::fill(y.begin(), y.end(), 0.0);
    kern::spmvCsr(csr, x, y, e_csr);
    EXPECT_LT(m_dia.core().cycles() / m_dia.core().instructions() * 1.0,
              1e9); // sanity: finite
    EXPECT_LT(m_dia.core().cycles(), m_csr.core().cycles());
}

} // namespace
} // namespace smash
