/**
 * @file
 * Tests for the update-and-reselect subsystem: CSR master mutation
 * (COO deltas, row replacement, value scaling) against dense
 * oracles, the incremental StructureTracker against the full-scan
 * analyzeStructure(), hysteresis in chooseFormatSticky(), and the
 * registry/session drift path — drift deltas trigger exactly one
 * re-encode, results submitted across the swap stay bit-identical
 * (all test values are dyadic rationals, so every summation order
 * is exact), and thrash near a boundary is suppressed.
 *
 * Thread counts: SMASH_SERVE_THREADS pins one count (the ctest
 * variants run 1, 2, and 8); unset, every count is covered.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

#include "engine/autoselect.hh"
#include "engine/dispatch.hh"
#include "engine/mutate.hh"
#include "engine/profile.hh"
#include "formats/dense_matrix.hh"
#include "serve/session.hh"
#include "workloads/matrix_gen.hh"

namespace smash
{
namespace
{

std::vector<int>
threadCounts()
{
    if (const char* env = std::getenv("SMASH_SERVE_THREADS"))
        return {std::atoi(env)};
    return {1, 2, 8};
}

/** Dyadic-valued operand (multiples of 2^-4): exact in any order. */
std::vector<Value>
dyadicOperand(Index n, Index kind)
{
    std::vector<Value> x(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i)
        x[static_cast<std::size_t>(i)] =
            Value(1) + Value((i * 5 + kind) % 9) * Value(0.0625);
    return x;
}

/** Wait until no re-encode is pending for @p name. */
bool
waitReencodeSettled(serve::MatrixRegistry& registry,
                    const std::string& name)
{
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::seconds(5);
    while (registry.info(name).reencodePending) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
}

TEST(Mutate, ApplyUpdatesMatchesDenseOracle)
{
    const fmt::CooMatrix base = wl::genClustered(40, 40, 300, 4, 7);
    fmt::CsrMatrix m = fmt::CsrMatrix::fromCoo(base);

    fmt::CooMatrix deltas(40, 40);
    // Overlap an existing coordinate, insert fresh ones, and cancel
    // one entry exactly.
    const fmt::CooEntry first = base.entries().front();
    deltas.add(first.row, first.col, Value(0.5));
    const fmt::CooEntry last = base.entries().back();
    deltas.add(last.row, last.col, -last.value); // exact cancel
    deltas.add(0, 39, Value(2));
    deltas.add(39, 0, Value(-3));
    deltas.canonicalize();

    const eng::MutationStats stats = eng::applyUpdates(m, deltas);
    EXPECT_EQ(stats.removed, 1);
    EXPECT_GE(stats.inserted, 2);
    EXPECT_GE(stats.updated, 1);

    const fmt::DenseMatrix want = [&] {
        fmt::DenseMatrix d = base.toDense();
        for (const fmt::CooEntry& e : deltas.entries())
            d.at(e.row, e.col) += e.value;
        return d;
    }();
    const fmt::DenseMatrix got = m.toDense();
    for (Index r = 0; r < 40; ++r)
        for (Index c = 0; c < 40; ++c)
            EXPECT_EQ(got.at(r, c), want.at(r, c))
                << "(" << r << ", " << c << ")";
    EXPECT_TRUE(m.checkInvariants());
    EXPECT_EQ(m.nnz(), base.nnz() + stats.inserted - stats.removed);
}

TEST(Mutate, ReplaceRowsMatchesDenseOracle)
{
    const fmt::CooMatrix base = wl::genClustered(32, 32, 200, 4, 11);
    fmt::CsrMatrix m = fmt::CsrMatrix::fromCoo(base);

    fmt::CooMatrix repl(32, 32);
    repl.add(3, 0, Value(1.5));
    repl.add(3, 31, Value(-2.5));
    // Row 17 is listed with no entries: it becomes empty.
    repl.canonicalize();

    eng::replaceRows(m, {3, 17}, repl);

    fmt::DenseMatrix want = base.toDense();
    for (Index c = 0; c < 32; ++c) {
        want.at(3, c) = Value(0);
        want.at(17, c) = Value(0);
    }
    want.at(3, 0) = Value(1.5);
    want.at(3, 31) = Value(-2.5);
    const fmt::DenseMatrix got = m.toDense();
    for (Index r = 0; r < 32; ++r)
        for (Index c = 0; c < 32; ++c)
            EXPECT_EQ(got.at(r, c), want.at(r, c))
                << "(" << r << ", " << c << ")";
    EXPECT_TRUE(m.checkInvariants());

    // Entries outside the listed rows are rejected.
    fmt::CooMatrix bad(32, 32);
    bad.add(5, 5, Value(1));
    bad.canonicalize();
    EXPECT_THROW(eng::replaceRows(m, {3}, bad), FatalError);
}

TEST(Mutate, ScaleValuesPreservesStructure)
{
    const fmt::CooMatrix base = wl::genClustered(24, 24, 120, 4, 13);
    fmt::CsrMatrix m = fmt::CsrMatrix::fromCoo(base);
    const Index nnz = m.nnz();
    eng::scaleValues(m, Value(0.25));
    EXPECT_EQ(m.nnz(), nnz);
    for (const fmt::CooEntry& e : base.entries())
        EXPECT_EQ(m.at(e.row, e.col), e.value * Value(0.25));
    // Scaling by zero keeps explicit zeros (structure intact).
    eng::scaleValues(m, Value(0));
    EXPECT_EQ(m.nnz(), nnz);
}

TEST(Profile, TrackerMatchesFullScanAfterMutations)
{
    const fmt::CooMatrix base = wl::genPowerLaw(64, 64, 700, 1.1, 17);
    fmt::CsrMatrix m = fmt::CsrMatrix::fromCoo(base);
    eng::StructureTracker tracker(m);

    const auto listener = [&tracker](Index r, Index c, bool inserted) {
        tracker.onStructureChange(r, c, inserted);
    };
    std::uint64_t state = 99;
    for (int round = 0; round < 4; ++round)
        eng::applyUpdates(m, wl::genScatterDeltas(64, 64, 50, state++), listener);
    fmt::CooMatrix repl(64, 64);
    repl.add(10, 3, Value(1));
    repl.add(10, 60, Value(2));
    repl.canonicalize();
    eng::replaceRows(m, {10, 11}, repl, listener);

    const eng::StructureStats full =
        eng::analyzeStructure(m.toCoo(), tracker.block());
    const eng::StructureStats inc = tracker.stats();
    EXPECT_EQ(inc.rows, full.rows);
    EXPECT_EQ(inc.cols, full.cols);
    EXPECT_EQ(inc.nnz, full.nnz);
    EXPECT_EQ(inc.maxNnzPerRow, full.maxNnzPerRow);
    EXPECT_EQ(inc.numDiagonals, full.numDiagonals);
    EXPECT_NEAR(inc.density, full.density, 1e-12);
    EXPECT_NEAR(inc.avgNnzPerRow, full.avgNnzPerRow, 1e-12);
    EXPECT_NEAR(inc.rowCv, full.rowCv, 1e-12);
    EXPECT_NEAR(inc.diagonalFill, full.diagonalFill, 1e-12);
    EXPECT_NEAR(inc.blockLocality, full.blockLocality, 1e-12);
}

TEST(Reselect, StickyChoiceNeedsDecisiveCrossing)
{
    // A profile just past the SMASH boundary: the plain chooser
    // flips, the sticky chooser holds until the margin is beaten.
    eng::StructureStats s;
    s.rows = 100;
    s.cols = 100;
    s.nnz = 500;
    s.density = 0.05;
    s.avgNnzPerRow = 5;
    s.rowCv = 1.0; // not ELL
    s.maxNnzPerRow = 50;
    s.numDiagonals = 90; // not DIA
    s.diagonalFill = 0.05;
    s.blockLocality = 0.55;
    s.localityBlock = 8;
    EXPECT_EQ(eng::chooseFormat(s), eng::Format::kSmash);
    EXPECT_EQ(eng::chooseFormatSticky(s, eng::Format::kCsr, 0.1),
              eng::Format::kCsr);
    EXPECT_EQ(eng::chooseFormatSticky(s, eng::Format::kCsr, 0.02),
              eng::Format::kSmash);

    // Inside the band in the other direction: a DIA matrix whose
    // fill sagged below the plain boundary stays DIA.
    eng::StructureStats d = s;
    d.blockLocality = 0.1;
    d.numDiagonals = 9;
    d.diagonalFill = 0.45;
    EXPECT_EQ(eng::chooseFormat(d), eng::Format::kCsr);
    EXPECT_EQ(eng::chooseFormatSticky(d, eng::Format::kDia, 0.1),
              eng::Format::kDia);
    EXPECT_EQ(eng::chooseFormatSticky(d, eng::Format::kCsr, 0.1),
              eng::Format::kCsr);

    // The cap-style boundaries get the same band: an ELL matrix
    // whose max/avg row population pokes just past the plain cap
    // (2*avg+1 = 11 < max 12) stays ELL under the margin.
    eng::StructureStats e = s;
    e.blockLocality = 0.1;
    e.rowCv = 0.05;
    e.maxNnzPerRow = 12;
    EXPECT_EQ(eng::chooseFormat(e), eng::Format::kCsr);
    EXPECT_EQ(eng::chooseFormatSticky(e, eng::Format::kEll, 0.2),
              eng::Format::kEll);
    EXPECT_EQ(eng::chooseFormatSticky(e, eng::Format::kCsr, 0.2),
              eng::Format::kCsr);
}

TEST(Reselect, HysteresisSuppressesThrashThenMovesDecisively)
{
    // 64x64, three entries per row inside one aligned 8-block:
    // uniform rows, block locality 3/8 — auto-selects ELL.
    fmt::CooMatrix coo(64, 64);
    for (Index r = 0; r < 64; ++r)
        for (Index k = 0; k < 3; ++k)
            coo.add(r, 8 * (r % 8) + k, Value(1) + Value(k) * Value(0.5));
    coo.canonicalize();

    serve::MatrixRegistry registry;
    serve::ReselectPolicy policy;
    policy.margin = 0.2;
    policy.minChanged = 16;
    registry.setReselectPolicy(policy);
    EXPECT_EQ(registry.put("drifty", std::move(coo)),
              eng::Format::kEll);

    // +1 entry per row in the same block: locality reaches the
    // plain SMASH boundary (0.5) but not the sticky one (0.7) —
    // inside the hysteresis band, nothing may happen.
    fmt::CooMatrix band(64, 64);
    for (Index r = 0; r < 64; ++r)
        band.add(r, 8 * (r % 8) + 3, Value(0.5));
    band.canonicalize();
    serve::UpdateOutcome out = registry.applyUpdates("drifty", band);
    EXPECT_EQ(out.stats.inserted, 64);
    EXPECT_FALSE(out.reencodeScheduled);
    EXPECT_EQ(registry.reselects("drifty"), 0u);
    EXPECT_EQ(registry.format("drifty"), eng::Format::kEll);

    // +2 more per row: locality 6/8 beats the margin — exactly one
    // (synchronous, hook-less) re-encode to SMASH.
    fmt::CooMatrix decisive(64, 64);
    for (Index r = 0; r < 64; ++r) {
        decisive.add(r, 8 * (r % 8) + 4, Value(0.25));
        decisive.add(r, 8 * (r % 8) + 5, Value(0.25));
    }
    decisive.canonicalize();
    out = registry.applyUpdates("drifty", decisive);
    EXPECT_TRUE(out.reencodeScheduled);
    EXPECT_EQ(out.target, eng::Format::kSmash);
    EXPECT_EQ(registry.reselects("drifty"), 1u);
    EXPECT_EQ(registry.format("drifty"), eng::Format::kSmash);
    EXPECT_FALSE(registry.info("drifty").reencodePending);

    // Keep pushing in the same direction: already in the favoured
    // format, so no further re-encodes (no thrash).
    fmt::CooMatrix more(64, 64);
    for (Index r = 0; r < 64; ++r)
        more.add(r, 8 * (r % 8) + 6, Value(0.125));
    more.canonicalize();
    out = registry.applyUpdates("drifty", more);
    EXPECT_FALSE(out.reencodeScheduled);
    EXPECT_EQ(registry.reselects("drifty"), 1u);
}

TEST(Reselect, MutationInvalidatesCachedEncodingsButNotHeldEpochs)
{
    serve::MatrixRegistry registry;
    registry.put("m", wl::genTridiagonal(64));
    const serve::MatrixRegistry::EncodingPtr before =
        registry.encoded("m");

    const std::vector<Value> x = dyadicOperand(64, 3);
    sim::NativeExec e;
    std::vector<Value> y_before(64, Value(0));
    eng::spmv(before->ref(), x, y_before, e);

    registry.scaleValues("m", Value(2));
    const serve::MatrixRegistry::EncodingPtr after =
        registry.encoded("m");
    EXPECT_NE(before.get(), after.get()); // rebuilt from new master
    // The held epoch still computes with the pre-mutation values.
    std::vector<Value> y_held(64, Value(0));
    eng::spmv(before->ref(), x, y_held, e);
    std::vector<Value> y_after(64, Value(0));
    eng::spmv(after->ref(), x, y_after, e);
    for (Index i = 0; i < 64; ++i) {
        EXPECT_EQ(y_held[static_cast<std::size_t>(i)],
                  y_before[static_cast<std::size_t>(i)]);
        EXPECT_EQ(y_after[static_cast<std::size_t>(i)],
                  y_before[static_cast<std::size_t>(i)] * Value(2));
    }
    EXPECT_EQ(registry.info("m").epoch, 1u);
}

TEST(Reselect, DriftTriggersExactlyOneAsyncReencode)
{
    const Index n = 256;
    for (int threads : threadCounts()) {
        serve::MatrixRegistry registry;
        ASSERT_EQ(registry.put("live", wl::genTridiagonal(n)),
                  eng::Format::kDia);

        serve::SessionOptions opts;
        opts.threads = threads;
        opts.maxBatch = 4;
        serve::Session session(registry, opts);

        // Warm the cache so the drift path starts from a served
        // steady state.
        ASSERT_TRUE(session
                        .submit(serve::SpmvRequest{
                            "live", dyadicOperand(n, 0)})
                        .get()
                        .ok());
        ASSERT_EQ(registry.format("live"), eng::Format::kDia);

        // Phase A: scattered deltas until the detector schedules
        // the re-encode (asynchronously, through the session's
        // pipeline), then a few more rounds that must NOT schedule
        // a second one while it is pending or after it lands.
        std::uint64_t state = 2026;
        bool scheduled = false;
        for (int round = 0; round < 12; ++round) {
            const serve::UpdateOutcome out = session.applyUpdates(
                "live", wl::genScatterDeltas(n, n, 64, state++));
            if (out.reencodeScheduled) {
                scheduled = true;
                break;
            }
        }
        ASSERT_TRUE(scheduled) << "drift never crossed the boundary";
        for (int round = 0; round < 3; ++round) {
            const serve::UpdateOutcome out = session.applyUpdates(
                "live", wl::genScatterDeltas(n, n, 64, state++));
            EXPECT_FALSE(out.reencodeScheduled);
        }

        // Phase B: the master is now fixed; hammer submits from
        // several client threads while the re-encode may still be
        // in flight. Every result must be bit-identical to the
        // oracle — the old and new encodings hold the same dyadic
        // content, so the swap cannot show through.
        std::vector<Value> oracle;
        {
            sim::NativeExec e;
            oracle.assign(static_cast<std::size_t>(n), Value(0));
            eng::spmv(registry.encoded("live")->ref(),
                      dyadicOperand(n, 1), oracle, e);
        }
        constexpr int kClients = 3;
        constexpr int kPerClient = 10;
        std::vector<
            std::future<serve::Result<std::vector<Value>>>>
            futures(kClients * kPerClient);
        std::atomic<std::size_t> slot{0};
        std::vector<std::thread> clients;
        for (int c = 0; c < kClients; ++c)
            clients.emplace_back([&] {
                for (int i = 0; i < kPerClient; ++i)
                    futures[slot.fetch_add(1)] =
                        session.submit(serve::SpmvRequest{
                            "live", dyadicOperand(n, 1)});
            });
        for (std::thread& c : clients)
            c.join();
        for (auto& f : futures) {
            serve::Result<std::vector<Value>> result = f.get();
            ASSERT_TRUE(result.ok()) << result.status().toString();
            const std::vector<Value>& got = result.value();
            ASSERT_EQ(got.size(), oracle.size());
            for (std::size_t i = 0; i < got.size(); ++i)
                ASSERT_EQ(got[i], oracle[i])
                    << "row " << i << " threads " << threads;
        }

        ASSERT_TRUE(waitReencodeSettled(registry, "live"));
        session.drain();
        EXPECT_EQ(registry.reselects("live"), 1u)
            << "threads " << threads;
        EXPECT_NE(registry.format("live"), eng::Format::kDia);
        EXPECT_EQ(session.stats().reencodes.load(), 1u);
        EXPECT_EQ(session.stats().failed.load(), 0u);

        // Post-swap requests serve from the re-selected encoding
        // and still agree bit-for-bit.
        const std::vector<Value> after =
            session
                .submit(serve::SpmvRequest{"live",
                                           dyadicOperand(n, 1)})
                .get()
                .value();
        for (std::size_t i = 0; i < after.size(); ++i)
            ASSERT_EQ(after[i], oracle[i]);
    }
}

TEST(Reselect, ReplaceRowsServesFreshContent)
{
    for (int threads : threadCounts()) {
        serve::MatrixRegistry registry;
        registry.put("m", wl::genTridiagonal(96));
        serve::SessionOptions opts;
        opts.threads = threads;
        serve::Session session(registry, opts);

        ASSERT_TRUE(session
                        .submit(serve::SpmvRequest{
                            "m", dyadicOperand(96, 2)})
                        .get()
                        .ok());

        fmt::CooMatrix repl(96, 96);
        repl.add(7, 0, Value(8));
        repl.add(7, 95, Value(0.5));
        repl.canonicalize();
        session.replaceRows("m", {7}, repl);

        const std::vector<Value> x = dyadicOperand(96, 2);
        const std::vector<Value> y =
            session.submit(serve::SpmvRequest{"m", x}).get().value();
        EXPECT_EQ(y[7], Value(8) * x[0] + Value(0.5) * x[95]);
        session.drain();
    }
}

TEST(PlanInvalidation, MutatedMatrixBitMatchesColdPlanRun)
{
    // Plan-cache correctness across mutations: after applyUpdates /
    // replaceRows, a parallel SpMV over the registry's (re-built,
    // fresh-plan-cache) encoding must bit-match a cold run over an
    // independently constructed encoding of the same content, at
    // every thread count. A stale partition plan (cuts balanced for
    // the pre-mutation structure but also any missed invalidation)
    // would split rows differently — with dyadic values any split
    // is exact, so only genuinely wrong plans (out-of-range cuts,
    // stale word ranks) can diverge, and those diverge loudly.
    const Index n = 192;
    serve::MatrixRegistry registry;
    registry.put("m", wl::genTridiagonal(n));
    const std::vector<Value> x = dyadicOperand(n, 4);

    std::uint64_t state = 99;
    registry.applyUpdates("m", wl::genScatterDeltas(n, n, 80, state++));
    fmt::CooMatrix repl(n, n);
    repl.add(11, 0, Value(4));
    repl.add(11, n - 1, Value(0.25));
    repl.canonicalize();
    registry.replaceRows("m", {11}, repl);

    // Warm the served encoding's plan cache at one thread count,
    // then check every count against cold-plan references.
    const serve::MatrixRegistry::EncodingPtr enc =
        registry.encoded("m");
    for (int threads : threadCounts()) {
        exec::ParallelExec pe(threads);
        std::vector<Value> warm(static_cast<std::size_t>(n),
                                Value(0));
        eng::spmv(enc->ref(), x, warm, pe); // builds + caches plan
        std::vector<Value> again(static_cast<std::size_t>(n),
                                 Value(0));
        eng::spmv(enc->ref(), x, again, pe); // served from the cache
        ASSERT_EQ(warm, again) << "threads " << threads;

        // Cold reference: a fresh encoding (fresh plan cache) of
        // the mutated master, same format.
        const eng::SparseMatrixAny cold = eng::SparseMatrixAny::fromCoo(
            registry.encodedAs("m", eng::Format::kCsr)
                ->as<fmt::CsrMatrix>()
                .toCoo(),
            registry.format("m"));
        std::vector<Value> reference(static_cast<std::size_t>(n),
                                     Value(0));
        eng::spmv(cold.ref(), x, reference, pe);
        ASSERT_EQ(warm, reference) << "threads " << threads;
    }
}

TEST(PlanInvalidation, AsyncReencodeSwapNeverServesStalePlans)
{
    // Drift a DIA matrix across the format boundary while serving
    // parallel SpMVs: every result — before, during, and after the
    // async re-encode epoch swap — must bit-match the oracle of the
    // fixed post-drift content. The swap installs a fresh
    // SparseMatrixAny (fresh plan cache); a plan leaking across
    // epochs would index the wrong structure and diverge.
    const Index n = 256;
    for (int threads : threadCounts()) {
        serve::MatrixRegistry registry;
        ASSERT_EQ(registry.put("live", wl::genTridiagonal(n)),
                  eng::Format::kDia);
        serve::SessionOptions opts;
        opts.threads = threads;
        opts.compute = serve::ComputeExec::kParallel; // plans in play
        serve::Session session(registry, opts);

        ASSERT_TRUE(session
                        .submit(serve::SpmvRequest{
                            "live", dyadicOperand(n, 5)})
                        .get()
                        .ok());

        std::uint64_t state = 31337;
        bool scheduled = false;
        for (int round = 0; round < 12 && !scheduled; ++round)
            scheduled =
                session
                    .applyUpdates("live", wl::genScatterDeltas(
                                              n, n, 64, state++))
                    .reencodeScheduled;
        ASSERT_TRUE(scheduled);

        std::vector<Value> oracle(static_cast<std::size_t>(n),
                                  Value(0));
        {
            sim::NativeExec e;
            eng::spmv(registry.encoded("live")->ref(),
                      dyadicOperand(n, 5), oracle, e);
        }
        // Serve across the in-flight swap.
        for (int i = 0; i < 20; ++i) {
            const std::vector<Value> got =
                session
                    .submit(serve::SpmvRequest{"live",
                                               dyadicOperand(n, 5)})
                    .get()
                    .value();
            ASSERT_EQ(got, oracle)
                << "request " << i << " threads " << threads;
        }
        ASSERT_TRUE(waitReencodeSettled(registry, "live"));
        session.drain();
        EXPECT_NE(registry.format("live"), eng::Format::kDia);
        // Post-swap: the fresh encoding's plans serve correctly.
        const std::vector<Value> after =
            session
                .submit(serve::SpmvRequest{"live",
                                           dyadicOperand(n, 5)})
                .get()
                .value();
        ASSERT_EQ(after, oracle) << "threads " << threads;
    }
}

TEST(Reselect, StaleSessionDestructionKeepsNewerSessionsHook)
{
    // Two sessions share a registry: the newer one owns the
    // re-encode hook. Destroying the older session must not detach
    // it — drift after the destruction still schedules through the
    // surviving session's pipeline.
    serve::MatrixRegistry registry;
    registry.put("live", wl::genTridiagonal(128));
    auto older = std::make_unique<serve::Session>(registry);
    serve::Session newer(registry);
    older.reset(); // must not clear `newer`'s hook

    std::uint64_t state = 5;
    bool scheduled = false;
    for (int round = 0; round < 12 && !scheduled; ++round)
        scheduled = registry
                        .applyUpdates("live", wl::genScatterDeltas(
                                                  128, 128, 64, state++))
                        .reencodeScheduled;
    ASSERT_TRUE(scheduled);
    ASSERT_TRUE(waitReencodeSettled(registry, "live"));
    EXPECT_EQ(registry.reselects("live"), 1u);
    // The re-encode went through the surviving session's pipeline,
    // not the synchronous no-hook fallback.
    EXPECT_EQ(newer.stats().reencodes.load(), 1u);
}

} // namespace
} // namespace smash
