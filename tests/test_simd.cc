/**
 * @file
 * ISA dispatch layer guarantees (kernels/simd/):
 *
 *  - every kernel variant table — scalar, AVX2+BMI2, AVX-512F —
 *    produces *bit-identical* results on every entry point (CSR
 *    SpMV, the column-tiled CSR walk, batched CSR SpMV, the SMASH
 *    word walk single and batched, popcountWords), at every level
 *    the host supports;
 *  - the same holds through the engine dispatch at 1, 2, and 8
 *    threads with the active level switched via setIsaLevel() (the
 *    in-process equivalent of SMASH_FORCE_ISA — the CI matrix runs
 *    this whole binary under SMASH_FORCE_ISA=scalar to cover the
 *    env route);
 *  - the cache-blocked tiled CSR path is bit-stable across thread
 *    counts and ISA levels, numerically equal to the untiled walk,
 *    and off for small matrices under the auto policy;
 *  - the warmed dispatch stays allocation-free with the SIMD layer
 *    in the loop (the contract test_perf_paths.cc pins for the
 *    untiled paths, extended here to the tiled driver).
 *
 * The allocation counter duplicates the test_perf_paths.cc pattern:
 * overrides are binary-local, counting only inside marked windows.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/cpu_features.hh"
#include "common/parallel_exec.hh"
#include "core/hierarchy_config.hh"
#include "core/smash_matrix.hh"
#include "engine/dispatch.hh"
#include "formats/csr_matrix.hh"
#include "formats/dense_matrix.hh"
#include "kernels/simd/simd_kernels.hh"
#include "sim/exec_model.hh"
#include "workloads/matrix_gen.hh"

namespace
{

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

template <typename Fn>
std::uint64_t
allocationsDuring(Fn&& fn)
{
    g_allocs.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_release);
    fn();
    g_counting.store(false, std::memory_order_release);
    return g_allocs.load(std::memory_order_relaxed);
}

} // namespace

void*
operator new(std::size_t size)
{
    if (g_counting.load(std::memory_order_acquire))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size == 0 ? 1 : size))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace smash
{
namespace
{

/** Restore the active ISA level (tests lower it at will). */
struct IsaGuard
{
    simd::IsaLevel saved = simd::activeIsaLevel();
    ~IsaGuard() { simd::setIsaLevel(saved); }
};

/** Restore the default tiling policy. */
struct TileGuard
{
    ~TileGuard()
    {
        eng::setTileMode(eng::TileMode::kAuto);
        eng::setTileCols(0);
    }
};

/** The ISA levels this host can actually execute, low to high. */
std::vector<simd::IsaLevel>
supportedLevels()
{
    std::vector<simd::IsaLevel> out{simd::IsaLevel::kScalar};
    const int best = static_cast<int>(simd::detectedIsaLevel());
    if (best >= static_cast<int>(simd::IsaLevel::kAvx2))
        out.push_back(simd::IsaLevel::kAvx2);
    if (best >= static_cast<int>(simd::IsaLevel::kAvx512))
        out.push_back(simd::IsaLevel::kAvx512);
    return out;
}

/** Deterministic non-dyadic operand values: a dyadic x would let
 *  different summation orders agree by luck; these do not. */
std::vector<Value>
pseudoX(Index n, std::uint64_t seed)
{
    std::vector<Value> x(static_cast<std::size_t>(n));
    std::uint64_t s = seed;
    for (auto& v : x) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        v = Value(static_cast<double>(s >> 11) /
                      static_cast<double>(std::uint64_t{1} << 53) *
                      2.0 -
                  1.0);
    }
    return x;
}

/** A wide-ish clustered matrix with long and empty rows. */
fmt::CooMatrix
csrTestMatrix()
{
    return wl::genClustered(300, 512, 6000, 6, 17);
}

/** Narrow matrix: 90 columns means the SMASH Bitmap-0 rows span a
 *  non-multiple of 64 bits, so words straddle rows and both the
 *  fast and slow word paths run. */
fmt::CooMatrix
straddleMatrix()
{
    return wl::genClustered(128, 90, 1800, 4, 23);
}

} // namespace

TEST(CpuFeaturesProbe, LevelOrderingAndClamping)
{
    IsaGuard guard;
    const simd::IsaLevel detected = simd::detectedIsaLevel();
    EXPECT_LE(static_cast<int>(simd::activeIsaLevel()),
              static_cast<int>(detected));
    // The detected level is always selectable; anything above it is
    // rejected without changing the active level.
    EXPECT_TRUE(simd::setIsaLevel(detected));
    if (static_cast<int>(detected) <
        static_cast<int>(simd::IsaLevel::kAvx512)) {
        EXPECT_FALSE(simd::setIsaLevel(simd::IsaLevel::kAvx512));
        EXPECT_EQ(simd::activeIsaLevel(), detected);
    }
    EXPECT_TRUE(simd::setIsaLevel(simd::IsaLevel::kScalar));
    EXPECT_EQ(simd::activeIsaLevel(), simd::IsaLevel::kScalar);
}

TEST(CpuFeaturesProbe, ParseIsaLevelVocabulary)
{
    simd::IsaLevel level;
    EXPECT_TRUE(simd::parseIsaLevel("scalar", level));
    EXPECT_EQ(level, simd::IsaLevel::kScalar);
    EXPECT_TRUE(simd::parseIsaLevel("avx2", level));
    EXPECT_EQ(level, simd::IsaLevel::kAvx2);
    EXPECT_TRUE(simd::parseIsaLevel("avx512", level));
    EXPECT_EQ(level, simd::IsaLevel::kAvx512);
    EXPECT_FALSE(simd::parseIsaLevel("sse9", level));
    EXPECT_FALSE(simd::parseIsaLevel("", level));
}

TEST(KernelTables, ReportTheirLevelAndFollowTheActiveOne)
{
    IsaGuard guard;
    EXPECT_EQ(simd::kernelsFor(simd::IsaLevel::kScalar).level,
              simd::IsaLevel::kScalar);
    // On any host the detected level's table reports that level (on
    // non-x86 builds detection is kScalar and this still holds).
    const simd::IsaLevel detected = simd::detectedIsaLevel();
    EXPECT_EQ(simd::kernelsFor(detected).level, detected);
    // kernels() follows the active level.
    ASSERT_TRUE(simd::setIsaLevel(simd::IsaLevel::kScalar));
    EXPECT_EQ(simd::kernels().level, simd::IsaLevel::kScalar);
    ASSERT_TRUE(simd::setIsaLevel(detected));
    EXPECT_EQ(simd::kernels().level, detected);
}

TEST(BitIdentity, CsrSpmvAcrossLevels)
{
    for (const fmt::CooMatrix& coo : {csrTestMatrix(), straddleMatrix()}) {
        const fmt::CsrMatrix m = fmt::CsrMatrix::fromCoo(coo);
        const std::vector<Value> x = pseudoX(m.cols(), 41);
        std::vector<Value> ref(static_cast<std::size_t>(m.rows()),
                               Value(0.25));
        simd::kernelsFor(simd::IsaLevel::kScalar)
            .csrSpmvRange(m, x, ref, 0, m.rows());
        for (simd::IsaLevel level : supportedLevels()) {
            std::vector<Value> y(static_cast<std::size_t>(m.rows()),
                                 Value(0.25));
            simd::kernelsFor(level).csrSpmvRange(m, x, y, 0, m.rows());
            EXPECT_EQ(y, ref)
                << "CSR SpMV diverged at level "
                << simd::toString(level);
        }
    }
}

TEST(BitIdentity, CsrSpmvBatchAcrossLevels)
{
    const fmt::CsrMatrix m = fmt::CsrMatrix::fromCoo(csrTestMatrix());
    // Straddle the stack-accumulator boundary (kBatchAccumWidth).
    for (Index nrhs : {Index(3), Index(96)}) {
        const std::vector<Value> flat =
            pseudoX(m.cols() * nrhs, 59 + static_cast<std::uint64_t>(nrhs));
        fmt::DenseMatrix xb(m.cols(), nrhs);
        xb.data() = flat;
        fmt::DenseMatrix ref(m.rows(), nrhs);
        simd::kernelsFor(simd::IsaLevel::kScalar)
            .csrSpmvBatchRange(m, xb, ref, 0, m.rows());
        for (simd::IsaLevel level : supportedLevels()) {
            fmt::DenseMatrix y(m.rows(), nrhs);
            simd::kernelsFor(level).csrSpmvBatchRange(m, xb, y, 0,
                                                      m.rows());
            EXPECT_EQ(y.data(), ref.data())
                << "batched CSR diverged at level "
                << simd::toString(level) << ", nrhs " << nrhs;
        }
    }
}

TEST(BitIdentity, SmashWordWalkAcrossLevelsAndSplits)
{
    // blockSize 2 exercises the paired fast path, 4 the generic
    // one; the 90-column matrix forces words that straddle rows.
    for (Index bs : {Index(2), Index(4)}) {
        for (const fmt::CooMatrix& coo :
             {csrTestMatrix(), straddleMatrix()}) {
            const core::SmashMatrix m = core::SmashMatrix::fromCoo(
                coo, core::HierarchyConfig({bs}));
            const Index words = m.hierarchy().level(0).numWords();
            const std::vector<Value> x = pseudoX(m.paddedCols(), 71);
            std::vector<Value> ref(static_cast<std::size_t>(m.rows()),
                                   Value(0));
            simd::kernelsFor(simd::IsaLevel::kScalar)
                .smashSpmvWords(m, x, ref, 0, words, 0);
            for (simd::IsaLevel level : supportedLevels()) {
                const simd::KernelTable& kt = simd::kernelsFor(level);
                std::vector<Value> y(
                    static_cast<std::size_t>(m.rows()), Value(0));
                kt.smashSpmvWords(m, x, y, 0, words, 0);
                EXPECT_EQ(y, ref) << "SMASH walk diverged, level "
                                  << simd::toString(level) << ", bs "
                                  << bs;
                // Split word range with the rank as NZA base: the
                // same contract the parallel word partition uses.
                const Index mid = words / 2;
                const Index base = kt.popcountWords(
                    m.hierarchy().level(0).words().data(), mid);
                std::vector<Value> ys(
                    static_cast<std::size_t>(m.rows()), Value(0));
                kt.smashSpmvWords(m, x, ys, 0, mid, 0);
                kt.smashSpmvWords(m, x, ys, mid, words, base);
                EXPECT_EQ(ys, ref)
                    << "split SMASH walk diverged, level "
                    << simd::toString(level) << ", bs " << bs;
            }
        }
    }
}

TEST(BitIdentity, SmashBatchAcrossLevels)
{
    const core::SmashMatrix m = core::SmashMatrix::fromCoo(
        csrTestMatrix(), core::HierarchyConfig({2}));
    const Index words = m.hierarchy().level(0).numWords();
    const Index nrhs = 5;
    fmt::DenseMatrix xb(m.paddedCols(), nrhs);
    xb.data() = pseudoX(m.paddedCols() * nrhs, 83);
    fmt::DenseMatrix ref(m.rows(), nrhs);
    simd::kernelsFor(simd::IsaLevel::kScalar)
        .smashSpmvBatchWords(m, xb, ref.data().data(), nrhs, 0, words,
                             0);
    for (simd::IsaLevel level : supportedLevels()) {
        fmt::DenseMatrix y(m.rows(), nrhs);
        simd::kernelsFor(level).smashSpmvBatchWords(
            m, xb, y.data().data(), nrhs, 0, words, 0);
        EXPECT_EQ(y.data(), ref.data())
            << "batched SMASH diverged at level "
            << simd::toString(level);
    }
}

TEST(BitIdentity, PopcountWordsAcrossLevels)
{
    std::vector<BitWord> words(257, 0);
    std::uint64_t s = 12345;
    Index expected = 0;
    for (std::size_t i = 0; i < words.size(); ++i) {
        if (i % 5 == 0)
            continue; // keep zero words in the mix
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        words[i] = s & (s >> 7);
        expected += popcount(words[i]);
    }
    for (simd::IsaLevel level : supportedLevels()) {
        EXPECT_EQ(simd::kernelsFor(level).popcountWords(
                      words.data(), static_cast<Index>(words.size())),
                  expected)
            << "popcount diverged at level " << simd::toString(level);
    }
}

TEST(DispatchBitIdentity, CsrAndSmashAcrossLevelsPerThreadCount)
{
    IsaGuard guard;
    eng::SparseMatrixAny csr(fmt::CsrMatrix::fromCoo(csrTestMatrix()));
    eng::SparseMatrixAny sm(core::SmashMatrix::fromCoo(
        straddleMatrix(), core::HierarchyConfig({2})));
    const std::vector<Value> x512 = pseudoX(512, 7);
    const std::vector<Value> x90 = pseudoX(90, 9);
    // For a fixed thread count the partition and merge order are
    // fixed, so switching the ISA level must not move a single bit.
    for (int threads : {1, 2, 8}) {
        exec::ParallelExec pe(threads);
        std::vector<Value> ref_csr(300, Value(0));
        std::vector<Value> ref_sm(128, Value(0));
        ASSERT_TRUE(simd::setIsaLevel(simd::IsaLevel::kScalar));
        eng::spmv(csr.ref(), x512, ref_csr, pe);
        eng::spmv(sm.ref(), x90, ref_sm, pe);
        for (simd::IsaLevel level : supportedLevels()) {
            ASSERT_TRUE(simd::setIsaLevel(level));
            std::vector<Value> y_csr(300, Value(0));
            std::vector<Value> y_sm(128, Value(0));
            eng::spmv(csr.ref(), x512, y_csr, pe);
            eng::spmv(sm.ref(), x90, y_sm, pe);
            EXPECT_EQ(y_csr, ref_csr)
                << "parallel CSR diverged at " << threads
                << " threads, level " << simd::toString(level);
            EXPECT_EQ(y_sm, ref_sm)
                << "parallel SMASH diverged at " << threads
                << " threads, level " << simd::toString(level);
        }
    }
}

TEST(DispatchBitIdentity, SerialCsrMatchesParallelAtEveryLevel)
{
    IsaGuard guard;
    eng::SparseMatrixAny m(fmt::CsrMatrix::fromCoo(csrTestMatrix()));
    const std::vector<Value> x = pseudoX(512, 11);
    for (simd::IsaLevel level : supportedLevels()) {
        ASSERT_TRUE(simd::setIsaLevel(level));
        std::vector<Value> serial(300, Value(0));
        sim::NativeExec ne;
        eng::spmv(m.ref(), x, serial, ne);
        for (int threads : {1, 2, 8}) {
            exec::ParallelExec pe(threads);
            std::vector<Value> par(300, Value(0));
            eng::spmv(m.ref(), x, par, pe);
            EXPECT_EQ(par, serial)
                << "row-partitioned CSR diverged from serial at "
                << threads << " threads, level "
                << simd::toString(level);
        }
    }
}

TEST(TiledCsr, BitStableAcrossThreadsAndLevels)
{
    IsaGuard isa_guard;
    TileGuard tile_guard;
    eng::setTileMode(eng::TileMode::kForce);
    eng::setTileCols(96); // 512 cols -> 6 tiles
    eng::SparseMatrixAny m(fmt::CsrMatrix::fromCoo(csrTestMatrix()));
    const std::vector<Value> x = pseudoX(512, 13);
    std::vector<Value> ref(300, Value(0));
    {
        ASSERT_TRUE(simd::setIsaLevel(simd::IsaLevel::kScalar));
        exec::ParallelExec pe(1);
        eng::spmv(m.ref(), x, ref, pe);
    }
    for (simd::IsaLevel level : supportedLevels()) {
        ASSERT_TRUE(simd::setIsaLevel(level));
        for (int threads : {1, 2, 8}) {
            exec::ParallelExec pe(threads);
            std::vector<Value> y(300, Value(0));
            eng::spmv(m.ref(), x, y, pe);
            EXPECT_EQ(y, ref)
                << "tiled CSR diverged at " << threads
                << " threads, level " << simd::toString(level);
        }
    }
}

TEST(TiledCsr, MatchesUntiledNumerically)
{
    TileGuard tile_guard;
    eng::SparseMatrixAny m(fmt::CsrMatrix::fromCoo(csrTestMatrix()));
    const std::vector<Value> x = pseudoX(512, 19);
    exec::ParallelExec pe(2);
    eng::setTileMode(eng::TileMode::kOff);
    std::vector<Value> untiled(300, Value(0));
    eng::spmv(m.ref(), x, untiled, pe);
    eng::setTileMode(eng::TileMode::kForce);
    eng::setTileCols(64);
    std::vector<Value> tiled(300, Value(0));
    eng::spmv(m.ref(), x, tiled, pe);
    for (std::size_t i = 0; i < untiled.size(); ++i)
        EXPECT_NEAR(tiled[i], untiled[i], 1e-12)
            << "tiled result drifted at row " << i;
}

TEST(TiledCsr, AutoPolicyLeavesSmallMatricesUntiled)
{
    // 512 columns is 4 KiB of x — far below any L2. The auto policy
    // must not tile it, which is observable through the plan cache:
    // only the row-cut plan gets built.
    TileGuard tile_guard;
    eng::setTileMode(eng::TileMode::kAuto);
    eng::SparseMatrixAny m(fmt::CsrMatrix::fromCoo(csrTestMatrix()));
    const std::vector<Value> x = pseudoX(512, 23);
    std::vector<Value> y(300, Value(0));
    exec::ParallelExec pe(2);
    eng::spmv(m.ref(), x, y, pe);
    EXPECT_EQ(m.planCache().size(), 1u)
        << "auto tiling built an unexpected extra plan for a "
           "cache-resident matrix";
}

TEST(AllocationFree, WarmedTiledParallelSpmv)
{
    TileGuard tile_guard;
    eng::setTileMode(eng::TileMode::kForce);
    eng::setTileCols(96);
    eng::SparseMatrixAny m(fmt::CsrMatrix::fromCoo(csrTestMatrix()));
    const std::vector<Value> x = pseudoX(512, 29);
    std::vector<Value> y(300, Value(0));
    exec::ParallelExec pe(2);
    for (int i = 0; i < 3; ++i)
        eng::spmv(m.ref(), x, y, pe); // warm plans, arena, pool
    const std::uint64_t n =
        allocationsDuring([&] { eng::spmv(m.ref(), x, y, pe); });
    EXPECT_EQ(n, 0u) << "warmed tiled dispatch must not allocate "
                        "(tile + row plans cached)";
}

TEST(AllocationFree, WarmedDispatchAtForcedScalarLevel)
{
    // Lowering the ISA level swaps function pointers, nothing else:
    // the scalar table must honor the same zero-allocation contract.
    IsaGuard guard;
    ASSERT_TRUE(simd::setIsaLevel(simd::IsaLevel::kScalar));
    eng::SparseMatrixAny csr(fmt::CsrMatrix::fromCoo(csrTestMatrix()));
    eng::SparseMatrixAny sm(core::SmashMatrix::fromCoo(
        csrTestMatrix(), core::HierarchyConfig({2})));
    const std::vector<Value> x = pseudoX(512, 31);
    std::vector<Value> y(300, Value(0));
    sim::NativeExec ne;
    exec::ParallelExec pe(2);
    for (int i = 0; i < 3; ++i) {
        eng::spmv(csr.ref(), x, y, ne);
        eng::spmv(csr.ref(), x, y, pe);
        eng::spmv(sm.ref(), x, y, ne);
        eng::spmv(sm.ref(), x, y, pe);
    }
    const std::uint64_t n = allocationsDuring([&] {
        eng::spmv(csr.ref(), x, y, ne);
        eng::spmv(csr.ref(), x, y, pe);
        eng::spmv(sm.ref(), x, y, ne);
        eng::spmv(sm.ref(), x, y, pe);
    });
    EXPECT_EQ(n, 0u) << "warmed dispatch allocated under the forced "
                        "scalar table";
}

} // namespace smash
