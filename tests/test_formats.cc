/**
 * @file
 * Unit and property tests for src/formats: dense/COO/CSR/CSC/BCSR,
 * conversions, and Matrix Market I/O. The central property: every
 * conversion round-trips through the dense oracle unchanged.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "formats/convert.hh"
#include "formats/matrix_market.hh"
#include "workloads/matrix_gen.hh"

namespace smash::fmt
{
namespace
{

CooMatrix
smallExample()
{
    // The 4x4 matrix of the paper's Fig. 1.
    CooMatrix coo(4, 4);
    coo.add(0, 0, 3.2);
    coo.add(1, 0, 1.2);
    coo.add(1, 2, 4.2);
    coo.add(2, 3, 5.1);
    coo.add(3, 0, 5.3);
    coo.add(3, 1, 3.3);
    coo.canonicalize();
    return coo;
}

TEST(Dense, ZeroInitialized)
{
    DenseMatrix m(3, 5);
    EXPECT_EQ(m.rows(), 3);
    EXPECT_EQ(m.cols(), 5);
    EXPECT_EQ(m.countNonZeros(), 0);
    EXPECT_EQ(m.storageBytes(), 15 * sizeof(Value));
}

TEST(Dense, AtReadsAndWrites)
{
    DenseMatrix m(2, 2);
    m.at(1, 0) = 2.5;
    EXPECT_EQ(m.at(1, 0), 2.5);
    EXPECT_EQ(m.countNonZeros(), 1);
}

TEST(Dense, ApproxEquals)
{
    DenseMatrix a(2, 2), b(2, 2);
    a.at(0, 0) = 1.0;
    b.at(0, 0) = 1.0 + 1e-12;
    EXPECT_TRUE(a.approxEquals(b, 1e-9));
    EXPECT_FALSE(a.approxEquals(b, 1e-15));
    DenseMatrix c(2, 3);
    EXPECT_FALSE(a.approxEquals(c, 1.0));
}

TEST(Coo, DropsExplicitZeros)
{
    CooMatrix coo(2, 2);
    EXPECT_FALSE(coo.add(0, 0, 0.0));
    EXPECT_TRUE(coo.add(0, 1, 1.0));
    EXPECT_EQ(coo.nnz(), 1);
}

TEST(Coo, RejectsOutOfRange)
{
    CooMatrix coo(2, 2);
    EXPECT_THROW(coo.add(2, 0, 1.0), FatalError);
    EXPECT_THROW(coo.add(0, -1, 1.0), FatalError);
}

TEST(Coo, CanonicalizeSortsAndMerges)
{
    CooMatrix coo(3, 3);
    coo.add(2, 1, 1.0);
    coo.add(0, 2, 2.0);
    coo.add(2, 1, 3.0);
    EXPECT_FALSE(coo.isCanonical());
    coo.canonicalize();
    EXPECT_TRUE(coo.isCanonical());
    ASSERT_EQ(coo.nnz(), 2);
    EXPECT_EQ(coo.entries()[0].row, 0);
    EXPECT_EQ(coo.entries()[1].value, 4.0);
}

TEST(Coo, CanonicalizeDropsCancellation)
{
    CooMatrix coo(2, 2);
    coo.add(1, 1, 2.0);
    coo.add(1, 1, -2.0);
    coo.canonicalize();
    EXPECT_EQ(coo.nnz(), 0);
}

TEST(Csr, MatchesPaperFigure1)
{
    CsrMatrix csr = CsrMatrix::fromCoo(smallExample());
    EXPECT_TRUE(csr.checkInvariants());
    // row_ptr: 0 1 3 4 6 / col_ind: 0 0 2 3 0 1 (paper Fig. 1).
    std::vector<CsrIndex> expect_ptr{0, 1, 3, 4, 6};
    std::vector<CsrIndex> expect_ind{0, 0, 2, 3, 0, 1};
    EXPECT_EQ(csr.rowPtr(), expect_ptr);
    EXPECT_EQ(csr.colInd(), expect_ind);
    EXPECT_EQ(csr.values().front(), 3.2);
    EXPECT_EQ(csr.rowNnz(1), 2);
    EXPECT_EQ(csr.at(1, 2), 4.2);
    EXPECT_EQ(csr.at(1, 1), 0.0);
}

TEST(Csr, RequiresCanonicalCoo)
{
    CooMatrix coo(2, 2);
    coo.add(1, 1, 1.0);
    coo.add(0, 0, 1.0); // unsorted
    EXPECT_THROW(CsrMatrix::fromCoo(coo), FatalError);
}

TEST(Csr, RoundTripsThroughCoo)
{
    CooMatrix coo = smallExample();
    CsrMatrix csr = CsrMatrix::fromCoo(coo);
    CooMatrix back = csr.toCoo();
    EXPECT_TRUE(back.toDense().approxEquals(coo.toDense(), 0.0));
}

TEST(Csr, StorageBytesAccounting)
{
    CsrMatrix csr = CsrMatrix::fromCoo(smallExample());
    // (rows+1 + nnz) * 4 bytes + nnz * 8 bytes.
    EXPECT_EQ(csr.storageBytes(), (5 + 6) * 4 + 6 * 8U);
}

TEST(Csc, ColumnMajorLayout)
{
    CscMatrix csc = CscMatrix::fromCoo(smallExample());
    EXPECT_TRUE(csc.checkInvariants());
    EXPECT_EQ(csc.colNnz(0), 3); // column 0 holds rows 0, 1, 3
    EXPECT_EQ(csc.colNnz(2), 1);
    EXPECT_TRUE(csc.toDense().approxEquals(smallExample().toDense(), 0.0));
}

TEST(Bcsr, TilesAndFill)
{
    BcsrMatrix bcsr = BcsrMatrix::fromCoo(smallExample(), 2, 2);
    EXPECT_TRUE(bcsr.checkInvariants());
    // Non-empty 2x2 tiles: (0,0), (0,1), (1,0), (1,1) -> 4 tiles.
    EXPECT_EQ(bcsr.numBlocks(), 4);
    EXPECT_DOUBLE_EQ(bcsr.fillEfficiency(), 6.0 / 16.0);
    EXPECT_TRUE(bcsr.toDense().approxEquals(smallExample().toDense(), 0.0));
}

TEST(Bcsr, RaggedEdgesPreserved)
{
    // 5x5 with 3x3 blocks exercises partial tiles on both edges.
    CooMatrix coo(5, 5);
    coo.add(4, 4, 1.5);
    coo.add(0, 4, 2.5);
    coo.add(4, 0, 3.5);
    coo.canonicalize();
    BcsrMatrix bcsr = BcsrMatrix::fromCoo(coo, 3, 3);
    EXPECT_TRUE(bcsr.checkInvariants());
    EXPECT_TRUE(bcsr.toDense().approxEquals(coo.toDense(), 0.0));
}

TEST(Convert, DenseCooRoundTrip)
{
    DenseMatrix dense = smallExample().toDense();
    CooMatrix coo = denseToCoo(dense);
    EXPECT_TRUE(coo.isCanonical());
    EXPECT_TRUE(coo.toDense().approxEquals(dense, 0.0));
}

TEST(Convert, CsrCscBothWays)
{
    CsrMatrix csr = CsrMatrix::fromCoo(smallExample());
    CscMatrix csc = csrToCsc(csr);
    CsrMatrix back = cscToCsr(csc);
    EXPECT_TRUE(back.toDense().approxEquals(csr.toDense(), 0.0));
}

TEST(Convert, TransposeTwiceIsIdentity)
{
    CsrMatrix csr = CsrMatrix::fromCoo(smallExample());
    CsrMatrix t2 = transpose(transpose(csr));
    EXPECT_TRUE(t2.toDense().approxEquals(csr.toDense(), 0.0));
}

TEST(Convert, TransposeSwapsCoordinates)
{
    CsrMatrix csr = CsrMatrix::fromCoo(smallExample());
    CsrMatrix t = transpose(csr);
    EXPECT_EQ(t.at(2, 1), 4.2); // (1,2) in the original
}

TEST(MatrixMarket, WriteReadRoundTrip)
{
    CooMatrix coo = smallExample();
    std::stringstream ss;
    writeMatrixMarket(coo, ss);
    CooMatrix back = readMatrixMarket(ss);
    EXPECT_TRUE(back.toDense().approxEquals(coo.toDense(), 1e-9));
}

TEST(MatrixMarket, ParsesPatternField)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate pattern general\n"
       << "2 2 2\n"
       << "1 1\n"
       << "2 2\n";
    CooMatrix coo = readMatrixMarket(ss);
    EXPECT_EQ(coo.nnz(), 2);
    EXPECT_EQ(coo.toDense().at(0, 0), 1.0);
}

TEST(MatrixMarket, ExpandsSymmetric)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real symmetric\n"
       << "3 3 2\n"
       << "2 1 5.0\n"
       << "3 3 7.0\n";
    CooMatrix coo = readMatrixMarket(ss);
    EXPECT_EQ(coo.nnz(), 3); // (1,0), (0,1), (2,2)
    EXPECT_EQ(coo.toDense().at(0, 1), 5.0);
    EXPECT_EQ(coo.toDense().at(1, 0), 5.0);
}

TEST(MatrixMarket, RejectsGarbage)
{
    std::stringstream ss;
    ss << "this is not a matrix\n";
    EXPECT_THROW(readMatrixMarket(ss), FatalError);
}

TEST(MatrixMarket, RejectsTruncatedStream)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real general\n"
       << "2 2 2\n"
       << "1 1 1.0\n";
    EXPECT_THROW(readMatrixMarket(ss), FatalError);
}

/** Round-trip property over random matrices of varying shape. */
class FormatsRoundTrip
    : public ::testing::TestWithParam<std::tuple<Index, Index, double>>
{
};

TEST_P(FormatsRoundTrip, AllFormatsAgreeWithDense)
{
    auto [rows, cols, density] = GetParam();
    Index nnz = static_cast<Index>(
        static_cast<double>(rows * cols) * density);
    CooMatrix coo = wl::genUniform(rows, cols, nnz,
                                   static_cast<std::uint64_t>(rows * 31 +
                                                              cols));
    DenseMatrix oracle = coo.toDense();

    EXPECT_TRUE(CsrMatrix::fromCoo(coo).toDense().approxEquals(oracle, 0));
    EXPECT_TRUE(CscMatrix::fromCoo(coo).toDense().approxEquals(oracle, 0));
    EXPECT_TRUE(BcsrMatrix::fromCoo(coo, 4, 4)
                    .toDense().approxEquals(oracle, 0));
    EXPECT_TRUE(BcsrMatrix::fromCoo(coo, 2, 8)
                    .toDense().approxEquals(oracle, 0));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FormatsRoundTrip,
    ::testing::Values(
        std::make_tuple<Index, Index, double>(1, 1, 1.0),
        std::make_tuple<Index, Index, double>(7, 13, 0.05),
        std::make_tuple<Index, Index, double>(64, 64, 0.01),
        std::make_tuple<Index, Index, double>(100, 3, 0.2),
        std::make_tuple<Index, Index, double>(3, 100, 0.2),
        std::make_tuple<Index, Index, double>(128, 128, 0.001),
        std::make_tuple<Index, Index, double>(50, 50, 0.5)));

} // namespace
} // namespace smash::fmt
