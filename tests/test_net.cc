/**
 * @file
 * Protocol and fault battery for the network front door (src/net/):
 *
 *   Codec round-trips — header fields, every request/result payload,
 *   every serve::Status code, empty and degenerate payloads,
 *   frames at the size ceiling; decode(encode(x)) is required to be
 *   bit-identical (memcmp on the value bytes), and re-encoding a
 *   decoded payload must reproduce the input bytes.
 *
 *   Malformed input — truncated payloads at EVERY prefix length,
 *   oversized length prefixes, bad magic/version, unknown op codes,
 *   hostile count fields, out-of-range enums, trailing garbage, and
 *   raw-socket fault injection against a live server: each must
 *   yield a typed protocol error or a clean close, never a crash, a
 *   hang, or a partial frame.
 *
 *   End-to-end — SpMV/SpMM/SpAdd over Unix-domain AND TCP sockets,
 *   bit-identical to the local engine on the shared demo matrices.
 *
 *   Faults and lifecycle — client disconnect with requests in
 *   flight releases admission slots; server shutdown mid-stream
 *   delivers kShuttingDown as a typed response; SIGPIPE is not
 *   fatal; and the Session close()-vs-completion-callback teardown
 *   ordering is raced deliberately so TSan pins the invariant.
 *
 * Thread counts: SMASH_SERVE_THREADS pins one count (the ctest
 * variants run 1, 2, and 8); unset, every count is covered.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "engine/dispatch.hh"
#include "formats/csr_matrix.hh"
#include "net/client.hh"
#include "net/demo_matrices.hh"
#include "net/server.hh"
#include "sim/exec_model.hh"

namespace smash
{
namespace
{

std::vector<int>
threadCounts()
{
    if (const char* env = std::getenv("SMASH_SERVE_THREADS"))
        return {std::atoi(env)};
    return {1, 2, 8};
}

/** Unique-per-test unix socket path (pid-scoped; ctest runs suites
 *  in parallel processes). */
std::string
socketPath(const char* tag)
{
    return "/tmp/smash_net_" + std::to_string(::getpid()) + "_" +
        tag + ".sock";
}

bool
bitIdentical(const std::vector<Value>& a, const std::vector<Value>& b)
{
    return a.size() == b.size() &&
        (a.empty() ||
         std::memcmp(a.data(), b.data(),
                     a.size() * sizeof(Value)) == 0);
}

const serve::StatusCode kAllStatusCodes[] = {
    serve::StatusCode::kOk,
    serve::StatusCode::kNotFound,
    serve::StatusCode::kInvalidOperand,
    serve::StatusCode::kOverloaded,
    serve::StatusCode::kDeadlineExceeded,
    serve::StatusCode::kShuttingDown,
    serve::StatusCode::kInternal,
    serve::StatusCode::kQuotaExceeded,
};

// --------------------------------------------------------------
// Frame header
// --------------------------------------------------------------

TEST(NetFrame, HeaderRoundTripAllOps)
{
    const net::Op ops[] = {
        net::Op::kPing,        net::Op::kSpmv,
        net::Op::kSpmm,        net::Op::kSpadd,
        net::Op::kHello,       net::Op::kPong,
        net::Op::kSpmvResult,  net::Op::kSpmmResult,
        net::Op::kSpaddResult, net::Op::kHelloResult,
        net::Op::kError,
    };
    for (const net::Op op : ops) {
        net::FrameHeader in;
        in.op = op;
        in.id = 0x0123456789abcdefULL;
        in.payloadBytes = 77;
        std::uint8_t bytes[net::kHeaderBytes];
        net::encodeHeader(in, bytes);
        net::FrameHeader out;
        EXPECT_FALSE(
            net::decodeHeader(bytes, net::kDefaultMaxFrameBytes, out)
                .has_value());
        EXPECT_EQ(out.version, net::kWireVersion);
        EXPECT_EQ(out.op, op);
        EXPECT_EQ(out.id, in.id);
        EXPECT_EQ(out.payloadBytes, in.payloadBytes);
    }
}

TEST(NetFrame, HeaderRejectsBadMagic)
{
    net::FrameHeader in;
    std::uint8_t bytes[net::kHeaderBytes];
    net::encodeHeader(in, bytes);
    bytes[0] ^= 0xff;
    net::FrameHeader out;
    const auto bad =
        net::decodeHeader(bytes, net::kDefaultMaxFrameBytes, out);
    ASSERT_TRUE(bad.has_value());
    EXPECT_EQ(*bad, net::WireError::kBadMagic);
    EXPECT_FALSE(net::isRecoverable(*bad));
}

TEST(NetFrame, HeaderRejectsBadVersion)
{
    net::FrameHeader in;
    std::uint8_t bytes[net::kHeaderBytes];
    net::encodeHeader(in, bytes);
    bytes[4] = 0x7f; // version low byte
    net::FrameHeader out;
    const auto bad =
        net::decodeHeader(bytes, net::kDefaultMaxFrameBytes, out);
    ASSERT_TRUE(bad.has_value());
    EXPECT_EQ(*bad, net::WireError::kBadVersion);
    EXPECT_FALSE(net::isRecoverable(*bad));
}

TEST(NetFrame, HeaderRejectsOversizedLength)
{
    net::FrameHeader in;
    in.op = net::Op::kSpmv;
    in.payloadBytes = 1025;
    std::uint8_t bytes[net::kHeaderBytes];
    net::encodeHeader(in, bytes);
    net::FrameHeader out;
    const auto bad = net::decodeHeader(bytes, 1024, out);
    ASSERT_TRUE(bad.has_value());
    EXPECT_EQ(*bad, net::WireError::kOversized);
    EXPECT_FALSE(net::isRecoverable(*bad));
    // At the ceiling exactly: fine.
    in.payloadBytes = 1024;
    net::encodeHeader(in, bytes);
    EXPECT_FALSE(net::decodeHeader(bytes, 1024, out).has_value());
}

TEST(NetFrame, HeaderRejectsUnknownOpButRecoverably)
{
    net::FrameHeader in;
    in.payloadBytes = 8;
    std::uint8_t bytes[net::kHeaderBytes];
    net::encodeHeader(in, bytes);
    bytes[6] = 0x42; // op low byte: not a defined Op
    bytes[7] = 0x00;
    net::FrameHeader out;
    const auto bad =
        net::decodeHeader(bytes, net::kDefaultMaxFrameBytes, out);
    ASSERT_TRUE(bad.has_value());
    EXPECT_EQ(*bad, net::WireError::kUnknownOp);
    EXPECT_TRUE(net::isRecoverable(*bad));
    // The id and length still decode — the server needs them to
    // skip the payload and answer on the right id.
    EXPECT_EQ(out.payloadBytes, 8u);
    // An unknown op with an INSANE length is NOT recoverable: the
    // payload cannot be safely skipped.
    bytes[16] = 0xff;
    bytes[17] = 0xff;
    bytes[18] = 0xff;
    bytes[19] = 0xff;
    const auto worse = net::decodeHeader(bytes, 1024, out);
    ASSERT_TRUE(worse.has_value());
    EXPECT_EQ(*worse, net::WireError::kOversized);
    EXPECT_FALSE(net::isRecoverable(*worse));
}

// --------------------------------------------------------------
// Codec round-trips
// --------------------------------------------------------------

TEST(NetCodec, SpmvRequestRoundTripBitIdentical)
{
    serve::SpmvRequest in;
    in.matrix = "ranker";
    // Exercise the full double range: denormal, inf, NaN, -0.0.
    in.x = {0.0, -0.0, 1.5, -2.25,
            std::numeric_limits<Value>::denorm_min(),
            std::numeric_limits<Value>::infinity(),
            -std::numeric_limits<Value>::infinity(),
            std::numeric_limits<Value>::quiet_NaN()};
    in.options.priority = serve::Priority::kHigh;
    in.options.deadline = std::chrono::microseconds(123456789);
    in.options.admission = serve::Admission::kBlock;

    net::Buffer bytes;
    net::encodeSpmvRequest(in, bytes);
    const auto out = net::decodeSpmvRequest(bytes.data(), bytes.size());
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->matrix, in.matrix);
    EXPECT_TRUE(bitIdentical(out->x, in.x)); // NaN payload included
    EXPECT_EQ(out->options.priority, in.options.priority);
    EXPECT_EQ(out->options.deadline, in.options.deadline);
    EXPECT_EQ(out->options.admission, in.options.admission);

    // Re-encoding the decoded request reproduces the bytes.
    net::Buffer again;
    net::encodeSpmvRequest(*out, again);
    EXPECT_EQ(again, bytes);
}

TEST(NetCodec, SpmvRequestEmptyVectorAndName)
{
    serve::SpmvRequest in; // empty matrix name, empty x
    net::Buffer bytes;
    net::encodeSpmvRequest(in, bytes);
    const auto out = net::decodeSpmvRequest(bytes.data(), bytes.size());
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(out->matrix.empty());
    EXPECT_TRUE(out->x.empty());
}

TEST(NetCodec, SpmmRequestRoundTripBitIdentical)
{
    serve::SpmmRequest in;
    in.matrix = "graph";
    in.b = fmt::DenseMatrix(3, 2);
    for (Index r = 0; r < 3; ++r)
        for (Index c = 0; c < 2; ++c)
            in.b.at(r, c) = Value(r) * 1.0625 - Value(c) * 0.125;
    in.options.priority = serve::Priority::kBatch;

    net::Buffer bytes;
    net::encodeSpmmRequest(in, bytes);
    const auto out = net::decodeSpmmRequest(bytes.data(), bytes.size());
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->matrix, in.matrix);
    ASSERT_EQ(out->b.rows(), in.b.rows());
    ASSERT_EQ(out->b.cols(), in.b.cols());
    EXPECT_TRUE(bitIdentical(out->b.data(), in.b.data()));
    EXPECT_EQ(out->options.priority, serve::Priority::kBatch);
}

TEST(NetCodec, SpaddRequestRoundTrip)
{
    serve::SpaddRequest in;
    in.a = "graph";
    in.b = "graph2";
    net::Buffer bytes;
    net::encodeSpaddRequest(in, bytes);
    const auto out =
        net::decodeSpaddRequest(bytes.data(), bytes.size());
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->a, "graph");
    EXPECT_EQ(out->b, "graph2");
}

TEST(NetCodec, HelloRoundTrip)
{
    for (const std::string tenant :
         {std::string(""), std::string("team-a"),
          std::string(400, 'x')}) {
        net::Buffer bytes;
        net::encodeHelloRequest(tenant, bytes);
        const auto out =
            net::decodeHelloRequest(bytes.data(), bytes.size());
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(*out, tenant);
    }
    for (const serve::StatusCode code : kAllStatusCodes) {
        net::Buffer bytes;
        net::encodeHelloResult(
            code == serve::StatusCode::kOk
                ? serve::Status()
                : serve::Status(code, "m"),
            bytes);
        const auto out =
            net::decodeHelloResult(bytes.data(), bytes.size());
        ASSERT_TRUE(out.has_value()) << toString(code);
        EXPECT_EQ(out->code(), code);
    }
}

TEST(NetCodec, SpmvResultAllStatusesSurviveTheWire)
{
    for (const serve::StatusCode code : kAllStatusCodes) {
        net::Buffer bytes;
        if (code == serve::StatusCode::kOk) {
            net::encodeSpmvResult(std::vector<Value>{1.0, 2.5},
                                  bytes);
        } else {
            net::encodeSpmvResult(
                serve::Status(code, "detail for " +
                              std::string(toString(code))),
                bytes);
        }
        const auto out =
            net::decodeSpmvResult(bytes.data(), bytes.size());
        ASSERT_TRUE(out.has_value()) << toString(code);
        EXPECT_EQ(out->status().code(), code);
        if (code == serve::StatusCode::kOk) {
            EXPECT_TRUE(bitIdentical(out->value(), {1.0, 2.5}));
        } else {
            EXPECT_EQ(out->status().message(),
                      "detail for " + std::string(toString(code)));
        }
    }
}

TEST(NetCodec, SpmmResultAllStatusesSurviveTheWire)
{
    for (const serve::StatusCode code : kAllStatusCodes) {
        net::Buffer bytes;
        if (code == serve::StatusCode::kOk) {
            fmt::DenseMatrix y(2, 2);
            y.at(0, 0) = 1;
            y.at(1, 1) = -0.0625;
            net::encodeSpmmResult(std::move(y), bytes);
        } else {
            net::encodeSpmmResult(serve::Status(code, "m"), bytes);
        }
        const auto out =
            net::decodeSpmmResult(bytes.data(), bytes.size());
        ASSERT_TRUE(out.has_value()) << toString(code);
        EXPECT_EQ(out->status().code(), code);
        if (code == serve::StatusCode::kOk) {
            EXPECT_EQ(out->value().at(1, 1), -0.0625);
        }
    }
}

TEST(NetCodec, SpaddResultAllStatusesSurviveTheWire)
{
    for (const serve::StatusCode code : kAllStatusCodes) {
        net::Buffer bytes;
        if (code == serve::StatusCode::kOk) {
            fmt::CooMatrix c(4, 4);
            c.add(0, 1, 1.25);
            c.add(3, 2, -0.5);
            c.canonicalize();
            net::encodeSpaddResult(std::move(c), bytes);
        } else {
            net::encodeSpaddResult(serve::Status(code, "m"), bytes);
        }
        const auto out =
            net::decodeSpaddResult(bytes.data(), bytes.size());
        ASSERT_TRUE(out.has_value()) << toString(code);
        EXPECT_EQ(out->status().code(), code);
        if (code == serve::StatusCode::kOk) {
            ASSERT_EQ(out->value().nnz(), 2);
            EXPECT_EQ(out->value().entries()[0].value, 1.25);
            EXPECT_EQ(out->value().entries()[1].value, -0.5);
        }
    }
}

TEST(NetCodec, DegenerateOkPayloads)
{
    // Empty SpMV result vector.
    net::Buffer bytes;
    net::encodeSpmvResult(std::vector<Value>{}, bytes);
    auto v = net::decodeSpmvResult(bytes.data(), bytes.size());
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(v->ok());
    EXPECT_TRUE(v->value().empty());

    // COO with zero nnz but nonzero shape.
    bytes.clear();
    net::encodeSpaddResult(fmt::CooMatrix(7, 9), bytes);
    auto c = net::decodeSpaddResult(bytes.data(), bytes.size());
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->value().rows(), 7);
    EXPECT_EQ(c->value().cols(), 9);
    EXPECT_EQ(c->value().nnz(), 0);
}

TEST(NetCodec, ErrorPayloadRoundTripAllKinds)
{
    const net::WireError kinds[] = {
        net::WireError::kBadMagic,  net::WireError::kBadVersion,
        net::WireError::kUnknownOp, net::WireError::kOversized,
        net::WireError::kMalformedPayload,
        net::WireError::kTruncated,
    };
    for (const net::WireError e : kinds) {
        net::Buffer bytes;
        net::encodeError(e, toString(e), bytes);
        const auto out = net::decodeError(bytes.data(), bytes.size());
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->error, e);
        EXPECT_EQ(out->detail, toString(e));
    }
}

TEST(NetCodec, FrameMessageAtTheCeiling)
{
    // A frame whose payload sits exactly at a small ceiling decodes;
    // the codecs and header agree on the boundary.
    const std::uint64_t ceiling = 4096;
    net::Buffer payload(ceiling, 0xab);
    const net::Buffer frame =
        net::frameMessage(net::Op::kSpmv, 7, payload);
    ASSERT_EQ(frame.size(), net::kHeaderBytes + ceiling);
    net::FrameHeader header;
    EXPECT_FALSE(
        net::decodeHeader(frame.data(), ceiling, header).has_value());
    EXPECT_EQ(header.payloadBytes, ceiling);
    EXPECT_EQ(header.id, 7u);
}

// --------------------------------------------------------------
// Malformed payloads (decoder totality)
// --------------------------------------------------------------

TEST(NetCodec, TruncationAtEveryPrefixIsRejected)
{
    // Property: every strict prefix of a valid payload must decode
    // to nullopt — never crash, never succeed.
    serve::SpmvRequest req;
    req.matrix = "ranker";
    req.x = {1.0, 2.0, 3.0};
    net::Buffer spmv;
    net::encodeSpmvRequest(req, spmv);
    for (std::size_t n = 0; n < spmv.size(); ++n)
        EXPECT_FALSE(net::decodeSpmvRequest(spmv.data(), n)) << n;

    net::Buffer result;
    net::encodeSpmvResult(std::vector<Value>{4.0, 5.0}, result);
    for (std::size_t n = 0; n < result.size(); ++n)
        EXPECT_FALSE(net::decodeSpmvResult(result.data(), n)) << n;

    fmt::CooMatrix coo(3, 3);
    coo.add(1, 2, 0.5);
    coo.canonicalize();
    net::Buffer spadd;
    net::encodeSpaddResult(std::move(coo), spadd);
    for (std::size_t n = 0; n < spadd.size(); ++n)
        EXPECT_FALSE(net::decodeSpaddResult(spadd.data(), n)) << n;
}

TEST(NetCodec, TrailingGarbageIsRejected)
{
    serve::SpaddRequest req;
    req.a = "a";
    req.b = "b";
    net::Buffer bytes;
    net::encodeSpaddRequest(req, bytes);
    bytes.push_back(0x00);
    EXPECT_FALSE(net::decodeSpaddRequest(bytes.data(), bytes.size()));
}

TEST(NetCodec, HostileCountFieldIsRejected)
{
    // An SpMV request claiming 2^61 vector elements in a tiny
    // payload must be rejected by the count guard, not honoured
    // with a gigantic resize.
    serve::SpmvRequest req;
    req.matrix = "m";
    req.x = {1.0};
    net::Buffer bytes;
    net::encodeSpmvRequest(req, bytes);
    // The u64 element count sits right after options (12 bytes) and
    // the str name (4 + 1 bytes).
    const std::size_t count_at = 12 + 4 + 1;
    ASSERT_LE(count_at + 8, bytes.size());
    for (int i = 0; i < 8; ++i)
        bytes[count_at + i] = 0xff;
    bytes[count_at + 7] = 0x2f;
    EXPECT_FALSE(net::decodeSpmvRequest(bytes.data(), bytes.size()));
}

TEST(NetCodec, OutOfRangeEnumsAreRejected)
{
    serve::SpmvRequest req;
    req.matrix = "m";
    net::Buffer bytes;
    net::encodeSpmvRequest(req, bytes);
    net::Buffer bad = bytes;
    bad[0] = 9; // priority out of range
    EXPECT_FALSE(net::decodeSpmvRequest(bad.data(), bad.size()));
    bad = bytes;
    bad[1] = 2; // admission out of range
    EXPECT_FALSE(net::decodeSpmvRequest(bad.data(), bad.size()));
    bad = bytes;
    bad[2] = 1; // pad must be zero
    EXPECT_FALSE(net::decodeSpmvRequest(bad.data(), bad.size()));

    net::Buffer result;
    net::encodeSpmvResult(serve::Status(
        serve::StatusCode::kInternal, ""), result);
    result[0] = 200; // status code beyond kInternal
    EXPECT_FALSE(net::decodeSpmvResult(result.data(), result.size()));
}

// --------------------------------------------------------------
// End-to-end over both transports
// --------------------------------------------------------------

/** Server + demo registry + oracle shared by the e2e tests. */
struct TestServer
{
    serve::MatrixRegistry registry;
    net::ServerOptions options;
    std::unique_ptr<net::Server> server;

    explicit TestServer(const char* tag, int threads,
                        Index max_inflight = 0,
                        Index max_inflight_per_conn = 0)
    {
        net::populateDemoRegistry(registry);
        options.unixPath = socketPath(tag);
        options.tcpPort = 0; // ephemeral
        options.session.threads = threads;
        options.session.maxInflight = max_inflight;
        options.maxInflightPerConn = max_inflight_per_conn;
        server = std::make_unique<net::Server>(registry, options);
        std::string error;
        if (!server->start(error))
            ADD_FAILURE() << "server start: " << error;
    }

    net::Client
    connect(bool tcp)
    {
        net::Client client;
        std::string error;
        const bool ok = tcp
            ? client.connectTcpSocket("localhost", server->tcpPort(),
                                      error)
            : client.connectUnixSocket(options.unixPath, error);
        EXPECT_TRUE(ok) << error;
        return client;
    }
};

std::vector<Value>
localSpmv(const fmt::CsrMatrix& csr, const std::vector<Value>& x)
{
    sim::NativeExec e;
    std::vector<Value> y(static_cast<std::size_t>(csr.rows()),
                         Value(0));
    eng::spmv(csr, x, y, e);
    return y;
}

TEST(NetEndToEnd, SpmvBitIdenticalOverBothTransports)
{
    const fmt::CsrMatrix csr =
        fmt::CsrMatrix::fromCoo(net::demoRanker());
    for (const int threads : threadCounts()) {
        TestServer ts("e2e", threads);
        for (const bool tcp : {false, true}) {
            net::Client client = ts.connect(tcp);
            ASSERT_TRUE(client.connected());
            EXPECT_TRUE(client.ping().ok());
            for (int seed = 0; seed < 6; ++seed) {
                const std::vector<Value> x = net::demoVector(seed);
                serve::Result<std::vector<Value>> r = client.spmv(
                    serve::SpmvRequest{"ranker", x, {}});
                ASSERT_TRUE(r.ok()) << r.status().toString();
                EXPECT_TRUE(bitIdentical(r.value(),
                                         localSpmv(csr, x)))
                    << "transport=" << (tcp ? "tcp" : "unix")
                    << " seed=" << seed;
            }
        }
        ts.server->shutdown();
    }
}

TEST(NetEndToEnd, SpmmAndSpaddRoundTrip)
{
    for (const int threads : threadCounts()) {
        TestServer ts("ops", threads);
        net::Client client = ts.connect(false);

        serve::SpmmRequest spmm;
        spmm.matrix = "ranker";
        spmm.b = fmt::DenseMatrix(net::kDemoRankerCols, 3);
        for (Index r = 0; r < net::kDemoRankerCols; ++r)
            for (Index c = 0; c < 3; ++c)
                spmm.b.at(r, c) =
                    Value(1) + Value((r + c) % 8) * Value(0.0625);
        serve::Result<fmt::DenseMatrix> ym = client.spmm(spmm);
        ASSERT_TRUE(ym.ok()) << ym.status().toString();
        EXPECT_EQ(ym.value().rows(), net::kDemoRankerRows);
        EXPECT_EQ(ym.value().cols(), 3);

        serve::Result<fmt::CooMatrix> sum = client.spadd(
            serve::SpaddRequest{"graph", "graph2", {}});
        ASSERT_TRUE(sum.ok()) << sum.status().toString();
        EXPECT_EQ(sum.value().rows(), net::kDemoGraphDim);
        EXPECT_GT(sum.value().nnz(), 0);

        // Typed validation statuses also survive the wire.
        serve::Result<std::vector<Value>> missing = client.spmv(
            serve::SpmvRequest{"no-such-matrix",
                               net::demoVector(0), {}});
        EXPECT_EQ(missing.status().code(),
                  serve::StatusCode::kNotFound);
        serve::Result<std::vector<Value>> short_x = client.spmv(
            serve::SpmvRequest{"ranker",
                               std::vector<Value>{1.0}, {}});
        EXPECT_EQ(short_x.status().code(),
                  serve::StatusCode::kInvalidOperand);
        ts.server->shutdown();
    }
}

TEST(NetEndToEnd, OverloadedSurvivesTheWireUnderSaturation)
{
    for (const int threads : threadCounts()) {
        TestServer ts("sat", threads, /*max_inflight=*/2);
        net::Client client = ts.connect(false);
        serve::RequestOptions burst;
        burst.priority = serve::Priority::kBatch; // slow flush lane
        burst.admission = serve::Admission::kFailFast;
        int outstanding = 0;
        for (int i = 0; i < 128; ++i)
            if (client.sendSpmv(serve::SpmvRequest{
                    "ranker", net::demoVector(i), burst}) != 0)
                ++outstanding;
        ASSERT_GT(outstanding, 0);
        int ok = 0, overloaded = 0;
        for (; outstanding > 0; --outstanding) {
            const auto resp = client.readSpmvResponse();
            ASSERT_TRUE(resp.has_value());
            if (resp->result.ok())
                ++ok;
            else if (resp->result.status().code() ==
                     serve::StatusCode::kOverloaded)
                ++overloaded;
        }
        EXPECT_GT(ok, 0);
        EXPECT_GT(overloaded, 0);
        EXPECT_GT(ts.server->session().overloadRejects(), 0u);
        ts.server->shutdown();
    }
}

TEST(NetEndToEnd, PerConnectionInflightCapAnswersOverloaded)
{
    TestServer ts("conncap", 2, /*max_inflight=*/0,
                  /*max_inflight_per_conn=*/1);
    net::Client client = ts.connect(false);
    serve::RequestOptions slow;
    slow.priority = serve::Priority::kBatch;
    int outstanding = 0;
    for (int i = 0; i < 64; ++i)
        if (client.sendSpmv(serve::SpmvRequest{
                "ranker", net::demoVector(i), slow}) != 0)
            ++outstanding;
    int ok = 0, overloaded = 0;
    for (; outstanding > 0; --outstanding) {
        const auto resp = client.readSpmvResponse();
        ASSERT_TRUE(resp.has_value());
        if (resp->result.ok())
            ++ok;
        else if (resp->result.status().code() ==
                 serve::StatusCode::kOverloaded)
            ++overloaded;
    }
    EXPECT_GT(ok, 0);
    EXPECT_GT(overloaded, 0);
    // The per-connection wall, not the (unbounded) global gate.
    EXPECT_EQ(ts.server->session().overloadRejects(), 0u);
    ts.server->shutdown();
}

// --------------------------------------------------------------
// Raw-socket fault injection
// --------------------------------------------------------------

/** A raw byte-level peer (no Client framing — that is the point). */
struct RawPeer
{
    net::Fd fd;

    explicit RawPeer(const std::string& path)
    {
        std::string error;
        fd = net::connectUnix(path, error);
        EXPECT_TRUE(fd.valid()) << error;
    }

    void
    send(const void* bytes, std::size_t n)
    {
        EXPECT_TRUE(net::writeFull(fd.get(), bytes, n));
    }

    void
    send(const net::Buffer& bytes)
    {
        send(bytes.data(), bytes.size());
    }

    /** Read one whole frame (expects the server to answer). */
    bool
    readFrame(net::FrameHeader& header, net::Buffer& payload)
    {
        std::uint8_t hb[net::kHeaderBytes];
        if (net::readFull(fd.get(), hb, net::kHeaderBytes) !=
            net::IoResult::kOk)
            return false;
        if (net::decodeHeader(hb, net::kDefaultMaxFrameBytes, header))
            return false;
        payload.resize(header.payloadBytes);
        return payload.empty() ||
            net::readFull(fd.get(), payload.data(),
                          payload.size()) == net::IoResult::kOk;
    }

    /** True when the server closed our stream (clean EOF or reset —
     *  either way, no hang and no partial frame). */
    bool
    closedByServer()
    {
        std::uint8_t byte = 0;
        return net::readFull(fd.get(), &byte, 1) !=
            net::IoResult::kOk;
    }
};

TEST(NetFaults, BadMagicGetsTypedErrorThenClose)
{
    TestServer ts("badmagic", 1);
    RawPeer peer(ts.options.unixPath);
    std::uint8_t junk[net::kHeaderBytes];
    std::memset(junk, 0x5a, sizeof(junk));
    peer.send(junk, sizeof(junk));
    net::FrameHeader header;
    net::Buffer payload;
    ASSERT_TRUE(peer.readFrame(header, payload));
    EXPECT_EQ(header.op, net::Op::kError);
    const auto err = net::decodeError(payload.data(), payload.size());
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->error, net::WireError::kBadMagic);
    EXPECT_TRUE(peer.closedByServer());
    ts.server->shutdown();
}

TEST(NetFaults, BadVersionGetsTypedErrorThenClose)
{
    TestServer ts("badver", 1);
    RawPeer peer(ts.options.unixPath);
    net::FrameHeader h;
    h.op = net::Op::kPing;
    std::uint8_t bytes[net::kHeaderBytes];
    net::encodeHeader(h, bytes);
    bytes[4] = 0x63; // version 99
    peer.send(bytes, sizeof(bytes));
    net::FrameHeader header;
    net::Buffer payload;
    ASSERT_TRUE(peer.readFrame(header, payload));
    EXPECT_EQ(header.op, net::Op::kError);
    const auto err = net::decodeError(payload.data(), payload.size());
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->error, net::WireError::kBadVersion);
    EXPECT_TRUE(peer.closedByServer());
    ts.server->shutdown();
}

TEST(NetFaults, OversizedLengthPrefixGetsTypedErrorThenClose)
{
    TestServer ts("oversize", 1);
    RawPeer peer(ts.options.unixPath);
    net::FrameHeader h;
    h.op = net::Op::kSpmv;
    h.id = 99;
    h.payloadBytes = net::kDefaultMaxFrameBytes + 1;
    std::uint8_t bytes[net::kHeaderBytes];
    net::encodeHeader(h, bytes);
    peer.send(bytes, sizeof(bytes));
    net::FrameHeader header;
    net::Buffer payload;
    ASSERT_TRUE(peer.readFrame(header, payload));
    EXPECT_EQ(header.op, net::Op::kError);
    EXPECT_EQ(header.id, 99u); // answered on the offending id
    const auto err = net::decodeError(payload.data(), payload.size());
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->error, net::WireError::kOversized);
    EXPECT_TRUE(peer.closedByServer());
    ts.server->shutdown();
}

TEST(NetFaults, UnknownOpIsRecoverable)
{
    TestServer ts("unknownop", 1);
    RawPeer peer(ts.options.unixPath);
    net::FrameHeader h;
    h.id = 41;
    h.payloadBytes = 4;
    std::uint8_t bytes[net::kHeaderBytes];
    net::encodeHeader(h, bytes);
    bytes[6] = 0x42; // undefined op
    peer.send(bytes, sizeof(bytes));
    const std::uint8_t payload_bytes[4] = {1, 2, 3, 4};
    peer.send(payload_bytes, 4);

    net::FrameHeader header;
    net::Buffer payload;
    ASSERT_TRUE(peer.readFrame(header, payload));
    EXPECT_EQ(header.op, net::Op::kError);
    EXPECT_EQ(header.id, 41u);
    const auto err = net::decodeError(payload.data(), payload.size());
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->error, net::WireError::kUnknownOp);

    // The connection survives: a valid ping still round-trips.
    peer.send(net::frameMessage(net::Op::kPing, 42, {}));
    ASSERT_TRUE(peer.readFrame(header, payload));
    EXPECT_EQ(header.op, net::Op::kPong);
    EXPECT_EQ(header.id, 42u);
    ts.server->shutdown();
}

TEST(NetFaults, MalformedPayloadIsRecoverable)
{
    TestServer ts("malformed", 1);
    RawPeer peer(ts.options.unixPath);
    // A kSpmv frame whose payload is garbage.
    net::Buffer garbage(16, 0xee);
    peer.send(net::frameMessage(net::Op::kSpmv, 7, garbage));
    net::FrameHeader header;
    net::Buffer payload;
    ASSERT_TRUE(peer.readFrame(header, payload));
    EXPECT_EQ(header.op, net::Op::kError);
    EXPECT_EQ(header.id, 7u);
    const auto err = net::decodeError(payload.data(), payload.size());
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->error, net::WireError::kMalformedPayload);

    // Still serving.
    peer.send(net::frameMessage(net::Op::kPing, 8, {}));
    ASSERT_TRUE(peer.readFrame(header, payload));
    EXPECT_EQ(header.op, net::Op::kPong);
    ts.server->shutdown();
}

TEST(NetFaults, ResponseOpSentToServerIsRecoverable)
{
    TestServer ts("respop", 1);
    RawPeer peer(ts.options.unixPath);
    peer.send(net::frameMessage(net::Op::kPong, 3, {}));
    net::FrameHeader header;
    net::Buffer payload;
    ASSERT_TRUE(peer.readFrame(header, payload));
    EXPECT_EQ(header.op, net::Op::kError);
    const auto err = net::decodeError(payload.data(), payload.size());
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->error, net::WireError::kUnknownOp);
    peer.send(net::frameMessage(net::Op::kPing, 4, {}));
    ASSERT_TRUE(peer.readFrame(header, payload));
    EXPECT_EQ(header.op, net::Op::kPong);
    ts.server->shutdown();
}

TEST(NetFaults, MidFrameDisconnectsNeverWedgeTheServer)
{
    TestServer ts("midframe", 2);
    // Disconnect at every interesting cut point: mid-header,
    // between header and payload, and mid-payload.
    serve::SpmvRequest req{"ranker", net::demoVector(1), {}};
    net::Buffer payload;
    net::encodeSpmvRequest(req, payload);
    const net::Buffer frame =
        net::frameMessage(net::Op::kSpmv, 5, payload);
    const std::size_t cuts[] = {1, net::kHeaderBytes / 2,
                                net::kHeaderBytes,
                                net::kHeaderBytes + 3,
                                frame.size() - 1};
    for (const std::size_t cut : cuts) {
        RawPeer peer(ts.options.unixPath);
        peer.send(frame.data(), cut);
        peer.fd.reset(); // vanish mid-frame
    }
    // The server is still fully alive for a well-behaved client.
    net::Client client = ts.connect(false);
    serve::Result<std::vector<Value>> r = client.spmv(
        serve::SpmvRequest{"ranker", net::demoVector(2), {}});
    EXPECT_TRUE(r.ok()) << r.status().toString();
    ts.server->shutdown();
}

// --------------------------------------------------------------
// Faults and lifecycle
// --------------------------------------------------------------

TEST(NetLifecycle, DisconnectWithInflightReleasesAdmissionSlots)
{
    for (const int threads : threadCounts()) {
        // Global gate of 4: if a vanished client leaked its slots,
        // the follow-up client would starve into kOverloaded.
        TestServer ts("leak", threads, /*max_inflight=*/4);
        for (int round = 0; round < 3; ++round) {
            net::Client client = ts.connect(false);
            serve::RequestOptions slow;
            slow.priority = serve::Priority::kBatch;
            for (int i = 0; i < 16; ++i)
                client.sendSpmv(serve::SpmvRequest{
                    "ranker", net::demoVector(i), slow});
            client.close(); // vanish with everything in flight
        }
        // SIGPIPE from the server writing those responses into the
        // dead sockets must not exist (MSG_NOSIGNAL) — and every
        // admitted slot must come back. The vanished clients'
        // buffered requests may still be draining (the conn threads
        // read them after close()), so retry briefly: a leaked slot
        // stays leaked forever, a busy slot frees within the batch
        // delay.
        net::Client client = ts.connect(false);
        bool served = false;
        for (int attempt = 0; attempt < 400 && !served; ++attempt) {
            serve::Result<std::vector<Value>> r = client.spmv(
                serve::SpmvRequest{"ranker", net::demoVector(0), {}});
            served = r.ok();
            if (!served) {
                ASSERT_EQ(r.status().code(),
                          serve::StatusCode::kOverloaded)
                    << r.status().toString();
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            }
        }
        EXPECT_TRUE(served)
            << "admission slots never came back after the "
               "disconnects — leaked tickets";
        ts.server->shutdown();
    }
}

TEST(NetLifecycle, ShutdownMidStreamDeliversShuttingDown)
{
    for (const int threads : threadCounts()) {
        TestServer ts("shut", threads);
        net::Client client = ts.connect(false);
        // Prove the connection works, then drain the session while
        // the connection stays up.
        EXPECT_TRUE(client.ping().ok());
        ts.server->beginShutdown();
        // The still-open connection now gets typed kShuttingDown
        // responses, not a slammed socket.
        serve::Result<std::vector<Value>> r = client.spmv(
            serve::SpmvRequest{"ranker", net::demoVector(0), {}});
        EXPECT_EQ(r.status().code(),
                  serve::StatusCode::kShuttingDown)
            << r.status().toString();
        ts.server->shutdown();
    }
}

TEST(NetLifecycle, ServerShutdownWithIdleConnectionsIsClean)
{
    TestServer ts("idle", 2);
    net::Client a = ts.connect(false);
    net::Client b = ts.connect(true);
    EXPECT_TRUE(a.ping().ok());
    EXPECT_TRUE(b.ping().ok());
    // Both connections parked in read; shutdown must wake and join
    // them without hanging.
    ts.server->shutdown();
    EXPECT_FALSE(a.ping().ok());
}

/**
 * The satellite-4 regression: Session::close() must not return
 * while any completion callback is still running, and the gate's
 * condition variable must not be destroyed under a worker still
 * inside notify (the release()-after-unlock window this PR fixed).
 * The race is made observable for TSan: callbacks write a
 * mutex-guarded cell; after close()+join the main thread writes the
 * same cell WITHOUT the mutex — a callback outliving close() is a
 * data race TSan reports, and the Session destruction directly
 * after close() exercises the CV-destruction window.
 */
TEST(NetLifecycle, CloseVsCallbackTeardownRace)
{
    for (const int threads : threadCounts()) {
        for (int iter = 0; iter < 8; ++iter) {
            serve::MatrixRegistry registry;
            net::populateDemoRegistry(registry);
            serve::SessionOptions options;
            options.threads = threads;
            auto session = std::make_unique<serve::Session>(
                registry, options);

            std::mutex cell_mutex;
            std::uint64_t cell = 0;
            std::atomic<bool> stop{false};
            std::thread submitter([&] {
                int seed = 0;
                while (!stop.load(std::memory_order_acquire)) {
                    session->submit(
                        serve::SpmvRequest{"ranker",
                                           net::demoVector(seed++),
                                           {}},
                        [&](serve::Result<std::vector<Value>> r) {
                            std::lock_guard<std::mutex> lock(
                                cell_mutex);
                            cell += r.ok() ? 1 : 0;
                        });
                }
            });
            // Let requests pile into the pipeline, then slam the
            // door while the submitter keeps pushing.
            std::this_thread::sleep_for(
                std::chrono::microseconds(200 + 137 * iter));
            session->close();
            stop.store(true, std::memory_order_release);
            submitter.join();
            // Contract: no callback is running anymore. This
            // unsynchronized write races with any that is.
            cell = 0;
            // And destroying the session right away exercises the
            // gate-CV teardown path close() just unblocked from.
            session.reset();
        }
    }
}

} // namespace
} // namespace smash
