/**
 * @file
 * Tests for the structure-specialized formats (DIA, ELL) and their
 * SpMV kernels: dense round-trips, structural invariants, the
 * storage behaviour that motivates the paper's generality argument
 * (§2.3), and agreement of spmvDia/spmvEll with the dense oracle.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "formats/convert.hh"
#include "formats/dia_matrix.hh"
#include "formats/ell_matrix.hh"
#include "kernels/reference.hh"
#include "kernels/spmv_structured.hh"
#include "sim/exec_model.hh"
#include "workloads/matrix_gen.hh"

namespace smash::fmt
{
namespace
{

CooMatrix
fig1Example()
{
    CooMatrix coo(4, 4);
    coo.add(0, 0, 3.2);
    coo.add(1, 0, 1.2);
    coo.add(1, 2, 4.2);
    coo.add(2, 3, 5.1);
    coo.add(3, 0, 5.3);
    coo.add(3, 1, 3.3);
    coo.canonicalize();
    return coo;
}

CooMatrix
tridiagonal(Index n)
{
    CooMatrix coo(n, n);
    for (Index i = 0; i < n; ++i) {
        coo.add(i, i, 2.0);
        if (i > 0)
            coo.add(i, i - 1, -1.0);
        if (i + 1 < n)
            coo.add(i, i + 1, -1.0);
    }
    coo.canonicalize();
    return coo;
}

std::vector<Value>
randomVector(Index n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Value> v(static_cast<std::size_t>(n));
    for (auto& x : v)
        x = Value(0.25) + static_cast<Value>(rng.uniform());
    return v;
}

// ---------------------------------------------------------------- DIA

TEST(Dia, RoundTripsFig1Example)
{
    CooMatrix coo = fig1Example();
    DiaMatrix dia = DiaMatrix::fromCoo(coo);
    EXPECT_TRUE(dia.checkInvariants());
    EXPECT_TRUE(dia.toDense().approxEquals(coo.toDense(), 0.0));
}

TEST(Dia, Fig1ExampleLanes)
{
    // Fig. 1 populates offsets -3 (5.3), -2 (3.3), -1 (1.2),
    // 0 (3.2), +1 (4.2 and 5.1).
    DiaMatrix dia = DiaMatrix::fromCoo(fig1Example());
    EXPECT_EQ(dia.numDiagonals(), 5);
    EXPECT_EQ(dia.offsets(), (std::vector<Index>{-3, -2, -1, 0, 1}));
    EXPECT_EQ(dia.nnz(), 6);
}

TEST(Dia, TridiagonalStoresThreeLanes)
{
    DiaMatrix dia = DiaMatrix::fromCoo(tridiagonal(64));
    EXPECT_EQ(dia.numDiagonals(), 3);
    EXPECT_TRUE(dia.checkInvariants());
    // Only the two band end slots per off-diagonal lane are padding.
    EXPECT_GT(dia.fillEfficiency(), 0.98);
}

TEST(Dia, UniformScatterFillsPoorly)
{
    // The generality argument: uniform scatter touches many
    // diagonals, each nearly empty.
    CooMatrix coo = wl::genUniform(128, 128, 256, 7);
    DiaMatrix dia = DiaMatrix::fromCoo(coo);
    EXPECT_TRUE(dia.checkInvariants());
    EXPECT_LT(dia.fillEfficiency(), 0.10);
    EXPECT_TRUE(dia.toDense().approxEquals(coo.toDense(), 0.0));
}

TEST(Dia, EmptyMatrix)
{
    CooMatrix coo(5, 5);
    coo.canonicalize();
    DiaMatrix dia = DiaMatrix::fromCoo(coo);
    EXPECT_EQ(dia.numDiagonals(), 0);
    EXPECT_EQ(dia.nnz(), 0);
    EXPECT_TRUE(dia.checkInvariants());
    EXPECT_EQ(dia.storageBytes(), 0u);
}

TEST(Dia, RectangularTallAndWide)
{
    for (auto [r, c] : {std::pair<Index, Index>{20, 7},
                        std::pair<Index, Index>{7, 20}}) {
        CooMatrix coo = wl::genUniform(r, c, 30, 11);
        DiaMatrix dia = DiaMatrix::fromCoo(coo);
        EXPECT_TRUE(dia.checkInvariants());
        EXPECT_TRUE(dia.toDense().approxEquals(coo.toDense(), 0.0));
    }
}

TEST(Dia, LaneDataOutOfRangeThrows)
{
    DiaMatrix dia = DiaMatrix::fromCoo(tridiagonal(8));
    EXPECT_THROW(dia.laneData(-1), FatalError);
    EXPECT_THROW(dia.laneData(3), FatalError);
}

TEST(Dia, RequiresCanonicalCoo)
{
    CooMatrix coo(4, 4);
    coo.add(2, 2, 1.0);
    coo.add(0, 0, 1.0); // unsorted
    EXPECT_THROW(DiaMatrix::fromCoo(coo), FatalError);
}

TEST(Dia, StorageBeatsCsrOnBandedMatrix)
{
    CooMatrix coo = tridiagonal(512);
    DiaMatrix dia = DiaMatrix::fromCoo(coo);
    CsrMatrix csr = CsrMatrix::fromCoo(coo);
    EXPECT_LT(dia.storageBytes(), csr.storageBytes());
}

// ---------------------------------------------------------------- ELL

TEST(Ell, RoundTripsFig1Example)
{
    CooMatrix coo = fig1Example();
    EllMatrix ell = EllMatrix::fromCoo(coo);
    EXPECT_TRUE(ell.checkInvariants());
    EXPECT_EQ(ell.width(), 2); // rows 1 and 3 hold two entries
    EXPECT_TRUE(ell.toDense().approxEquals(coo.toDense(), 0.0));
}

TEST(Ell, WidthIsMaxRowDegree)
{
    CooMatrix coo(4, 8);
    for (Index c = 0; c < 6; ++c)
        coo.add(2, c, 1.0);
    coo.add(0, 0, 1.0);
    coo.canonicalize();
    EllMatrix ell = EllMatrix::fromCoo(coo);
    EXPECT_EQ(ell.width(), 6);
    // One heavy row inflates everyone: 4 rows x 6 slots for 7 nnz.
    EXPECT_NEAR(ell.fillEfficiency(), 7.0 / 24.0, 1e-12);
}

TEST(Ell, EmptyMatrix)
{
    CooMatrix coo(3, 3);
    coo.canonicalize();
    EllMatrix ell = EllMatrix::fromCoo(coo);
    EXPECT_EQ(ell.width(), 0);
    EXPECT_TRUE(ell.checkInvariants());
    EXPECT_EQ(ell.storageBytes(), 0u);
}

TEST(Ell, UniformMatrixRoundTrips)
{
    CooMatrix coo = wl::genUniform(96, 64, 512, 23);
    EllMatrix ell = EllMatrix::fromCoo(coo);
    EXPECT_TRUE(ell.checkInvariants());
    EXPECT_TRUE(ell.toDense().approxEquals(coo.toDense(), 0.0));
}

TEST(Ell, RequiresCanonicalCoo)
{
    CooMatrix coo(4, 4);
    coo.add(1, 1, 1.0);
    coo.add(1, 1, 2.0); // duplicate
    EXPECT_THROW(EllMatrix::fromCoo(coo), FatalError);
}

TEST(Ell, PaddingSlotsAreZeroValued)
{
    EllMatrix ell = EllMatrix::fromCoo(fig1Example());
    for (std::size_t s = 0; s < ell.colInd().size(); ++s) {
        if (ell.colInd()[s] == kEllPad) {
            EXPECT_EQ(ell.values()[s], Value(0));
        }
    }
}

// ------------------------------------------------------ SpMV kernels

struct StructuredSpmvCase
{
    const char* name;
    Index rows, cols, nnz;
    int structure; // 0 uniform, 1 banded, 2 powerlaw
    std::uint64_t seed;
};

class StructuredSpmv : public ::testing::TestWithParam<StructuredSpmvCase>
{
  protected:
    CooMatrix
    make() const
    {
        const auto& p = GetParam();
        switch (p.structure) {
          case 0:
            return wl::genUniform(p.rows, p.cols, p.nnz, p.seed);
          case 1:
            return tridiagonal(p.rows);
          default:
            return wl::genPowerLaw(p.rows, p.cols, p.nnz, 1.8, p.seed);
        }
    }
};

TEST_P(StructuredSpmv, DiaMatchesDenseOracle)
{
    CooMatrix coo = make();
    DiaMatrix dia = DiaMatrix::fromCoo(coo);
    std::vector<Value> x = randomVector(coo.cols(), 3);
    std::vector<Value> y(static_cast<std::size_t>(coo.rows()), 0.5);
    std::vector<Value> y_ref = y;

    sim::NativeExec e;
    kern::spmvDia(dia, x, y, e);
    kern::denseSpmv(coo.toDense(), x, y_ref);
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(y[i], y_ref[i], 1e-9) << "row " << i;
}

TEST_P(StructuredSpmv, EllMatchesDenseOracle)
{
    CooMatrix coo = make();
    EllMatrix ell = EllMatrix::fromCoo(coo);
    std::vector<Value> x = randomVector(coo.cols(), 4);
    std::vector<Value> y(static_cast<std::size_t>(coo.rows()), -0.25);
    std::vector<Value> y_ref = y;

    sim::NativeExec e;
    kern::spmvEll(ell, x, y, e);
    kern::denseSpmv(coo.toDense(), x, y_ref);
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(y[i], y_ref[i], 1e-9) << "row " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StructuredSpmv,
    ::testing::Values(
        StructuredSpmvCase{"uniform_square", 64, 64, 400, 0, 11},
        StructuredSpmvCase{"uniform_wide", 32, 96, 300, 0, 12},
        StructuredSpmvCase{"uniform_tall", 96, 32, 300, 0, 13},
        StructuredSpmvCase{"banded", 80, 80, 0, 1, 14},
        StructuredSpmvCase{"powerlaw", 72, 72, 500, 2, 15},
        StructuredSpmvCase{"nearly_dense", 24, 24, 500, 0, 16}),
    [](const auto& info) { return info.param.name; });

} // namespace
} // namespace smash::fmt
