/**
 * @file
 * Tests for the serving subsystem and the engine growth beneath it:
 * batched SpMV against per-request dispatch (within 1e-12), the
 * batched SpMM/SpAdd dispatch entry points, the parallel SpMM/SpAdd
 * drivers, thread-pool shutdown semantics, the matrix registry's
 * conversion caching — and the typed serve::Result surface: status
 * codes instead of exceptions, per-(matrix, op) batching with
 * priority-aware flush ordering, admission control (kOverloaded
 * fail-fast, kBlock eventual completion), deadlines, and the
 * per-priority latency accounting.
 *
 * Thread counts: SMASH_SERVE_THREADS pins one count (the ctest
 * variants run 1, 2, and 8); unset, every count is covered.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel_exec.hh"
#include "engine/dispatch.hh"
#include "formats/convert.hh"
#include "kernels/reference.hh"
#include "serve/session.hh"
#include "workloads/matrix_gen.hh"

namespace smash
{
namespace
{

const eng::Format kAllFormats[] = {
    eng::Format::kCoo,  eng::Format::kCsr,   eng::Format::kCsc,
    eng::Format::kBcsr, eng::Format::kEll,   eng::Format::kDia,
    eng::Format::kDense, eng::Format::kSmash,
};

std::vector<int>
threadCounts()
{
    if (const char* env = std::getenv("SMASH_SERVE_THREADS"))
        return {std::atoi(env)};
    return {1, 2, 8};
}

std::vector<Value>
rampVector(Index n, Index kind)
{
    std::vector<Value> x(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i)
        x[static_cast<std::size_t>(i)] =
            Value(1) + Value((i * 3 + kind) % 7) * Value(0.25);
    return x;
}

/** Dyadic-valued COO (multiples of 2^-4): exact in any sum order. */
fmt::CooMatrix
dyadicMatrix(Index rows, Index cols, Index per_row)
{
    fmt::CooMatrix coo(rows, cols);
    for (Index r = 0; r < rows; ++r)
        for (Index k = 0; k < per_row; ++k)
            coo.add(r, (r * 5 + k * 7) % cols,
                    Value(1) + Value((r * 3 + k) % 9) * Value(0.0625));
    coo.canonicalize();
    return coo;
}

/** Dyadic dense block, one distinct column per RHS. */
fmt::DenseMatrix
dyadicBlock(Index rows, Index nrhs, Index kind)
{
    fmt::DenseMatrix b(rows, nrhs);
    for (Index c = 0; c < nrhs; ++c)
        for (Index j = 0; j < rows; ++j)
            b.at(j, c) = Value(1) +
                Value((j * 5 + c * 3 + kind) % 9) * Value(0.0625);
    return b;
}

/** X block with column r = rampVector(rows, r), zero-padded. */
fmt::DenseMatrix
operandBlock(Index padded_rows, Index logical_rows, Index nrhs)
{
    fmt::DenseMatrix x(padded_rows, nrhs);
    for (Index r = 0; r < nrhs; ++r) {
        const std::vector<Value> xr = rampVector(logical_rows, r);
        for (Index j = 0; j < logical_rows; ++j)
            x.at(j, r) = xr[static_cast<std::size_t>(j)];
    }
    return x;
}

/** Per-column reference: N independent single-RHS dispatches. */
template <typename E>
fmt::DenseMatrix
perRhsReference(const eng::MatrixRef& m, Index logical_rows,
                Index nrhs, E& e)
{
    fmt::DenseMatrix y(m.rows(), nrhs);
    for (Index r = 0; r < nrhs; ++r) {
        std::vector<Value> yr(static_cast<std::size_t>(m.rows()),
                              Value(0));
        eng::spmv(m, rampVector(logical_rows, r), yr, e);
        for (Index i = 0; i < m.rows(); ++i)
            y.at(i, r) = yr[static_cast<std::size_t>(i)];
    }
    return y;
}

TEST(SpmvBatch, MatchesIndividualSpmvAcrossFormats)
{
    const fmt::CooMatrix coo = wl::genClustered(96, 80, 900, 5, 17);
    const Index nrhs = 7;
    sim::NativeExec e;

    for (eng::Format f : kAllFormats) {
        eng::SparseMatrixAny m = eng::SparseMatrixAny::fromCoo(coo, f);
        fmt::DenseMatrix x =
            operandBlock(m.xLength(), coo.cols(), nrhs);
        fmt::DenseMatrix y(coo.rows(), nrhs);
        eng::spmvBatch(m.ref(), x, y, e);
        const fmt::DenseMatrix ref =
            perRhsReference(m.ref(), coo.cols(), nrhs, e);
        for (Index i = 0; i < coo.rows(); ++i)
            for (Index r = 0; r < nrhs; ++r)
                EXPECT_NEAR(y.at(i, r), ref.at(i, r), 1e-12)
                    << eng::toString(f) << " row " << i << " rhs " << r;
    }
}

TEST(SpmvBatch, AccumulatesIntoY)
{
    const fmt::CooMatrix coo = wl::genClustered(40, 40, 300, 4, 3);
    const fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    sim::NativeExec e;
    fmt::DenseMatrix x = operandBlock(40, 40, 3);
    fmt::DenseMatrix y1(40, 3);
    eng::spmvBatch(csr, x, y1, e);
    // Y := Y + A X semantics: a second call doubles the result.
    fmt::DenseMatrix y2(40, 3);
    eng::spmvBatch(csr, x, y2, e);
    eng::spmvBatch(csr, x, y2, e);
    for (Index i = 0; i < 40; ++i)
        for (Index r = 0; r < 3; ++r)
            EXPECT_NEAR(y2.at(i, r), 2 * y1.at(i, r), 1e-12);
}

TEST(SpmvBatch, ParallelMatchesSerialAtEveryThreadCount)
{
    const fmt::CooMatrix coo = wl::genPowerLaw(150, 150, 1800, 1.0, 32);
    const Index nrhs = 5;
    sim::NativeExec serial;

    for (eng::Format f : kAllFormats) {
        eng::SparseMatrixAny m = eng::SparseMatrixAny::fromCoo(coo, f);
        fmt::DenseMatrix x =
            operandBlock(m.xLength(), coo.cols(), nrhs);
        fmt::DenseMatrix y_serial(coo.rows(), nrhs);
        eng::spmvBatch(m.ref(), x, y_serial, serial);
        for (int threads : threadCounts()) {
            exec::ParallelExec pe(threads);
            fmt::DenseMatrix y(coo.rows(), nrhs);
            eng::spmvBatch(m.ref(), x, y, pe);
            for (Index i = 0; i < coo.rows(); ++i)
                for (Index r = 0; r < nrhs; ++r)
                    EXPECT_NEAR(y.at(i, r), y_serial.at(i, r), 1e-12)
                        << eng::toString(f) << " threads " << threads;
        }
    }
}

TEST(SpmvBatch, SimulatedDispatchBillsTheMachine)
{
    const fmt::CooMatrix coo = wl::genClustered(48, 48, 400, 4, 9);
    sim::NativeExec native;
    for (eng::Format f : {eng::Format::kCsr, eng::Format::kSmash}) {
        eng::SparseMatrixAny m = eng::SparseMatrixAny::fromCoo(coo, f);
        fmt::DenseMatrix x = operandBlock(m.xLength(), 48, 4);
        fmt::DenseMatrix ref(48, 4);
        eng::spmvBatch(m.ref(), x, ref, native);

        sim::Machine machine;
        sim::SimExec e(machine);
        fmt::DenseMatrix y(48, 4);
        eng::spmvBatch(m.ref(), x, y, e);
        EXPECT_GT(machine.core().instructions(), 0u);
        EXPECT_TRUE(y.approxEquals(ref, 1e-12)) << eng::toString(f);
    }
}

TEST(SpmmBatch, BitIdenticalToConcatenationAndCloseToSpmm)
{
    // The dense-RHS SpMM entry: computing a block alone must be
    // bit-identical to computing it inside a wider concatenation
    // (per-column arithmetic is independent and ordered) — the
    // property the serving layer's SpMM coalescing relies on.
    const fmt::CooMatrix coo = dyadicMatrix(64, 48, 6);
    const fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    sim::NativeExec e;

    const fmt::DenseMatrix b1 = dyadicBlock(48, 3, 1);
    const fmt::DenseMatrix b2 = dyadicBlock(48, 5, 2);
    fmt::DenseMatrix wide(48, 8);
    for (Index j = 0; j < 48; ++j) {
        for (Index c = 0; c < 3; ++c)
            wide.at(j, c) = b1.at(j, c);
        for (Index c = 0; c < 5; ++c)
            wide.at(j, 3 + c) = b2.at(j, c);
    }
    fmt::DenseMatrix c1(64, 3), c2(64, 5), cw(64, 8);
    eng::spmmBatch(csr, b1, c1, e);
    eng::spmmBatch(csr, b2, c2, e);
    eng::spmmBatch(csr, wide, cw, e);
    for (Index i = 0; i < 64; ++i) {
        for (Index c = 0; c < 3; ++c)
            EXPECT_EQ(c1.at(i, c), cw.at(i, c));
        for (Index c = 0; c < 5; ++c)
            EXPECT_EQ(c2.at(i, c), cw.at(i, 3 + c));
    }

    // And against the sparse-B SpMM route (CSR x CSC): dyadic
    // values make every summation order exact, so even the
    // different traversal agrees bitwise.
    fmt::CooMatrix b_coo(48, 8);
    for (Index j = 0; j < 48; ++j)
        for (Index c = 0; c < 8; ++c)
            b_coo.add(j, c, wide.at(j, c));
    b_coo.canonicalize();
    const fmt::CscMatrix b_csc = fmt::CscMatrix::fromCoo(b_coo);
    fmt::DenseMatrix c_spmm(64, 8);
    eng::spmm(csr, b_csc, c_spmm, e);
    for (Index i = 0; i < 64; ++i)
        for (Index c = 0; c < 8; ++c)
            EXPECT_EQ(cw.at(i, c), c_spmm.at(i, c));
}

TEST(SpaddBatch, MatchesIndividualSpadd)
{
    const fmt::CsrMatrix a =
        fmt::CsrMatrix::fromCoo(dyadicMatrix(50, 50, 5));
    const fmt::CsrMatrix b1 =
        fmt::CsrMatrix::fromCoo(dyadicMatrix(50, 50, 3));
    const fmt::CsrMatrix b2 =
        fmt::CsrMatrix::fromCoo(dyadicMatrix(50, 50, 7));
    sim::NativeExec e;
    const std::vector<eng::SparseMatrixAny> sums =
        eng::spaddBatch(a, {b1, b2}, e);
    ASSERT_EQ(sums.size(), 2u);
    const eng::SparseMatrixAny s1 = eng::spadd(a, b1, e);
    const eng::SparseMatrixAny s2 = eng::spadd(a, b2, e);
    EXPECT_EQ(sums[0].nnz(), s1.nnz());
    EXPECT_EQ(sums[1].nnz(), s2.nnz());
    const std::vector<Value> x = rampVector(50, 2);
    for (int i = 0; i < 2; ++i) {
        std::vector<Value> ya(50, Value(0)), yb(50, Value(0));
        eng::spmv(sums[static_cast<std::size_t>(i)], x, ya, e);
        eng::spmv(i == 0 ? s1 : s2, x, yb, e);
        for (Index r = 0; r < 50; ++r)
            EXPECT_EQ(ya[static_cast<std::size_t>(r)],
                      yb[static_cast<std::size_t>(r)]);
    }
}

TEST(ParallelDrivers, SpmmTilesMatchSerial)
{
    const fmt::CooMatrix a_coo = wl::genClustered(90, 70, 1100, 4, 21);
    const fmt::CooMatrix b_coo = wl::genClustered(70, 60, 800, 4, 22);
    const fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(a_coo);
    const fmt::CscMatrix b = fmt::CscMatrix::fromCoo(b_coo);

    sim::NativeExec serial;
    fmt::DenseMatrix c_serial(a.rows(), b.cols());
    eng::spmm(a, b, c_serial, serial);

    for (int threads : threadCounts()) {
        exec::ParallelExec pe(threads);
        fmt::DenseMatrix c(a.rows(), b.cols());
        eng::spmm(a, b, c, pe);
        EXPECT_TRUE(c.approxEquals(c_serial, 1e-12))
            << "threads " << threads;
    }
}

TEST(ParallelDrivers, SpaddMatchesSerial)
{
    const fmt::CooMatrix a_coo = wl::genClustered(80, 80, 900, 4, 31);
    const fmt::CooMatrix b_coo = wl::genClustered(80, 80, 900, 4, 32);
    sim::NativeExec serial;
    const std::vector<Value> x = rampVector(80, 1);

    for (eng::Format f :
         {eng::Format::kCsr, eng::Format::kDense, eng::Format::kSmash}) {
        eng::SparseMatrixAny a = eng::SparseMatrixAny::fromCoo(a_coo, f);
        eng::SparseMatrixAny b = eng::SparseMatrixAny::fromCoo(b_coo, f);
        eng::SparseMatrixAny c_serial = eng::spadd(a, b, serial);
        std::vector<Value> y_serial(80, Value(0));
        eng::spmv(c_serial, x, y_serial, serial);

        for (int threads : threadCounts()) {
            exec::ParallelExec pe(threads);
            eng::SparseMatrixAny c = eng::spadd(a, b, pe);
            std::vector<Value> y(80, Value(0));
            eng::spmv(c, x, y, serial);
            for (std::size_t i = 0; i < y.size(); ++i)
                EXPECT_NEAR(y[i], y_serial[i], 1e-12)
                    << eng::toString(f) << " threads " << threads;
        }
    }
}

TEST(ThreadPoolShutdown, RejectsSubmissionAfterShutdown)
{
    exec::ThreadPool pool(2);
    pool.parallelFor(0, 4, 1, [](Index, Index) {});
    pool.shutdown();
    EXPECT_THROW(pool.parallelFor(0, 4, 1, [](Index, Index) {}),
                 FatalError);
    EXPECT_THROW(pool.post([] {}), FatalError);
    pool.shutdown(); // idempotent
}

TEST(ThreadPoolShutdown, TryPostRunsBeforeAndRejectsAfterShutdown)
{
    std::atomic<int> ran{0};
    exec::ThreadPool pool(2);
    // Accepted submissions run even when shutdown follows at once
    // (the drain-before-join contract).
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(pool.tryPost([&ran] { ran.fetch_add(1); }));
    pool.shutdown();
    EXPECT_EQ(ran.load(), 8);
    // After shutdown the gate reports rejection instead of
    // throwing — the caller (a drift re-encode racing a session
    // teardown) falls back to running inline.
    EXPECT_FALSE(pool.tryPost([&ran] { ran.fetch_add(1); }));
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolShutdown, DrainsPostedTasksBeforeJoining)
{
    std::atomic<int> ran{0};
    {
        exec::ThreadPool pool(2);
        for (int i = 0; i < 200; ++i)
            pool.post([&ran] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(20));
                ran.fetch_add(1);
            });
        pool.shutdown(); // must run all 200, not strand them
        EXPECT_EQ(ran.load(), 200);
    }
    EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolShutdown, NestedParallelForProgresses)
{
    // A worker task that itself calls parallelFor must not
    // deadlock, even when it is the pool's only worker: the
    // blocked caller helps drain the queues.
    for (int threads : {1, 4}) {
        exec::ThreadPool pool(threads);
        std::atomic<long> sum{0};
        pool.parallelFor(0, 8, 1, [&](Index ob, Index oe) {
            for (Index o = ob; o < oe; ++o)
                pool.parallelFor(o * 100, (o + 1) * 100, 1,
                                 [&](Index b, Index e) {
                    for (Index i = b; i < e; ++i)
                        sum.fetch_add(i);
                });
        });
        EXPECT_EQ(sum.load(), 800L * 799 / 2) << threads << " threads";
    }
}

serve::QueueKey
spmvKey(std::string matrix)
{
    return serve::QueueKey{std::move(matrix), serve::OpClass::kSpmv};
}

serve::Request
plainRequest(serve::Priority priority = serve::Priority::kNormal)
{
    serve::Request r;
    r.options.priority = priority;
    r.submitted = serve::Request::Clock::now();
    return r;
}

TEST(Batcher, FlushAllWithZeroPendingInvokesNothing)
{
    std::atomic<int> flushes{0};
    {
        serve::Batcher batcher(
            4, std::chrono::microseconds(50),
            std::chrono::microseconds(400),
            [&flushes](const serve::QueueKey&,
                       std::vector<serve::Request>) {
                flushes.fetch_add(1);
            });
        batcher.flushAll(); // nothing queued: no callback
        batcher.flushAll(); // idempotent on empty queues
        EXPECT_EQ(flushes.load(), 0);
        EXPECT_EQ(batcher.sizeFlushes(), 0u);
        EXPECT_EQ(batcher.deadlineFlushes(), 0u);
        EXPECT_EQ(batcher.manualFlushes(), 0u);
    } // destructor flushes nothing either
    EXPECT_EQ(flushes.load(), 0);
}

TEST(Batcher, DeadlineShorterThanOnePollTickStillFlushes)
{
    // A 1 microsecond deadline is far below any scheduler tick: by
    // the time the timer thread evaluates it, it has already
    // passed. The partial batch must flush promptly anyway (via
    // the timeout path), not hang until max_batch fills.
    std::atomic<int> delivered{0};
    serve::Batcher batcher(
        64, std::chrono::microseconds(1), std::chrono::microseconds(8),
        [&delivered](const serve::QueueKey&,
                     std::vector<serve::Request> batch) {
            delivered.fetch_add(static_cast<int>(batch.size()));
        });
    batcher.enqueue(spmvKey("m"), plainRequest());
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::seconds(5);
    while (delivered.load() < 1 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    EXPECT_EQ(delivered.load(), 1);
    EXPECT_EQ(batcher.deadlineFlushes(), 1u);
    EXPECT_EQ(batcher.sizeFlushes(), 0u);
}

TEST(Batcher, ManualFlushesCountedSeparately)
{
    std::atomic<int> flushes{0};
    serve::Batcher batcher(
        64, std::chrono::seconds(10), std::chrono::seconds(10),
        [&flushes](const serve::QueueKey&,
                   std::vector<serve::Request>) {
            flushes.fetch_add(1);
        });
    batcher.enqueue(spmvKey("a"), plainRequest());
    batcher.enqueue(spmvKey("b"), plainRequest());
    batcher.enqueue(serve::QueueKey{"a", serve::OpClass::kSpadd},
                    plainRequest());
    EXPECT_EQ(flushes.load(), 0);
    batcher.flushAll();
    EXPECT_EQ(flushes.load(), 3); // one per non-empty queue
    EXPECT_EQ(batcher.manualFlushes(), 3u);
    EXPECT_EQ(batcher.sizeFlushes(), 0u);
    EXPECT_EQ(batcher.deadlineFlushes(), 0u);
    batcher.flushAll(); // queues now empty: nothing more counted
    EXPECT_EQ(batcher.manualFlushes(), 3u);
}

TEST(Batcher, OpClassesDoNotShareQueues)
{
    // Same matrix, different op classes: max_batch applies per
    // queue, so two requests never coalesce across classes.
    std::mutex mu;
    std::vector<serve::OpClass> flushed;
    serve::Batcher batcher(
        2, std::chrono::seconds(10), std::chrono::seconds(10),
        [&](const serve::QueueKey& key, std::vector<serve::Request>) {
            std::lock_guard<std::mutex> lock(mu);
            flushed.push_back(key.op);
        });
    batcher.enqueue(spmvKey("m"), plainRequest());
    batcher.enqueue(serve::QueueKey{"m", serve::OpClass::kSpmm},
                    plainRequest());
    EXPECT_TRUE(flushed.empty()); // neither queue reached size 2
    batcher.enqueue(spmvKey("m"), plainRequest());
    {
        std::lock_guard<std::mutex> lock(mu);
        ASSERT_EQ(flushed.size(), 1u); // the SpMV queue, by size
        EXPECT_EQ(flushed[0], serve::OpClass::kSpmv);
    }
    EXPECT_EQ(batcher.sizeFlushes(), 1u);
    batcher.flushAll(); // the parked SpMM request
    EXPECT_EQ(batcher.manualFlushes(), 1u);
}

TEST(Batcher, HighPriorityFlushesInlineAndDragsItsQueue)
{
    std::mutex mu;
    std::vector<std::size_t> batch_sizes;
    serve::Batcher batcher(
        64, std::chrono::seconds(10), std::chrono::seconds(10),
        [&](const serve::QueueKey&, std::vector<serve::Request> b) {
            std::lock_guard<std::mutex> lock(mu);
            batch_sizes.push_back(b.size());
        });
    batcher.enqueue(spmvKey("m"),
                    plainRequest(serve::Priority::kBatch));
    batcher.enqueue(spmvKey("m"),
                    plainRequest(serve::Priority::kBatch));
    EXPECT_TRUE(batch_sizes.empty());
    // The kHigh arrival flushes the whole queue inline — the two
    // parked kBatch requests ride along with it.
    batcher.enqueue(spmvKey("m"),
                    plainRequest(serve::Priority::kHigh));
    {
        std::lock_guard<std::mutex> lock(mu);
        ASSERT_EQ(batch_sizes.size(), 1u);
        EXPECT_EQ(batch_sizes[0], 3u);
    }
    EXPECT_EQ(batcher.priorityFlushes(), 1u);
    EXPECT_EQ(batcher.sizeFlushes(), 0u);
}

TEST(Batcher, FlushAllOrdersQueuesByPriority)
{
    std::mutex mu;
    std::vector<std::string> order;
    serve::Batcher batcher(
        64, std::chrono::seconds(10), std::chrono::seconds(10),
        [&](const serve::QueueKey& key, std::vector<serve::Request>) {
            std::lock_guard<std::mutex> lock(mu);
            order.push_back(key.matrix);
        });
    batcher.enqueue(spmvKey("bulk"),
                    plainRequest(serve::Priority::kBatch));
    batcher.enqueue(spmvKey("interactive"),
                    plainRequest(serve::Priority::kNormal));
    batcher.flushAll();
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "interactive"); // kNormal ahead of kBatch
    EXPECT_EQ(order[1], "bulk");
}

TEST(ServeRegistry, SelectsOnceAndCachesConversions)
{
    serve::MatrixRegistry registry;
    const eng::Format chosen = registry.put(
        "clustered", wl::genWithLocality(256, 256, 4000, 8, 0.9, 5));
    EXPECT_EQ(chosen, eng::Format::kSmash);
    EXPECT_EQ(registry.format("clustered"), eng::Format::kSmash);
    EXPECT_EQ(registry.conversions("clustered"), 0u); // lazy

    const serve::MatrixRegistry::EncodingPtr first =
        registry.encoded("clustered");
    EXPECT_EQ(registry.conversions("clustered"), 1u);
    const serve::MatrixRegistry::EncodingPtr second =
        registry.encoded("clustered");
    EXPECT_EQ(first.get(), second.get()); // cached, not reconverted
    EXPECT_EQ(registry.conversions("clustered"), 1u);

    registry.encodedAs("clustered", eng::Format::kCsr);
    EXPECT_EQ(registry.conversions("clustered"), 2u);
    registry.encodedAs("clustered", eng::Format::kCsr);
    EXPECT_EQ(registry.conversions("clustered"), 2u);

    const serve::MatrixInfo info = registry.info("clustered");
    EXPECT_EQ(info.nnz, registry.encoded("clustered")->nnz());
    EXPECT_EQ(info.cached.size(), 2u);
}

TEST(ServeRegistry, RejectsDuplicatesAndUnknownNames)
{
    serve::MatrixRegistry registry;
    registry.put("a", wl::genUniform(16, 16, 40, 1));
    EXPECT_THROW(registry.put("a", wl::genUniform(16, 16, 40, 2)),
                 FatalError);
    EXPECT_THROW(registry.encoded("missing"), FatalError);
    EXPECT_FALSE(registry.contains("missing"));
}

/** Oracle y = A x for one registered matrix. */
std::vector<Value>
serialOracle(serve::MatrixRegistry& registry, const std::string& name,
             const std::vector<Value>& x)
{
    sim::NativeExec e;
    std::vector<Value> y(
        static_cast<std::size_t>(registry.rows(name)), Value(0));
    eng::spmv(registry.encoded(name)->ref(), x, y, e);
    return y;
}

TEST(ServeSession, BatchedEqualsIndividualSpmv)
{
    serve::MatrixRegistry registry;
    registry.put("m", wl::genClustered(200, 200, 3000, 6, 41));
    const Index n_req = 40;

    for (int threads : threadCounts()) {
        for (serve::ComputeExec compute :
             {serve::ComputeExec::kSerial,
              serve::ComputeExec::kParallel}) {
            serve::SessionOptions opts;
            opts.threads = threads;
            opts.maxBatch = 8;
            opts.compute = compute;
            serve::Session session(registry, opts);

            std::vector<std::future<
                serve::Result<std::vector<Value>>>> futures;
            for (Index r = 0; r < n_req; ++r)
                futures.push_back(session.submit(serve::SpmvRequest{
                    "m", rampVector(200, r % 6), {}}));
            for (Index r = 0; r < n_req; ++r) {
                serve::Result<std::vector<Value>> result =
                    futures[static_cast<std::size_t>(r)].get();
                ASSERT_TRUE(result.ok()) << result.status().toString();
                const std::vector<Value>& got = result.value();
                const std::vector<Value> want =
                    serialOracle(registry, "m", rampVector(200, r % 6));
                ASSERT_EQ(got.size(), want.size());
                for (std::size_t i = 0; i < got.size(); ++i)
                    ASSERT_NEAR(got[i], want[i], 1e-12)
                        << "threads " << threads << " request " << r;
            }
            session.drain();
            EXPECT_EQ(session.stats().completed.load(), 40u);
            EXPECT_EQ(session.stats().failed.load(), 0u);
            EXPECT_GT(session.stats().batches.load(), 0u);
        }
    }
}

TEST(ServeSession, SecondSubmitDoesNotReconvert)
{
    serve::MatrixRegistry registry;
    registry.put("cached", wl::genWithLocality(128, 128, 2000, 8, 0.9, 3));
    serve::SessionOptions opts;
    opts.threads = threadCounts().front();
    serve::Session session(registry, opts);

    ASSERT_TRUE(session
                    .submit(serve::SpmvRequest{"cached",
                                               rampVector(128, 0)})
                    .get()
                    .ok());
    EXPECT_EQ(registry.conversions("cached"), 1u);
    ASSERT_TRUE(session
                    .submit(serve::SpmvRequest{"cached",
                                               rampVector(128, 1)})
                    .get()
                    .ok());
    EXPECT_EQ(registry.conversions("cached"), 1u);
}

TEST(ServeSession, CompletesUnderOutOfOrderArrival)
{
    // Requests against several matrices, submitted from several
    // client threads at mixed priorities: stage-1 scheduling
    // scrambles arrival order at the batcher, conversions
    // interleave with computes, and some batches flush by size
    // while others wait out a deadline or ride a kHigh flush.
    serve::MatrixRegistry registry;
    registry.put("alpha", wl::genClustered(160, 160, 2400, 6, 51));
    registry.put("beta", wl::genPowerLaw(120, 120, 1500, 1.1, 52));
    registry.put("gamma", wl::genPoisson2d(12, 12)); // 144x144, DIA

    const serve::Priority kPrio[] = {serve::Priority::kHigh,
                                     serve::Priority::kNormal,
                                     serve::Priority::kBatch};
    for (int threads : threadCounts()) {
        serve::SessionOptions opts;
        opts.threads = threads;
        opts.maxBatch = 4;
        opts.maxDelay = std::chrono::microseconds(100);
        serve::Session session(registry, opts);

        const char* names[] = {"alpha", "beta", "gamma"};
        const Index dims[] = {160, 120, 144};
        struct Pending
        {
            std::string name;
            Index kind;
            std::future<serve::Result<std::vector<Value>>> future;
        };
        std::vector<Pending> pending(45);
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> clients;
        for (int c = 0; c < 3; ++c)
            clients.emplace_back([&] {
                for (;;) {
                    const std::size_t slot = next.fetch_add(1);
                    if (slot >= pending.size())
                        return;
                    const std::size_t which = slot % 3;
                    const auto kind = static_cast<Index>(slot % 5);
                    pending[slot].name = names[which];
                    pending[slot].kind = kind;
                    serve::RequestOptions ropts;
                    ropts.priority = kPrio[slot % 3];
                    pending[slot].future =
                        session.submit(serve::SpmvRequest{
                            names[which],
                            rampVector(dims[which], kind), ropts});
                }
            });
        for (std::thread& c : clients)
            c.join();

        for (Pending& p : pending) {
            serve::Result<std::vector<Value>> result = p.future.get();
            ASSERT_TRUE(result.ok()) << result.status().toString();
            const std::vector<Value>& got = result.value();
            const std::vector<Value> want = serialOracle(
                registry, p.name,
                rampVector(registry.cols(p.name), p.kind));
            ASSERT_EQ(got.size(), want.size());
            for (std::size_t i = 0; i < got.size(); ++i)
                ASSERT_NEAR(got[i], want[i], 1e-12)
                    << p.name << " threads " << threads;
        }
        session.drain();
        EXPECT_EQ(session.stats().completed.load(), 45u);
        EXPECT_EQ(registry.conversions("alpha"), 1u);
        EXPECT_EQ(registry.conversions("beta"), 1u);
        EXPECT_EQ(registry.conversions("gamma"), 1u);
        // Every priority class saw traffic and latency accounting.
        for (serve::Priority p : kPrio)
            EXPECT_EQ(session.stats().latency(p).count(), 15u)
                << serve::toString(p);
    }
}

TEST(TypedApi, ValidationFailuresAreReadyResults)
{
    serve::MatrixRegistry registry;
    registry.put("m", wl::genUniform(32, 32, 100, 7));
    registry.put("wide", wl::genUniform(32, 48, 100, 8));
    serve::Session session(registry, {});

    auto nf = session.submit(serve::SpmvRequest{"nope",
                                                rampVector(32, 0)});
    ASSERT_EQ(nf.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(nf.get().status().code(), serve::StatusCode::kNotFound);

    auto bad_len = session.submit(serve::SpmvRequest{
        "m", rampVector(31, 0)});
    EXPECT_EQ(bad_len.get().status().code(),
              serve::StatusCode::kInvalidOperand);

    auto bad_block = session.submit(serve::SpmmRequest{
        "m", fmt::DenseMatrix(31, 2)});
    EXPECT_EQ(bad_block.get().status().code(),
              serve::StatusCode::kInvalidOperand);
    auto empty_block = session.submit(serve::SpmmRequest{
        "m", fmt::DenseMatrix(32, 0)});
    EXPECT_EQ(empty_block.get().status().code(),
              serve::StatusCode::kInvalidOperand);

    auto bad_other = session.submit(serve::SpaddRequest{"m", "nope"});
    EXPECT_EQ(bad_other.get().status().code(),
              serve::StatusCode::kNotFound);
    auto bad_shape = session.submit(serve::SpaddRequest{"m", "wide"});
    EXPECT_EQ(bad_shape.get().status().code(),
              serve::StatusCode::kInvalidOperand);

    // Nothing above entered the pipeline.
    EXPECT_EQ(session.stats().submitted.load(), 0u);
}

TEST(TypedApi, CloseResolvesLaterSubmitsAsShuttingDown)
{
    serve::MatrixRegistry registry;
    registry.put("m", wl::genUniform(32, 32, 100, 7));
    serve::Session session(registry, {});
    ASSERT_TRUE(
        session.submit(serve::SpmvRequest{"m", rampVector(32, 0)})
            .get()
            .ok());
    session.close();
    auto f = session.submit(serve::SpmvRequest{"m", rampVector(32, 1)});
    EXPECT_EQ(f.get().status().code(),
              serve::StatusCode::kShuttingDown);
}

TEST(TypedApi, LegacyShimStillServesAndThrowsOnBadRequests)
{
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    serve::MatrixRegistry registry;
    registry.put("m", wl::genClustered(64, 64, 500, 4, 13));
    serve::Session session(registry, {});
    std::future<std::vector<Value>> f =
        session.submit("m", rampVector(64, 2));
    const std::vector<Value> got = f.get();
    const std::vector<Value> want =
        serialOracle(registry, "m", rampVector(64, 2));
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_NEAR(got[i], want[i], 1e-12);
    // Statuses surface as FatalError at get(), not at submit().
    std::future<std::vector<Value>> bad =
        session.submit("nope", rampVector(64, 0));
    EXPECT_THROW(bad.get(), FatalError);
#pragma GCC diagnostic pop
}

TEST(ServeSpmm, ServedBlocksBitIdenticalToDirectSpmm)
{
    // SpMM requests served through the batcher (several blocks
    // coalesced into one wide traversal) must be bit-identical to
    // the direct eng::spmm/eng::spmmBatch result: dyadic values
    // make every summation order exact, and per-column arithmetic
    // is order-independent across the concatenation.
    const fmt::CooMatrix coo = dyadicMatrix(96, 96, 6);
    const fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    for (int threads : threadCounts()) {
        serve::MatrixRegistry registry;
        registry.put("m", coo, eng::Format::kCsr);
        serve::SessionOptions opts;
        opts.threads = threads;
        opts.maxBatch = 16;
        opts.maxDelay = std::chrono::microseconds(500);
        serve::Session session(registry, opts);

        const Index widths[] = {1, 3, 5, 2};
        std::vector<std::future<serve::Result<fmt::DenseMatrix>>>
            futures;
        for (Index r = 0; r < 4; ++r)
            futures.push_back(session.submit(serve::SpmmRequest{
                "m", dyadicBlock(96, widths[r], r)}));
        sim::NativeExec e;
        for (Index r = 0; r < 4; ++r) {
            serve::Result<fmt::DenseMatrix> result =
                futures[static_cast<std::size_t>(r)].get();
            ASSERT_TRUE(result.ok()) << result.status().toString();
            const fmt::DenseMatrix& got = result.value();
            ASSERT_EQ(got.rows(), 96);
            ASSERT_EQ(got.cols(), widths[r]);
            const fmt::DenseMatrix b = dyadicBlock(96, widths[r], r);
            fmt::DenseMatrix want(96, widths[r]);
            eng::spmmBatch(csr, b, want, e);
            for (Index i = 0; i < 96; ++i)
                for (Index c = 0; c < widths[r]; ++c)
                    ASSERT_EQ(got.at(i, c), want.at(i, c))
                        << "block " << r << " threads " << threads;
            // Cross-check one block against the sparse-B route.
            if (r == 1) {
                fmt::CooMatrix b_coo(96, widths[r]);
                for (Index j = 0; j < 96; ++j)
                    for (Index c = 0; c < widths[r]; ++c)
                        b_coo.add(j, c, b.at(j, c));
                b_coo.canonicalize();
                fmt::DenseMatrix c_spmm(96, widths[r]);
                eng::spmm(csr, fmt::CscMatrix::fromCoo(b_coo), c_spmm,
                          e);
                for (Index i = 0; i < 96; ++i)
                    for (Index c = 0; c < widths[r]; ++c)
                        ASSERT_EQ(got.at(i, c), c_spmm.at(i, c));
            }
        }
        session.drain();
        EXPECT_EQ(session.stats().failed.load(), 0u);
    }
}

TEST(ServeSpadd, MatchesDirectSpadd)
{
    serve::MatrixRegistry registry;
    registry.put("a", dyadicMatrix(60, 60, 5));
    registry.put("b", dyadicMatrix(60, 60, 4));
    for (int threads : threadCounts()) {
        serve::SessionOptions opts;
        opts.threads = threads;
        serve::Session session(registry, opts);
        serve::Result<fmt::CooMatrix> result =
            session.submit(serve::SpaddRequest{"a", "b"}).get();
        ASSERT_TRUE(result.ok()) << result.status().toString();

        sim::NativeExec e;
        const eng::SparseMatrixAny want = eng::spadd(
            registry.encodedAs("a", eng::Format::kCsr)->ref(),
            registry.encodedAs("b", eng::Format::kCsr)->ref(), e);
        const fmt::CooMatrix& wc = want.as<fmt::CooMatrix>();
        const fmt::CooMatrix& got = result.value();
        ASSERT_EQ(got.nnz(), wc.nnz());
        for (std::size_t i = 0; i < got.entries().size(); ++i) {
            EXPECT_EQ(got.entries()[i].row, wc.entries()[i].row);
            EXPECT_EQ(got.entries()[i].col, wc.entries()[i].col);
            EXPECT_EQ(got.entries()[i].value, wc.entries()[i].value);
        }
    }
}

TEST(Admission, FailFastSaturationReturnsOverloaded)
{
    serve::MatrixRegistry registry;
    registry.put("m", wl::genClustered(128, 128, 1500, 5, 61));
    for (int threads : threadCounts()) {
        serve::SessionOptions opts;
        opts.threads = threads;
        opts.maxBatch = 64;               // nothing flushes by size
        opts.maxDelay = std::chrono::seconds(10); // ... or deadline
        opts.batchDelay = std::chrono::seconds(10);
        opts.maxInflightPerMatrix = 4;
        serve::Session session(registry, opts);

        // kBatch priority parks the admitted requests in the
        // batcher; with the limit at 4, submits 5..10 must be
        // denied — deterministically, since nothing can complete
        // until drain() flushes.
        std::vector<std::future<serve::Result<std::vector<Value>>>>
            futures;
        serve::RequestOptions ropts;
        ropts.priority = serve::Priority::kBatch;
        ropts.admission = serve::Admission::kFailFast;
        for (Index r = 0; r < 10; ++r)
            futures.push_back(session.submit(serve::SpmvRequest{
                "m", rampVector(128, r % 4), ropts}));

        // Classify before any drain: rejected futures are ready
        // immediately, admitted ones are parked (nothing can flush
        // them yet).
        std::vector<std::size_t> rejected, admitted;
        for (std::size_t r = 0; r < 10; ++r) {
            if (futures[r].wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready)
                rejected.push_back(r);
            else
                admitted.push_back(r);
        }
        for (std::size_t r : rejected) {
            serve::Result<std::vector<Value>> result =
                futures[r].get();
            ASSERT_FALSE(result.ok());
            EXPECT_EQ(result.status().code(),
                      serve::StatusCode::kOverloaded);
        }
        session.drain(); // flush the parked batch
        for (std::size_t r : admitted)
            ASSERT_TRUE(futures[r].get().ok());
        EXPECT_EQ(admitted.size(), 4u);
        EXPECT_EQ(rejected.size(), 6u);
        EXPECT_EQ(session.overloadRejects(), 6u);
        session.drain();
        EXPECT_EQ(session.stats().completed.load(), 4u);
        EXPECT_EQ(session.stats().failed.load(), 0u);
        EXPECT_GE(session.batcher().manualFlushes(), 1u);
    }
}

TEST(Admission, BlockingRequestsEventuallyComplete)
{
    serve::MatrixRegistry registry;
    registry.put("m", wl::genClustered(96, 96, 1000, 5, 62));
    for (int threads : threadCounts()) {
        serve::SessionOptions opts;
        opts.threads = threads;
        opts.maxBatch = 2;
        opts.maxDelay = std::chrono::microseconds(500);
        opts.maxInflightPerMatrix = 2;
        serve::Session session(registry, opts);

        // 3 clients x 4 requests against a 2-slot gate: submits
        // block until earlier requests deliver, and every one
        // completes — back-pressure, not rejection.
        constexpr int kClients = 3;
        constexpr int kPerClient = 4;
        std::atomic<int> ok{0};
        std::vector<std::thread> clients;
        for (int c = 0; c < kClients; ++c)
            clients.emplace_back([&, c] {
                for (int i = 0; i < kPerClient; ++i) {
                    serve::RequestOptions ropts;
                    ropts.admission = serve::Admission::kBlock;
                    auto f = session.submit(serve::SpmvRequest{
                        "m",
                        rampVector(96, static_cast<Index>(c + i)),
                        ropts});
                    if (f.get().ok())
                        ok.fetch_add(1);
                }
            });
        for (std::thread& c : clients)
            c.join();
        EXPECT_EQ(ok.load(), kClients * kPerClient);
        EXPECT_EQ(session.overloadRejects(), 0u);
        session.drain();
        EXPECT_EQ(session.stats().completed.load(),
                  static_cast<std::uint64_t>(kClients * kPerClient));
    }
}

TEST(Priorities, HighFlushesAheadOfBatch)
{
    serve::MatrixRegistry registry;
    registry.put("bulk", wl::genClustered(96, 96, 1000, 5, 71));
    registry.put("hot", wl::genClustered(96, 96, 1000, 5, 72));
    for (int threads : threadCounts()) {
        serve::SessionOptions opts;
        opts.threads = threads;
        opts.maxBatch = 64;
        opts.maxDelay = std::chrono::seconds(10);
        opts.batchDelay = std::chrono::seconds(10);
        serve::Session session(registry, opts);

        serve::RequestOptions batchOpts;
        batchOpts.priority = serve::Priority::kBatch;
        auto bulk = session.submit(serve::SpmvRequest{
            "bulk", rampVector(96, 0), batchOpts});

        serve::RequestOptions highOpts;
        highOpts.priority = serve::Priority::kHigh;
        auto hot = session.submit(serve::SpmvRequest{
            "hot", rampVector(96, 1), highOpts});

        // The kHigh request completes promptly (its arrival flushes
        // its queue inline); the kBatch request is still parked —
        // its flush cap is 10 s away.
        ASSERT_EQ(hot.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready);
        ASSERT_TRUE(hot.get().ok());
        EXPECT_EQ(bulk.wait_for(std::chrono::seconds(0)),
                  std::future_status::timeout)
            << "kBatch request flushed ahead of its cap";

        // A kHigh arrival on the *same* queue drags parked kBatch
        // work along with it.
        auto parked = session.submit(serve::SpmvRequest{
            "hot", rampVector(96, 2), batchOpts});
        auto urgent = session.submit(serve::SpmvRequest{
            "hot", rampVector(96, 3), highOpts});
        ASSERT_EQ(parked.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready);
        ASSERT_TRUE(parked.get().ok());
        ASSERT_TRUE(urgent.get().ok());
        EXPECT_GE(session.batcher().priorityFlushes(), 2u);

        session.drain(); // releases the parked "bulk" request
        ASSERT_TRUE(bulk.get().ok());
    }
}

TEST(Deadlines, ExpiredRequestResolvesDeadlineExceeded)
{
    serve::MatrixRegistry registry;
    registry.put("m", wl::genClustered(64, 64, 600, 4, 81));
    serve::SessionOptions opts;
    opts.threads = threadCounts().front();
    opts.maxBatch = 64;
    opts.maxDelay = std::chrono::seconds(10);
    opts.batchDelay = std::chrono::seconds(10);
    serve::Session session(registry, opts);

    // A 1 ms deadline undercuts the 10 s flush caps: the deadline
    // tightens the queue's flush time, the timer surfaces the
    // request right after it expires, and compute sheds it.
    serve::RequestOptions ropts;
    ropts.priority = serve::Priority::kBatch;
    ropts.deadline = std::chrono::milliseconds(1);
    auto f = session.submit(serve::SpmvRequest{
        "m", rampVector(64, 0), ropts});
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    EXPECT_EQ(f.get().status().code(),
              serve::StatusCode::kDeadlineExceeded);
    session.drain();
    EXPECT_EQ(session.stats().expired.load(), 1u);
    EXPECT_EQ(session.stats().completed.load(), 0u);
}

TEST(ServeSession, RejectsBadOptionsWithoutTerminating)
{
    serve::MatrixRegistry registry;
    serve::SessionOptions opts;
    opts.maxBatch = 0;
    // Must throw (catchable), not std::terminate on a joinable
    // timer thread during constructor unwinding.
    EXPECT_THROW(serve::Session session(registry, opts), FatalError);
    serve::SessionOptions neg;
    neg.maxInflight = -1;
    EXPECT_THROW(serve::Session session(registry, neg), FatalError);
}

} // namespace
} // namespace smash
