/**
 * @file
 * Tests for the serving subsystem and the engine growth beneath it:
 * batched SpMV against per-request dispatch (within 1e-12), the
 * parallel SpMM/SpAdd drivers, thread-pool shutdown semantics, the
 * matrix registry's conversion caching, and pipeline completion
 * under out-of-order request arrival.
 *
 * Thread counts: SMASH_SERVE_THREADS pins one count (the ctest
 * variants run 1, 2, and 8); unset, every count is covered.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

#include "common/parallel_exec.hh"
#include "engine/dispatch.hh"
#include "formats/convert.hh"
#include "kernels/reference.hh"
#include "serve/session.hh"
#include "workloads/matrix_gen.hh"

namespace smash
{
namespace
{

const eng::Format kAllFormats[] = {
    eng::Format::kCoo,  eng::Format::kCsr,   eng::Format::kCsc,
    eng::Format::kBcsr, eng::Format::kEll,   eng::Format::kDia,
    eng::Format::kDense, eng::Format::kSmash,
};

std::vector<int>
threadCounts()
{
    if (const char* env = std::getenv("SMASH_SERVE_THREADS"))
        return {std::atoi(env)};
    return {1, 2, 8};
}

std::vector<Value>
rampVector(Index n, Index kind)
{
    std::vector<Value> x(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i)
        x[static_cast<std::size_t>(i)] =
            Value(1) + Value((i * 3 + kind) % 7) * Value(0.25);
    return x;
}

/** X block with column r = rampVector(rows, r), zero-padded. */
fmt::DenseMatrix
operandBlock(Index padded_rows, Index logical_rows, Index nrhs)
{
    fmt::DenseMatrix x(padded_rows, nrhs);
    for (Index r = 0; r < nrhs; ++r) {
        const std::vector<Value> xr = rampVector(logical_rows, r);
        for (Index j = 0; j < logical_rows; ++j)
            x.at(j, r) = xr[static_cast<std::size_t>(j)];
    }
    return x;
}

/** Per-column reference: N independent single-RHS dispatches. */
template <typename E>
fmt::DenseMatrix
perRhsReference(const eng::MatrixRef& m, Index logical_rows,
                Index nrhs, E& e)
{
    fmt::DenseMatrix y(m.rows(), nrhs);
    for (Index r = 0; r < nrhs; ++r) {
        std::vector<Value> yr(static_cast<std::size_t>(m.rows()),
                              Value(0));
        eng::spmv(m, rampVector(logical_rows, r), yr, e);
        for (Index i = 0; i < m.rows(); ++i)
            y.at(i, r) = yr[static_cast<std::size_t>(i)];
    }
    return y;
}

TEST(SpmvBatch, MatchesIndividualSpmvAcrossFormats)
{
    const fmt::CooMatrix coo = wl::genClustered(96, 80, 900, 5, 17);
    const Index nrhs = 7;
    sim::NativeExec e;

    for (eng::Format f : kAllFormats) {
        eng::SparseMatrixAny m = eng::SparseMatrixAny::fromCoo(coo, f);
        fmt::DenseMatrix x =
            operandBlock(m.xLength(), coo.cols(), nrhs);
        fmt::DenseMatrix y(coo.rows(), nrhs);
        eng::spmvBatch(m.ref(), x, y, e);
        const fmt::DenseMatrix ref =
            perRhsReference(m.ref(), coo.cols(), nrhs, e);
        for (Index i = 0; i < coo.rows(); ++i)
            for (Index r = 0; r < nrhs; ++r)
                EXPECT_NEAR(y.at(i, r), ref.at(i, r), 1e-12)
                    << eng::toString(f) << " row " << i << " rhs " << r;
    }
}

TEST(SpmvBatch, AccumulatesIntoY)
{
    const fmt::CooMatrix coo = wl::genClustered(40, 40, 300, 4, 3);
    const fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    sim::NativeExec e;
    fmt::DenseMatrix x = operandBlock(40, 40, 3);
    fmt::DenseMatrix y1(40, 3);
    eng::spmvBatch(csr, x, y1, e);
    // Y := Y + A X semantics: a second call doubles the result.
    fmt::DenseMatrix y2(40, 3);
    eng::spmvBatch(csr, x, y2, e);
    eng::spmvBatch(csr, x, y2, e);
    for (Index i = 0; i < 40; ++i)
        for (Index r = 0; r < 3; ++r)
            EXPECT_NEAR(y2.at(i, r), 2 * y1.at(i, r), 1e-12);
}

TEST(SpmvBatch, ParallelMatchesSerialAtEveryThreadCount)
{
    const fmt::CooMatrix coo = wl::genPowerLaw(150, 150, 1800, 1.0, 32);
    const Index nrhs = 5;
    sim::NativeExec serial;

    for (eng::Format f : kAllFormats) {
        eng::SparseMatrixAny m = eng::SparseMatrixAny::fromCoo(coo, f);
        fmt::DenseMatrix x =
            operandBlock(m.xLength(), coo.cols(), nrhs);
        fmt::DenseMatrix y_serial(coo.rows(), nrhs);
        eng::spmvBatch(m.ref(), x, y_serial, serial);
        for (int threads : threadCounts()) {
            exec::ParallelExec pe(threads);
            fmt::DenseMatrix y(coo.rows(), nrhs);
            eng::spmvBatch(m.ref(), x, y, pe);
            for (Index i = 0; i < coo.rows(); ++i)
                for (Index r = 0; r < nrhs; ++r)
                    EXPECT_NEAR(y.at(i, r), y_serial.at(i, r), 1e-12)
                        << eng::toString(f) << " threads " << threads;
        }
    }
}

TEST(SpmvBatch, SimulatedDispatchBillsTheMachine)
{
    const fmt::CooMatrix coo = wl::genClustered(48, 48, 400, 4, 9);
    sim::NativeExec native;
    for (eng::Format f : {eng::Format::kCsr, eng::Format::kSmash}) {
        eng::SparseMatrixAny m = eng::SparseMatrixAny::fromCoo(coo, f);
        fmt::DenseMatrix x = operandBlock(m.xLength(), 48, 4);
        fmt::DenseMatrix ref(48, 4);
        eng::spmvBatch(m.ref(), x, ref, native);

        sim::Machine machine;
        sim::SimExec e(machine);
        fmt::DenseMatrix y(48, 4);
        eng::spmvBatch(m.ref(), x, y, e);
        EXPECT_GT(machine.core().instructions(), 0u);
        EXPECT_TRUE(y.approxEquals(ref, 1e-12)) << eng::toString(f);
    }
}

TEST(ParallelDrivers, SpmmTilesMatchSerial)
{
    const fmt::CooMatrix a_coo = wl::genClustered(90, 70, 1100, 4, 21);
    const fmt::CooMatrix b_coo = wl::genClustered(70, 60, 800, 4, 22);
    const fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(a_coo);
    const fmt::CscMatrix b = fmt::CscMatrix::fromCoo(b_coo);

    sim::NativeExec serial;
    fmt::DenseMatrix c_serial(a.rows(), b.cols());
    eng::spmm(a, b, c_serial, serial);

    for (int threads : threadCounts()) {
        exec::ParallelExec pe(threads);
        fmt::DenseMatrix c(a.rows(), b.cols());
        eng::spmm(a, b, c, pe);
        EXPECT_TRUE(c.approxEquals(c_serial, 1e-12))
            << "threads " << threads;
    }
}

TEST(ParallelDrivers, SpaddMatchesSerial)
{
    const fmt::CooMatrix a_coo = wl::genClustered(80, 80, 900, 4, 31);
    const fmt::CooMatrix b_coo = wl::genClustered(80, 80, 900, 4, 32);
    sim::NativeExec serial;
    const std::vector<Value> x = rampVector(80, 1);

    for (eng::Format f :
         {eng::Format::kCsr, eng::Format::kDense, eng::Format::kSmash}) {
        eng::SparseMatrixAny a = eng::SparseMatrixAny::fromCoo(a_coo, f);
        eng::SparseMatrixAny b = eng::SparseMatrixAny::fromCoo(b_coo, f);
        eng::SparseMatrixAny c_serial = eng::spadd(a, b, serial);
        std::vector<Value> y_serial(80, Value(0));
        eng::spmv(c_serial, x, y_serial, serial);

        for (int threads : threadCounts()) {
            exec::ParallelExec pe(threads);
            eng::SparseMatrixAny c = eng::spadd(a, b, pe);
            std::vector<Value> y(80, Value(0));
            eng::spmv(c, x, y, serial);
            for (std::size_t i = 0; i < y.size(); ++i)
                EXPECT_NEAR(y[i], y_serial[i], 1e-12)
                    << eng::toString(f) << " threads " << threads;
        }
    }
}

TEST(ThreadPoolShutdown, RejectsSubmissionAfterShutdown)
{
    exec::ThreadPool pool(2);
    pool.parallelFor(0, 4, 1, [](Index, Index) {});
    pool.shutdown();
    EXPECT_THROW(pool.parallelFor(0, 4, 1, [](Index, Index) {}),
                 FatalError);
    EXPECT_THROW(pool.post([] {}), FatalError);
    pool.shutdown(); // idempotent
}

TEST(ThreadPoolShutdown, TryPostRunsBeforeAndRejectsAfterShutdown)
{
    std::atomic<int> ran{0};
    exec::ThreadPool pool(2);
    // Accepted submissions run even when shutdown follows at once
    // (the drain-before-join contract).
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(pool.tryPost([&ran] { ran.fetch_add(1); }));
    pool.shutdown();
    EXPECT_EQ(ran.load(), 8);
    // After shutdown the gate reports rejection instead of
    // throwing — the caller (a drift re-encode racing a session
    // teardown) falls back to running inline.
    EXPECT_FALSE(pool.tryPost([&ran] { ran.fetch_add(1); }));
    EXPECT_EQ(ran.load(), 8);
}

TEST(Batcher, FlushAllWithZeroPendingInvokesNothing)
{
    std::atomic<int> flushes{0};
    {
        serve::Batcher batcher(
            4, std::chrono::microseconds(50),
            [&flushes](const std::string&, std::vector<serve::Request>) {
                flushes.fetch_add(1);
            });
        batcher.flushAll(); // nothing queued: no callback
        batcher.flushAll(); // idempotent on empty queues
        EXPECT_EQ(flushes.load(), 0);
        EXPECT_EQ(batcher.sizeFlushes(), 0u);
        EXPECT_EQ(batcher.deadlineFlushes(), 0u);
    } // destructor flushes nothing either
    EXPECT_EQ(flushes.load(), 0);
}

TEST(Batcher, DeadlineShorterThanOnePollTickStillFlushes)
{
    // A 1 microsecond deadline is far below any scheduler tick: by
    // the time the timer thread evaluates it, it has already
    // passed. The partial batch must flush promptly anyway (via
    // the timeout path), not hang until max_batch fills.
    std::atomic<int> delivered{0};
    serve::Batcher batcher(
        64, std::chrono::microseconds(1),
        [&delivered](const std::string&,
                     std::vector<serve::Request> batch) {
            delivered.fetch_add(static_cast<int>(batch.size()));
        });
    batcher.enqueue("m", serve::Request{});
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::seconds(5);
    while (delivered.load() < 1 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    EXPECT_EQ(delivered.load(), 1);
    EXPECT_EQ(batcher.deadlineFlushes(), 1u);
    EXPECT_EQ(batcher.sizeFlushes(), 0u);
}

TEST(ThreadPoolShutdown, DrainsPostedTasksBeforeJoining)
{
    std::atomic<int> ran{0};
    {
        exec::ThreadPool pool(2);
        for (int i = 0; i < 200; ++i)
            pool.post([&ran] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(20));
                ran.fetch_add(1);
            });
        pool.shutdown(); // must run all 200, not strand them
        EXPECT_EQ(ran.load(), 200);
    }
    EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolShutdown, NestedParallelForProgresses)
{
    // A worker task that itself calls parallelFor must not
    // deadlock, even when it is the pool's only worker: the
    // blocked caller helps drain the queues.
    for (int threads : {1, 4}) {
        exec::ThreadPool pool(threads);
        std::atomic<long> sum{0};
        pool.parallelFor(0, 8, 1, [&](Index ob, Index oe) {
            for (Index o = ob; o < oe; ++o)
                pool.parallelFor(o * 100, (o + 1) * 100, 1,
                                 [&](Index b, Index e) {
                    for (Index i = b; i < e; ++i)
                        sum.fetch_add(i);
                });
        });
        EXPECT_EQ(sum.load(), 800L * 799 / 2) << threads << " threads";
    }
}

TEST(ServeRegistry, SelectsOnceAndCachesConversions)
{
    serve::MatrixRegistry registry;
    const eng::Format chosen = registry.put(
        "clustered", wl::genWithLocality(256, 256, 4000, 8, 0.9, 5));
    EXPECT_EQ(chosen, eng::Format::kSmash);
    EXPECT_EQ(registry.format("clustered"), eng::Format::kSmash);
    EXPECT_EQ(registry.conversions("clustered"), 0u); // lazy

    const serve::MatrixRegistry::EncodingPtr first =
        registry.encoded("clustered");
    EXPECT_EQ(registry.conversions("clustered"), 1u);
    const serve::MatrixRegistry::EncodingPtr second =
        registry.encoded("clustered");
    EXPECT_EQ(first.get(), second.get()); // cached, not reconverted
    EXPECT_EQ(registry.conversions("clustered"), 1u);

    registry.encodedAs("clustered", eng::Format::kCsr);
    EXPECT_EQ(registry.conversions("clustered"), 2u);
    registry.encodedAs("clustered", eng::Format::kCsr);
    EXPECT_EQ(registry.conversions("clustered"), 2u);

    const serve::MatrixInfo info = registry.info("clustered");
    EXPECT_EQ(info.nnz, registry.encoded("clustered")->nnz());
    EXPECT_EQ(info.cached.size(), 2u);
}

TEST(ServeRegistry, RejectsDuplicatesAndUnknownNames)
{
    serve::MatrixRegistry registry;
    registry.put("a", wl::genUniform(16, 16, 40, 1));
    EXPECT_THROW(registry.put("a", wl::genUniform(16, 16, 40, 2)),
                 FatalError);
    EXPECT_THROW(registry.encoded("missing"), FatalError);
    EXPECT_FALSE(registry.contains("missing"));
}

/** Oracle y = A x for one registered matrix. */
std::vector<Value>
serialOracle(serve::MatrixRegistry& registry, const std::string& name,
             const std::vector<Value>& x)
{
    sim::NativeExec e;
    std::vector<Value> y(
        static_cast<std::size_t>(registry.rows(name)), Value(0));
    eng::spmv(registry.encoded(name)->ref(), x, y, e);
    return y;
}

TEST(ServeSession, BatchedEqualsIndividualSpmv)
{
    serve::MatrixRegistry registry;
    registry.put("m", wl::genClustered(200, 200, 3000, 6, 41));
    const Index n_req = 40;

    for (int threads : threadCounts()) {
        for (serve::ComputeExec compute :
             {serve::ComputeExec::kSerial,
              serve::ComputeExec::kParallel}) {
            serve::SessionOptions opts;
            opts.threads = threads;
            opts.maxBatch = 8;
            opts.compute = compute;
            serve::Session session(registry, opts);

            std::vector<std::future<std::vector<Value>>> futures;
            for (Index r = 0; r < n_req; ++r)
                futures.push_back(
                    session.submit("m", rampVector(200, r % 6)));
            for (Index r = 0; r < n_req; ++r) {
                const std::vector<Value> got =
                    futures[static_cast<std::size_t>(r)].get();
                const std::vector<Value> want =
                    serialOracle(registry, "m", rampVector(200, r % 6));
                ASSERT_EQ(got.size(), want.size());
                for (std::size_t i = 0; i < got.size(); ++i)
                    ASSERT_NEAR(got[i], want[i], 1e-12)
                        << "threads " << threads << " request " << r;
            }
            session.drain();
            EXPECT_EQ(session.stats().completed.load(), 40u);
            EXPECT_EQ(session.stats().failed.load(), 0u);
            EXPECT_GT(session.stats().batches.load(), 0u);
        }
    }
}

TEST(ServeSession, SecondSubmitDoesNotReconvert)
{
    serve::MatrixRegistry registry;
    registry.put("cached", wl::genWithLocality(128, 128, 2000, 8, 0.9, 3));
    serve::SessionOptions opts;
    opts.threads = threadCounts().front();
    serve::Session session(registry, opts);

    session.submit("cached", rampVector(128, 0)).get();
    EXPECT_EQ(registry.conversions("cached"), 1u);
    session.submit("cached", rampVector(128, 1)).get();
    EXPECT_EQ(registry.conversions("cached"), 1u);
}

TEST(ServeSession, CompletesUnderOutOfOrderArrival)
{
    // Requests against several matrices, submitted from several
    // client threads: stage-1 scheduling scrambles arrival order at
    // the batcher, conversions interleave with computes, and some
    // batches flush by size while others wait out the deadline.
    serve::MatrixRegistry registry;
    registry.put("alpha", wl::genClustered(160, 160, 2400, 6, 51));
    registry.put("beta", wl::genPowerLaw(120, 120, 1500, 1.1, 52));
    registry.put("gamma", wl::genPoisson2d(12, 12)); // 144x144, DIA

    for (int threads : threadCounts()) {
        serve::SessionOptions opts;
        opts.threads = threads;
        opts.maxBatch = 4;
        opts.maxDelay = std::chrono::microseconds(100);
        serve::Session session(registry, opts);

        const char* names[] = {"alpha", "beta", "gamma"};
        const Index dims[] = {160, 120, 144};
        struct Pending
        {
            std::string name;
            Index kind;
            std::future<std::vector<Value>> future;
        };
        std::vector<Pending> pending(45);
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> clients;
        for (int c = 0; c < 3; ++c)
            clients.emplace_back([&] {
                for (;;) {
                    const std::size_t slot = next.fetch_add(1);
                    if (slot >= pending.size())
                        return;
                    const std::size_t which = slot % 3;
                    const auto kind = static_cast<Index>(slot % 5);
                    pending[slot].name = names[which];
                    pending[slot].kind = kind;
                    pending[slot].future = session.submit(
                        names[which], rampVector(dims[which], kind));
                }
            });
        for (std::thread& c : clients)
            c.join();

        for (Pending& p : pending) {
            const std::vector<Value> got = p.future.get();
            const std::vector<Value> want = serialOracle(
                registry, p.name,
                rampVector(registry.cols(p.name), p.kind));
            ASSERT_EQ(got.size(), want.size());
            for (std::size_t i = 0; i < got.size(); ++i)
                ASSERT_NEAR(got[i], want[i], 1e-12)
                    << p.name << " threads " << threads;
        }
        session.drain();
        EXPECT_EQ(session.stats().completed.load(), 45u);
        EXPECT_EQ(registry.conversions("alpha"), 1u);
        EXPECT_EQ(registry.conversions("beta"), 1u);
        EXPECT_EQ(registry.conversions("gamma"), 1u);
    }
}

TEST(ServeSession, RejectsBadRequestsEagerly)
{
    serve::MatrixRegistry registry;
    registry.put("m", wl::genUniform(32, 32, 100, 7));
    serve::Session session(registry, {});
    EXPECT_THROW(session.submit("nope", rampVector(32, 0)), FatalError);
    EXPECT_THROW(session.submit("m", rampVector(31, 0)), FatalError);
}

TEST(ServeSession, RejectsBadOptionsWithoutTerminating)
{
    serve::MatrixRegistry registry;
    serve::SessionOptions opts;
    opts.maxBatch = 0;
    // Must throw (catchable), not std::terminate on a joinable
    // timer thread during constructor unwinding.
    EXPECT_THROW(serve::Session session(registry, opts), FatalError);
}

} // namespace
} // namespace smash
