/**
 * @file
 * Steady-state hot-path guarantees: plan caching, plan-cache
 * invalidation, and the zero-allocation property of the warmed
 * SpMV dispatch paths.
 *
 * The allocation counter overrides global operator new/delete for
 * this test binary only and counts allocations inside explicitly
 * marked measurement windows. gtest and the library allocate
 * freely outside the windows; inside one, the warmed serial and
 * parallel SpMV paths must not touch the heap at all — that is the
 * contract the PlanCache + ScratchArena layer exists to provide.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/parallel_exec.hh"
#include "engine/dispatch.hh"
#include "formats/csr_matrix.hh"
#include "kernels/util.hh"
#include "sim/exec_model.hh"
#include "workloads/matrix_gen.hh"

namespace
{

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

/** Allocations observed while fn() ran on this thread. Note the
 *  counter is global: pool workers' allocations (if fn fans out)
 *  are counted too — exactly what the steady-state contract needs. */
template <typename Fn>
std::uint64_t
allocationsDuring(Fn&& fn)
{
    g_allocs.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_release);
    fn();
    g_counting.store(false, std::memory_order_release);
    return g_allocs.load(std::memory_order_relaxed);
}

} // namespace

// Counting overrides. Deliberately outside any namespace; sized
// deallocation variants forward so every delete form is covered.
void*
operator new(std::size_t size)
{
    if (g_counting.load(std::memory_order_acquire))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size == 0 ? 1 : size))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace smash
{
namespace
{

fmt::CooMatrix
testMatrix()
{
    return wl::genClustered(512, 512, 8192, 6, 41);
}

double
checksum(const std::vector<Value>& y)
{
    double s = 0;
    for (Value v : y)
        s += static_cast<double>(v);
    return s;
}

TEST(PlanCache, BuildsOnceAndHitsAfterWarmup)
{
    eng::SparseMatrixAny m(fmt::CsrMatrix::fromCoo(testMatrix()));
    std::vector<Value> x(512, Value(1));
    std::vector<Value> y(512, Value(0));
    exec::ParallelExec pe(4);

    EXPECT_EQ(m.planCache().builds(), 0u);
    eng::spmv(m.ref(), x, y, pe);
    const std::uint64_t cold = m.planCache().builds();
    EXPECT_GE(cold, 1u);
    for (int i = 0; i < 5; ++i)
        eng::spmv(m.ref(), x, y, pe);
    EXPECT_EQ(m.planCache().builds(), cold)
        << "warm dispatches must not rebuild partition plans";
    EXPECT_GE(m.planCache().hits(), 5u);
}

TEST(PlanCache, DistinctChunkCountsGetDistinctPlans)
{
    eng::SparseMatrixAny m(fmt::CsrMatrix::fromCoo(testMatrix()));
    std::vector<Value> x(512, Value(1));
    std::vector<Value> y(512, Value(0));
    exec::ParallelExec two(2);
    exec::ParallelExec eight(8);
    eng::spmv(m.ref(), x, y, two);
    const std::uint64_t after_two = m.planCache().builds();
    eng::spmv(m.ref(), x, y, eight);
    EXPECT_GT(m.planCache().builds(), after_two)
        << "a different thread count partitions differently";
    eng::spmv(m.ref(), x, y, two);
    eng::spmv(m.ref(), x, y, eight);
    EXPECT_EQ(m.planCache().builds(), after_two + 1);
}

TEST(PlanCache, StructuralMutationInvalidates)
{
    eng::SparseMatrixAny m(fmt::CsrMatrix::fromCoo(testMatrix()));
    std::vector<Value> x(512, Value(1));
    std::vector<Value> y(512, Value(0));
    exec::ParallelExec pe(4);
    eng::spmv(m.ref(), x, y, pe);
    const std::uint64_t cold = m.planCache().builds();
    const std::size_t plans_before = m.planCache().size();
    EXPECT_GT(plans_before, 0u);

    // Value-only update: plans stay (structure unchanged).
    fmt::CooMatrix valueOnly(512, 512);
    // Update an entry that certainly exists: read it from the CSR.
    const auto& csr = m.as<fmt::CsrMatrix>();
    const Index row0 = [&] {
        for (Index r = 0; r < csr.rows(); ++r)
            if (csr.rowPtr()[static_cast<std::size_t>(r) + 1] >
                csr.rowPtr()[static_cast<std::size_t>(r)])
                return r;
        return Index(0);
    }();
    const auto first = static_cast<std::size_t>(
        csr.rowPtr()[static_cast<std::size_t>(row0)]);
    valueOnly.add(row0, static_cast<Index>(csr.colInd()[first]),
                  Value(0.5));
    eng::MutationStats stats = m.applyUpdates(valueOnly);
    EXPECT_EQ(stats.structural(), 0);
    EXPECT_EQ(m.planCache().size(), plans_before)
        << "value-only updates must keep the plans";

    // Structural update: plans drop, next dispatch rebuilds.
    fmt::CooMatrix structural(512, 512);
    structural.add(0, 511, Value(3));
    structural.add(511, 0, Value(3));
    stats = m.applyUpdates(structural);
    EXPECT_GT(stats.structural(), 0);
    EXPECT_EQ(m.planCache().size(), 0u)
        << "structural updates must invalidate the plans";
    std::fill(y.begin(), y.end(), Value(0));
    eng::spmv(m.ref(), x, y, pe);
    EXPECT_GT(m.planCache().builds(), cold);
}

TEST(PlanCache, CopiesDoNotSharePlans)
{
    eng::SparseMatrixAny a(fmt::CsrMatrix::fromCoo(testMatrix()));
    std::vector<Value> x(512, Value(1));
    std::vector<Value> y(512, Value(0));
    exec::ParallelExec pe(4);
    eng::spmv(a.ref(), x, y, pe);
    eng::SparseMatrixAny b = a; // copy: fresh, empty cache
    EXPECT_EQ(b.planCache().builds(), 0u);
    EXPECT_EQ(b.planCache().size(), 0u);
}

TEST(AllocationFree, WarmedSerialSpmv)
{
    eng::SparseMatrixAny m(fmt::CsrMatrix::fromCoo(testMatrix()));
    std::vector<Value> x(512, Value(1));
    std::vector<Value> y(512, Value(0));
    sim::NativeExec ne;
    eng::spmv(m.ref(), x, y, ne); // warm (nothing to warm serially)
    const std::uint64_t n = allocationsDuring([&] {
        for (int i = 0; i < 16; ++i)
            eng::spmv(m.ref(), x, y, ne);
    });
    EXPECT_EQ(n, 0u) << "warmed serial CSR SpMV must not allocate";
    EXPECT_NE(checksum(y), 0.0);
}

TEST(AllocationFree, WarmedSerialSmashSpmvWithPaddedScratch)
{
    eng::SparseMatrixAny m =
        eng::SparseMatrixAny::fromCoo(testMatrix(), eng::Format::kSmash);
    // Deliberately unpadded x: the pad goes through the thread's
    // ScratchArena, which must reuse its buffer once warmed.
    std::vector<Value> x(512, Value(1));
    std::vector<Value> y(512, Value(0));
    sim::NativeExec ne;
    eng::spmv(m.ref(), x, y, ne); // warm the arena pad buffer
    const std::uint64_t n = allocationsDuring([&] {
        for (int i = 0; i < 16; ++i)
            eng::spmv(m.ref(), x, y, ne);
    });
    EXPECT_EQ(n, 0u)
        << "warmed SMASH SpMV (arena-padded x) must not allocate";
}

TEST(AllocationFree, WarmedParallelSpmvCsrAndSmash)
{
    eng::SparseMatrixAny csr(fmt::CsrMatrix::fromCoo(testMatrix()));
    eng::SparseMatrixAny smash =
        eng::SparseMatrixAny::fromCoo(testMatrix(), eng::Format::kSmash);
    std::vector<Value> x(512, Value(1));
    std::vector<Value> y(512, Value(0));
    for (int threads : {2, 4}) {
        exec::ParallelExec pe(threads);
        // Warm: plan builds, arena buffers, pool wake paths.
        for (int i = 0; i < 3; ++i) {
            eng::spmv(csr.ref(), x, y, pe);
            eng::spmv(smash.ref(), x, y, pe);
        }
        const std::uint64_t n = allocationsDuring([&] {
            for (int i = 0; i < 8; ++i) {
                eng::spmv(csr.ref(), x, y, pe);
                eng::spmv(smash.ref(), x, y, pe);
            }
        });
        EXPECT_EQ(n, 0u)
            << "warmed parallel SpMV at " << threads
            << " threads must not allocate (plans cached, scatter "
               "accumulators arena-backed, chunk claiming heap-free)";
    }
}

TEST(AllocationFree, WarmedParallelSpmvBatch)
{
    eng::SparseMatrixAny csr(fmt::CsrMatrix::fromCoo(testMatrix()));
    fmt::DenseMatrix x(512, 8);
    for (Index r = 0; r < 8; ++r)
        for (Index j = 0; j < 512; ++j)
            x.at(j, r) = Value(1) + Value((j + r) % 5) * Value(0.25);
    fmt::DenseMatrix y(512, 8);
    exec::ParallelExec pe(4);
    eng::spmvBatch(csr.ref(), x, y, pe); // warm
    const std::uint64_t n = allocationsDuring([&] {
        for (int i = 0; i < 8; ++i)
            eng::spmvBatch(csr.ref(), x, y, pe);
    });
    EXPECT_EQ(n, 0u)
        << "warmed batched SpMV must not allocate";
}

TEST(AllocationFree, ColdCallsDoAllocate)
{
    // Sanity check on the counter itself: a cold parallel dispatch
    // builds a plan, which must show up as allocations.
    eng::SparseMatrixAny m(fmt::CsrMatrix::fromCoo(testMatrix()));
    std::vector<Value> x(512, Value(1));
    std::vector<Value> y(512, Value(0));
    exec::ParallelExec pe(4);
    const std::uint64_t n = allocationsDuring([&] {
        eng::spmv(m.ref(), x, y, pe);
    });
    EXPECT_GT(n, 0u) << "the counter must observe cold-path builds";
}

TEST(SmashWordWalk, ZeroColumnMatrixIsANoOp)
{
    // Regression: the amortized row tracking divides by
    // bits_per_row up front; a legal zero-column matrix has
    // bits_per_row == 0 and must return cleanly (it used to be a
    // no-op, and briefly a SIGFPE).
    fmt::CooMatrix coo(4, 0);
    core::SmashMatrix m = core::SmashMatrix::fromCoo(
        coo, core::HierarchyConfig::fromPaperNotation({16, 4, 2}));
    std::vector<Value> x;
    std::vector<Value> y(4, Value(7));
    sim::NativeExec ne;
    kern::spmvSmashSw(m, x, y, ne);
    for (Value v : y)
        EXPECT_EQ(v, Value(7));
}

TEST(StickyChunks, ParallelResultsBitMatchSerial)
{
    // The sticky chunk claiming must not change results, whatever
    // worker ends up with which chunk.
    eng::SparseMatrixAny m(fmt::CsrMatrix::fromCoo(testMatrix()));
    std::vector<Value> x(512, Value(1));
    for (Index i = 0; i < 512; ++i)
        x[static_cast<std::size_t>(i)] += Value(i % 7) * Value(0.125);
    std::vector<Value> serial(512, Value(0));
    sim::NativeExec ne;
    eng::spmv(m.ref(), x, serial, ne);
    for (int threads : {1, 2, 8}) {
        exec::ParallelExec pe(
            exec::ThreadPool::Options{threads, true}); // pinned
        for (int rep = 0; rep < 3; ++rep) {
            std::vector<Value> y(512, Value(0));
            eng::spmv(m.ref(), x, y, pe);
            ASSERT_EQ(y, serial)
                << "pinned/sticky run diverged at " << threads
                << " threads, rep " << rep;
        }
    }
}

} // namespace
} // namespace smash
