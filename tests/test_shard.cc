/**
 * @file
 * Tests for the sharded-matrix subsystem (src/shard/): bit-identity
 * of scatter–gather SpMV / batched SpMV / SpAdd against the
 * unsharded engine (all values dyadic, so every summation order is
 * exact and the comparisons are memcmp, not tolerance), delta
 * routing to the owning shard, per-shard divergent format
 * re-selection with per-shard (not whole-matrix) async re-encode,
 * K=1 equivalence, and the NUMA topology probe's invariants.
 *
 * Thread counts: SMASH_SERVE_THREADS pins one count (the ctest
 * variants run 1, 2, and 8); unset, every count is covered.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include "common/numa_topology.hh"
#include "common/thread_pool.hh"
#include "engine/dispatch.hh"
#include "formats/dense_matrix.hh"
#include "serve/session.hh"
#include "shard/sharded_matrix.hh"
#include "sim/exec_model.hh"
#include "workloads/matrix_gen.hh"

namespace smash
{
namespace
{

std::vector<int>
threadCounts()
{
    if (const char* env = std::getenv("SMASH_SERVE_THREADS"))
        return {std::atoi(env)};
    return {1, 2, 8};
}

/** Dyadic-valued operand (multiples of 2^-4): exact in any order. */
std::vector<Value>
dyadicOperand(Index n, Index kind)
{
    std::vector<Value> x(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i)
        x[static_cast<std::size_t>(i)] =
            Value(1) + Value((i * 5 + kind) % 9) * Value(0.0625);
    return x;
}

/** Scattered dyadic matrix with irregular rows (profiles to a
 *  non-DIA format in every band — the drift test's baseline). */
fmt::CooMatrix
scatteredMatrix(Index rows, Index cols, Index seed = 11)
{
    fmt::CooMatrix coo(rows, cols);
    for (Index r = 0; r < rows; ++r) {
        const Index per_row = 3 + (r * 7 + seed) % 5; // 3..7, rowCv > 0
        for (Index k = 0; k < per_row; ++k)
            coo.add(r, (r * 37 + k * 53 + seed) % cols,
                    Value(1) + Value((r + k + seed) % 8) * Value(0.125));
    }
    coo.canonicalize();
    return coo;
}

/** Wait until no re-encode is pending for @p name. */
bool
waitReencodeSettled(serve::MatrixRegistry& registry,
                    const std::string& name)
{
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::seconds(5);
    while (registry.info(name).reencodePending) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
}

TEST(NumaTopology, ProbeInvariants)
{
    const sys::NumaTopology& topo = sys::NumaTopology::probe();
    ASSERT_GE(topo.nodeCount(), 1);
    ASSERT_GE(topo.cpuCount(), 1);

    // nodeMajorCpuOrder is a permutation of every probed CPU.
    const std::vector<int> order = topo.nodeMajorCpuOrder();
    ASSERT_EQ(static_cast<int>(order.size()), topo.cpuCount());
    std::set<int> seen(order.begin(), order.end());
    EXPECT_EQ(static_cast<int>(seen.size()), topo.cpuCount());

    // Every shard gets a non-empty CPU subset; on a 1-node host with
    // enough CPUs the round-robin subsets of one split are disjoint
    // (with fewer CPUs than shards the degraded mode shares them).
    for (Index k = 1; k <= 5; ++k) {
        std::set<int> all;
        std::size_t total = 0;
        for (Index s = 0; s < k; ++s) {
            const std::vector<int> cpus = topo.shardCpus(s, k);
            ASSERT_FALSE(cpus.empty()) << "shard " << s << "/" << k;
            all.insert(cpus.begin(), cpus.end());
            total += cpus.size();
            const int node = topo.shardNode(s);
            ASSERT_GE(node, 0);
            ASSERT_LT(node, topo.nodeCount());
        }
        if (topo.nodeCount() == 1 &&
            topo.cpuCount() >= static_cast<int>(k))
            EXPECT_EQ(all.size(), total) << "overlap at K=" << k;
    }
}

TEST(Shard, PartitionIsNnzBalancedAndCoversRows)
{
    const fmt::CsrMatrix master =
        fmt::CsrMatrix::fromCoo(scatteredMatrix(200, 160));
    for (const Index k : {Index(1), Index(3), Index(8)}) {
        shard::ShardedMatrix sm("part", master, k);
        ASSERT_EQ(sm.shardCount(), k);
        ASSERT_EQ(sm.rows(), master.rows());
        ASSERT_EQ(sm.cols(), master.cols());
        ASSERT_EQ(sm.nnz(), master.nnz());
        Index covered = 0;
        Index nnz = 0;
        for (Index s = 0; s < k; ++s) {
            const shard::ShardInfo info = sm.shardInfo(s);
            ASSERT_EQ(info.rowBegin, covered);
            ASSERT_GT(info.rowEnd, info.rowBegin);
            covered = info.rowEnd;
            nnz += info.nnz;
            // Every row maps back to its owning shard.
            for (Index r = info.rowBegin; r < info.rowEnd; ++r)
                ASSERT_EQ(sm.shardOfRow(r), s);
        }
        EXPECT_EQ(covered, master.rows());
        EXPECT_EQ(nnz, master.nnz());
        // toCsr reproduces the construction input bit for bit.
        const fmt::CsrMatrix back = sm.toCsr();
        ASSERT_EQ(back.rowPtr(), master.rowPtr());
        ASSERT_EQ(back.colInd(), master.colInd());
        ASSERT_EQ(back.values().size(), master.values().size());
        EXPECT_EQ(std::memcmp(back.values().data(),
                              master.values().data(),
                              master.values().size() * sizeof(Value)),
                  0);
    }
    // K beyond the row count clamps (each shard still owns a row).
    shard::ShardedMatrix tiny("tiny",
                              fmt::CsrMatrix::fromCoo(
                                  wl::genTridiagonal(3)),
                              64);
    EXPECT_EQ(tiny.shardCount(), 3);
}

TEST(Shard, SpmvBitIdenticalToUnsharded)
{
    // Dyadic values: the memcmp is exact even when the shards'
    // auto-selected format accumulates in a different association
    // than the CSR oracle.
    const fmt::CooMatrix coo = scatteredMatrix(240, 200);
    const fmt::CsrMatrix master = fmt::CsrMatrix::fromCoo(coo);
    const std::vector<Value> x = dyadicOperand(200, 1);

    std::vector<Value> expect(240, Value(0));
    sim::NativeExec ne;
    eng::spmv(master, x, expect, ne);

    for (int threads : threadCounts()) {
        exec::ThreadPool pool(threads);
        for (const Index k : {Index(1), Index(2), Index(5)}) {
            shard::ShardedMatrix sm("spmv", master, k);
            for (exec::ThreadPool* p :
                 {static_cast<exec::ThreadPool*>(nullptr), &pool}) {
                std::vector<Value> y(240, Value(0));
                sm.spmv(x, y, p);
                ASSERT_EQ(y.size(), expect.size());
                ASSERT_EQ(std::memcmp(y.data(), expect.data(),
                                      y.size() * sizeof(Value)),
                          0)
                    << "K=" << k << " threads=" << threads
                    << " pooled=" << (p != nullptr);
            }
        }
    }
}

TEST(Shard, SpmvBatchBitIdenticalToUnsharded)
{
    const fmt::CooMatrix coo = scatteredMatrix(180, 180);
    const fmt::CsrMatrix master = fmt::CsrMatrix::fromCoo(coo);
    const Index nrhs = 5;
    fmt::DenseMatrix x(180, nrhs);
    for (Index j = 0; j < 180; ++j)
        for (Index c = 0; c < nrhs; ++c)
            x.at(j, c) = Value(1) +
                Value((j * 3 + c * 11) % 16) * Value(0.0625);

    fmt::DenseMatrix expect(180, nrhs);
    sim::NativeExec ne;
    eng::spmmBatch(master, x, expect, ne);

    for (int threads : threadCounts()) {
        exec::ThreadPool pool(threads);
        for (const Index k : {Index(1), Index(3), Index(7)}) {
            shard::ShardedMatrix sm("batch", master, k);
            fmt::DenseMatrix y(180, nrhs);
            sm.spmvBatch(x, y, &pool);
            ASSERT_EQ(std::memcmp(y.data().data(),
                                  expect.data().data(),
                                  y.data().size() * sizeof(Value)),
                      0)
                << "K=" << k << " threads=" << threads;
        }
    }
}

TEST(Shard, SpaddBitIdenticalToUnsharded)
{
    const fmt::CsrMatrix a =
        fmt::CsrMatrix::fromCoo(scatteredMatrix(150, 150));
    const fmt::CsrMatrix b = fmt::CsrMatrix::fromCoo(
        wl::genClustered(150, 150, 900, 5, 23));

    sim::NativeExec ne;
    const fmt::CooMatrix expect =
        eng::spadd(a, b, ne).as<fmt::CooMatrix>();

    for (int threads : threadCounts()) {
        exec::ThreadPool pool(threads);
        for (const Index k : {Index(1), Index(4)}) {
            shard::ShardedMatrix sm("spadd", a, k);
            const fmt::CooMatrix got = sm.spadd(b, &pool);
            ASSERT_EQ(got.rows(), expect.rows());
            ASSERT_EQ(got.cols(), expect.cols());
            ASSERT_EQ(got.nnz(), expect.nnz())
                << "K=" << k << " threads=" << threads;
            for (Index i = 0; i < got.nnz(); ++i) {
                const fmt::CooEntry& ge =
                    got.entries()[static_cast<std::size_t>(i)];
                const fmt::CooEntry& ee =
                    expect.entries()[static_cast<std::size_t>(i)];
                ASSERT_EQ(ge.row, ee.row);
                ASSERT_EQ(ge.col, ee.col);
                ASSERT_EQ(ge.value, ee.value);
            }
        }
    }
}

TEST(Shard, DeltasRouteToOwningShardOnly)
{
    const fmt::CsrMatrix master =
        fmt::CsrMatrix::fromCoo(scatteredMatrix(160, 160));
    shard::ShardedMatrix sm("route", master, 4);
    ASSERT_EQ(sm.shardCount(), 4);
    const shard::ShardInfo band = sm.shardInfo(2);

    // Deltas land entirely inside shard 2's row band.
    fmt::CooMatrix deltas(160, 160);
    for (Index r = band.rowBegin; r < band.rowEnd; ++r)
        deltas.add(r, (r * 13) % 160, Value(0.5));
    deltas.canonicalize();

    shard::DriftPolicy off;
    off.enabled = false;
    const shard::ShardMutationOutcome out =
        sm.applyUpdates(deltas, off);
    EXPECT_GT(out.stats.inserted + out.stats.updated, 0u);
    EXPECT_FALSE(out.reencodeScheduled);
    for (Index s = 0; s < 4; ++s) {
        const shard::ShardInfo info = sm.shardInfo(s);
        EXPECT_EQ(info.epoch, s == 2 ? 1u : 0u) << "shard " << s;
        // Only the touched shard rebuilds its encoding on next use.
        EXPECT_EQ(info.conversions, 1u);
    }
    sm.ensureEncoded();
    EXPECT_EQ(sm.shardInfo(2).conversions, 2u);
    EXPECT_EQ(sm.shardInfo(0).conversions, 1u);

    // The mutated content is served bit-identically to a rebuilt
    // unsharded oracle.
    fmt::CsrMatrix oracle = master;
    eng::applyUpdates(oracle, deltas);
    const std::vector<Value> x = dyadicOperand(160, 2);
    std::vector<Value> expect(160, Value(0));
    sim::NativeExec ne;
    eng::spmv(oracle, x, expect, ne);
    std::vector<Value> y(160, Value(0));
    sm.spmv(x, y, nullptr);
    EXPECT_EQ(std::memcmp(y.data(), expect.data(),
                          y.size() * sizeof(Value)),
              0);
}

TEST(Shard, RegistryShardedServesBitIdenticalToUnsharded)
{
    // Dyadic operands on both sides, so batcher coalescing, shard
    // format choices, and the whole-matrix oracle all sum exactly.
    const fmt::CooMatrix coo = scatteredMatrix(220, 220, 59);
    const fmt::CooMatrix other = scatteredMatrix(220, 220, 83);
    for (int threads : threadCounts()) {
        serve::MatrixRegistry plain_reg;
        plain_reg.put("m", coo);
        plain_reg.put("b", other);
        serve::MatrixRegistry shard_reg;
        shard_reg.registerSharded("m", coo, 3);
        shard_reg.put("b", other);
        ASSERT_EQ(shard_reg.info("m").shards, 3);
        ASSERT_EQ(shard_reg.rows("m"), 220);

        serve::SessionOptions opts;
        opts.threads = threads;
        serve::Session plain(plain_reg, opts);
        serve::Session shrd(shard_reg, opts);

        // SpMV (several operands, so the batcher may coalesce).
        for (Index seed = 0; seed < 3; ++seed) {
            const std::vector<Value> x = dyadicOperand(220, seed);
            const std::vector<Value> want =
                plain.submit(serve::SpmvRequest{"m", x}).get().value();
            const std::vector<Value> got =
                shrd.submit(serve::SpmvRequest{"m", x}).get().value();
            ASSERT_EQ(got.size(), want.size());
            ASSERT_EQ(std::memcmp(got.data(), want.data(),
                                  got.size() * sizeof(Value)),
                      0)
                << "seed " << seed << " threads " << threads;
        }

        // SpMM.
        fmt::DenseMatrix blk(220, 4);
        for (Index j = 0; j < 220; ++j)
            for (Index c = 0; c < 4; ++c)
                blk.at(j, c) = Value(1) +
                    Value((j + c * 5) % 12) * Value(0.0625);
        const fmt::DenseMatrix want_mm =
            plain.submit(serve::SpmmRequest{"m", blk}).get().value();
        const fmt::DenseMatrix got_mm =
            shrd.submit(serve::SpmmRequest{"m", blk}).get().value();
        ASSERT_EQ(std::memcmp(got_mm.data().data(),
                              want_mm.data().data(),
                              got_mm.data().size() * sizeof(Value)),
                  0)
            << "threads " << threads;

        // SpAdd ("m" + "b"), sharded primary operand.
        const fmt::CooMatrix want_add =
            plain.submit(serve::SpaddRequest{"m", "b"}).get().value();
        const fmt::CooMatrix got_add =
            shrd.submit(serve::SpaddRequest{"m", "b"}).get().value();
        ASSERT_EQ(got_add.nnz(), want_add.nnz());
        for (Index i = 0; i < got_add.nnz(); ++i) {
            const fmt::CooEntry& ge =
                got_add.entries()[static_cast<std::size_t>(i)];
            const fmt::CooEntry& ee =
                want_add.entries()[static_cast<std::size_t>(i)];
            ASSERT_EQ(ge.row, ee.row);
            ASSERT_EQ(ge.col, ee.col);
            ASSERT_EQ(ge.value, ee.value);
        }
        plain.drain();
        shrd.drain();
    }
}

TEST(Shard, RegisterShardedK1MatchesPut)
{
    const fmt::CooMatrix coo = scatteredMatrix(128, 128);
    serve::MatrixRegistry plain_reg;
    const eng::Format pf = plain_reg.put("m", coo);
    serve::MatrixRegistry shard_reg;
    const eng::Format sf = shard_reg.registerSharded("m", coo, 1);
    EXPECT_EQ(sf, pf); // one band sees the whole-matrix profile
    EXPECT_EQ(shard_reg.info("m").shards, 1);

    const std::vector<Value> x = dyadicOperand(128, 7);
    serve::Session plain(plain_reg);
    serve::Session shrd(shard_reg);
    const std::vector<Value> want =
        plain.submit(serve::SpmvRequest{"m", x}).get().value();
    const std::vector<Value> got =
        shrd.submit(serve::SpmvRequest{"m", x}).get().value();
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          got.size() * sizeof(Value)),
              0);
}

TEST(Shard, DivergentPerShardReselection)
{
    // Two bands start on the same (non-DIA) format; replacing every
    // shard-0 row with a constant-offset diagonal entry drives that
    // band decisively to DIA while shard 1 never runs its detector.
    // The re-encode must be per-shard: shard 1's encoding survives
    // untouched (conversions stay at 1) and its reselect count at 0.
    const Index n = 192;
    for (int threads : threadCounts()) {
        serve::MatrixRegistry registry;
        registry.registerSharded("split", scatteredMatrix(n, n), 2);
        const std::shared_ptr<shard::ShardedMatrix> sm =
            registry.sharded("split");
        ASSERT_TRUE(sm);
        ASSERT_EQ(sm->shardCount(), 2);
        const shard::ShardInfo before0 = sm->shardInfo(0);
        const shard::ShardInfo before1 = sm->shardInfo(1);
        ASSERT_EQ(before0.chosen, before1.chosen);
        ASSERT_NE(before0.chosen, eng::Format::kDia);

        serve::SessionOptions opts;
        opts.threads = threads;
        serve::Session session(registry, opts);
        // Warm every shard encoding through a served request.
        ASSERT_TRUE(session
                        .submit(serve::SpmvRequest{
                            "split", dyadicOperand(n, 0)})
                        .get()
                        .ok());

        // One diagonal entry per shard-0 row: the band's local
        // profile collapses to a single fully-filled diagonal.
        std::vector<Index> rows;
        fmt::CooMatrix repl(n, n);
        for (Index r = before0.rowBegin; r < before0.rowEnd; ++r) {
            rows.push_back(r);
            repl.add(r, r, Value(2) + Value(r % 4) * Value(0.25));
        }
        repl.canonicalize();
        const serve::UpdateOutcome out =
            session.replaceRows("split", rows, repl);
        ASSERT_TRUE(out.reencodeScheduled)
            << "threads " << threads;
        EXPECT_EQ(out.target, eng::Format::kDia);

        ASSERT_TRUE(waitReencodeSettled(registry, "split"));
        session.drain();

        const shard::ShardInfo after0 = sm->shardInfo(0);
        const shard::ShardInfo after1 = sm->shardInfo(1);
        EXPECT_EQ(after0.chosen, eng::Format::kDia);
        EXPECT_EQ(after1.chosen, before1.chosen);
        EXPECT_NE(after0.chosen, after1.chosen)
            << "bands did not diverge (threads " << threads << ")";
        EXPECT_EQ(after0.reselects, 1u);
        EXPECT_EQ(after1.reselects, 0u);
        // Per-shard re-encode: shard 1's encoding was never rebuilt.
        EXPECT_EQ(after0.conversions, 2u);
        EXPECT_EQ(after1.conversions, 1u);
        // The async hook (not the inline fallback) ran it.
        EXPECT_EQ(session.stats().reencodes.load(), 1u);
        // info() surfaces the divergence: two distinct formats.
        const serve::MatrixInfo info = registry.info("split");
        EXPECT_EQ(info.cached.size(), 2u);
        EXPECT_EQ(info.shards, 2);

        // Served content reflects the mutation, bit-identically to
        // an unsharded oracle of the same master.
        serve::MatrixRegistry oracle_reg;
        oracle_reg.put("o", sm->toCsr().toCoo());
        serve::Session oracle(oracle_reg, opts);
        const std::vector<Value> x = dyadicOperand(n, 3);
        const std::vector<Value> want =
            oracle.submit(serve::SpmvRequest{"o", x}).get().value();
        const std::vector<Value> got =
            session.submit(serve::SpmvRequest{"split", x})
                .get()
                .value();
        ASSERT_EQ(std::memcmp(got.data(), want.data(),
                              got.size() * sizeof(Value)),
                  0)
            << "threads " << threads;
    }
}

TEST(Shard, ConcurrentSubmitsAndMutationsStayCoherent)
{
    // TSan fodder: hammer a sharded entry with SpMV submits from
    // several clients while another thread streams value-only
    // mutations (scaleValues never changes structure, so every
    // result is *some* consistent epoch's content — the invariant
    // here is no data race and no failed request, not a fixed
    // oracle).
    const Index n = 160;
    for (int threads : threadCounts()) {
        serve::MatrixRegistry registry;
        registry.registerSharded("hot", scatteredMatrix(n, n), 3);
        serve::SessionOptions opts;
        opts.threads = threads;
        serve::Session session(registry, opts);

        std::atomic<bool> stop{false};
        std::thread mutator([&] {
            while (!stop.load()) {
                registry.scaleValues("hot", Value(2));
                registry.scaleValues("hot", Value(0.5));
            }
        });
        constexpr int kClients = 3;
        constexpr int kPerClient = 16;
        std::vector<std::thread> clients;
        std::atomic<int> failures{0};
        for (int c = 0; c < kClients; ++c)
            clients.emplace_back([&, c] {
                for (int i = 0; i < kPerClient; ++i) {
                    const serve::Result<std::vector<Value>> r =
                        session
                            .submit(serve::SpmvRequest{
                                "hot", dyadicOperand(n, c + i)})
                            .get();
                    if (!r.ok())
                        failures.fetch_add(1);
                }
            });
        for (std::thread& c : clients)
            c.join();
        stop.store(true);
        mutator.join();
        session.drain();
        EXPECT_EQ(failures.load(), 0) << "threads " << threads;
    }
}

} // namespace
} // namespace smash
