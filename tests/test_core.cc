/**
 * @file
 * Unit and property tests for the SMASH core: hierarchy config,
 * bitmaps, the bitmap hierarchy, SmashMatrix encode/decode, storage
 * accounting, and the software block cursor.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/block_cursor.hh"
#include "core/smash_matrix.hh"
#include "workloads/matrix_gen.hh"

namespace smash::core
{
namespace
{

TEST(HierarchyConfig, PaperNotationReverses)
{
    auto cfg = HierarchyConfig::fromPaperNotation({16, 4, 2});
    EXPECT_EQ(cfg.levels(), 3);
    EXPECT_EQ(cfg.blockSize(), 2);
    EXPECT_EQ(cfg.ratio(0), 2);
    EXPECT_EQ(cfg.ratio(1), 4);
    EXPECT_EQ(cfg.ratio(2), 16);
    EXPECT_EQ(cfg.toString(), "16.4.2");
}

TEST(HierarchyConfig, ElementsPerBit)
{
    auto cfg = HierarchyConfig::fromPaperNotation({16, 4, 2});
    EXPECT_EQ(cfg.elementsPerBit(0), 2);
    EXPECT_EQ(cfg.elementsPerBit(1), 8);
    EXPECT_EQ(cfg.elementsPerBit(2), 128);
}

TEST(HierarchyConfig, RejectsBadRatios)
{
    EXPECT_THROW(HierarchyConfig({1}), FatalError);
    EXPECT_THROW(HierarchyConfig({}), FatalError);
    EXPECT_THROW(HierarchyConfig({2, 2, 2, 2, 2}), FatalError);
}

TEST(Bitmap, SetTestClear)
{
    Bitmap bm(130);
    EXPECT_FALSE(bm.test(0));
    bm.set(0);
    bm.set(64);
    bm.set(129);
    EXPECT_TRUE(bm.test(0));
    EXPECT_TRUE(bm.test(64));
    EXPECT_TRUE(bm.test(129));
    EXPECT_EQ(bm.countSet(), 3);
    bm.clear(64);
    EXPECT_FALSE(bm.test(64));
    EXPECT_EQ(bm.countSet(), 2);
}

TEST(Bitmap, FindNextSetCrossesWords)
{
    Bitmap bm(200);
    bm.set(3);
    bm.set(63);
    bm.set(64);
    bm.set(199);
    EXPECT_EQ(bm.findNextSet(0), 3);
    EXPECT_EQ(bm.findNextSet(4), 63);
    EXPECT_EQ(bm.findNextSet(64), 64);
    EXPECT_EQ(bm.findNextSet(65), 199);
    EXPECT_EQ(bm.findNextSet(200), -1);
}

TEST(Bitmap, RankBefore)
{
    Bitmap bm(130);
    bm.set(0);
    bm.set(64);
    bm.set(65);
    bm.set(129);
    EXPECT_EQ(bm.rankBefore(0), 0);
    EXPECT_EQ(bm.rankBefore(1), 1);
    EXPECT_EQ(bm.rankBefore(65), 2);
    EXPECT_EQ(bm.rankBefore(130), 4);
}

TEST(Bitmap, StorageBytesRoundsUp)
{
    EXPECT_EQ(Bitmap(1).storageBytes(), 1U);
    EXPECT_EQ(Bitmap(8).storageBytes(), 1U);
    EXPECT_EQ(Bitmap(9).storageBytes(), 2U);
}

TEST(BitmapHierarchy, SummarizesUpward)
{
    // ratios: level0 = 2 elements/bit, level1 = 4 bits/bit.
    HierarchyConfig cfg({2, 4});
    Bitmap level0(16);
    level0.set(0);
    level0.set(5);
    level0.set(12);
    BitmapHierarchy h(cfg, level0);
    EXPECT_TRUE(h.checkInvariants());
    // level1 bits cover level0 ranges [0,4), [4,8), [8,12), [12,16).
    EXPECT_TRUE(h.level(1).test(0));
    EXPECT_TRUE(h.level(1).test(1));
    EXPECT_FALSE(h.level(1).test(2));
    EXPECT_TRUE(h.level(1).test(3));
}

TEST(BitmapHierarchy, CompactSmallerThanDenseWhenSparse)
{
    HierarchyConfig cfg({2, 8, 8});
    Bitmap level0(4096);
    level0.set(17); // one lonely block
    BitmapHierarchy h(cfg, level0);
    EXPECT_LT(h.compactStorageBytes(), h.denseStorageBytes());
}

TEST(BitmapHierarchy, CompactEqualsDensePlusTopWhenFull)
{
    HierarchyConfig cfg({2, 4});
    Bitmap level0(64);
    for (Index i = 0; i < 64; ++i)
        level0.set(i);
    BitmapHierarchy h(cfg, level0);
    // Everything materialized: compact = level1 bits + all level0
    // groups = 16 + 64 bits = 10 bytes.
    EXPECT_EQ(h.compactStorageBytes(), 10U);
}

fmt::CooMatrix
figure1Matrix()
{
    fmt::CooMatrix coo(4, 4);
    coo.add(0, 0, 3.2);
    coo.add(1, 0, 1.2);
    coo.add(1, 2, 4.2);
    coo.add(2, 3, 5.1);
    coo.add(3, 0, 5.3);
    coo.add(3, 1, 3.3);
    coo.canonicalize();
    return coo;
}

TEST(SmashMatrix, EncodesFigure1)
{
    auto coo = figure1Matrix();
    HierarchyConfig cfg({2, 2});
    SmashMatrix m = SmashMatrix::fromCoo(coo, cfg);
    EXPECT_TRUE(m.checkInvariants());
    EXPECT_EQ(m.rows(), 4);
    EXPECT_EQ(m.paddedCols(), 4);
    EXPECT_EQ(m.nnz(), 6);
    // Occupied 2-element blocks: (0,0-1), (1,0-1), (1,2-3), (2,2-3),
    // (3,0-1) -> 5 blocks.
    EXPECT_EQ(m.numBlocks(), 5);
    EXPECT_TRUE(m.toDense().approxEquals(coo.toDense(), 0.0));
}

TEST(SmashMatrix, PositionOfBit)
{
    auto coo = figure1Matrix();
    SmashMatrix m = SmashMatrix::fromCoo(coo, HierarchyConfig({2, 2}));
    const Bitmap& level0 = m.hierarchy().level(0);
    Index bit = level0.findNextSet(0);
    BlockPosition pos = m.positionOfBit(bit);
    EXPECT_EQ(pos.row, 0);
    EXPECT_EQ(pos.colStart, 0);
    EXPECT_EQ(pos.nzaBlock, 0);
}

TEST(SmashMatrix, PaddedColsKeepBlocksInRows)
{
    // 3 columns with block size 4 -> paddedCols 4; a block never
    // straddles two rows.
    fmt::CooMatrix coo(3, 3);
    coo.add(0, 2, 1.0);
    coo.add(1, 0, 2.0);
    coo.add(2, 2, 3.0);
    coo.canonicalize();
    SmashMatrix m = SmashMatrix::fromCoo(coo, HierarchyConfig({4, 2}));
    EXPECT_EQ(m.paddedCols(), 4);
    EXPECT_EQ(m.numBlocks(), 3);
    EXPECT_TRUE(m.checkInvariants());
    EXPECT_TRUE(m.toDense().approxEquals(coo.toDense(), 0.0));
}

TEST(SmashMatrix, LocalityOfSparsity)
{
    // Two blocks of size 4: one full, one with a single element.
    fmt::CooMatrix coo(1, 8);
    coo.add(0, 0, 1.0);
    coo.add(0, 1, 1.0);
    coo.add(0, 2, 1.0);
    coo.add(0, 3, 1.0);
    coo.add(0, 4, 1.0);
    coo.canonicalize();
    SmashMatrix m = SmashMatrix::fromCoo(coo, HierarchyConfig({4}));
    EXPECT_DOUBLE_EQ(m.localityOfSparsity(), 5.0 / 8.0);
}

TEST(SmashMatrix, FromBlocksRebuilds)
{
    auto coo = figure1Matrix();
    HierarchyConfig cfg({2, 2});
    SmashMatrix m = SmashMatrix::fromCoo(coo, cfg);
    Bitmap level0 = m.hierarchy().level(0);
    std::vector<Value> nza = m.nza();
    SmashMatrix rebuilt = SmashMatrix::fromBlocks(
        m.rows(), m.cols(), cfg, std::move(level0), std::move(nza));
    EXPECT_TRUE(rebuilt.checkInvariants());
    EXPECT_TRUE(rebuilt.toDense().approxEquals(m.toDense(), 0.0));
    EXPECT_EQ(rebuilt.nnz(), m.nnz());
}

TEST(SmashMatrix, CsrRoundTrip)
{
    auto coo = figure1Matrix();
    SmashMatrix m = SmashMatrix::fromCsr(
        fmt::CsrMatrix::fromCoo(coo), HierarchyConfig({2, 4}));
    fmt::CsrMatrix back = m.toCsr();
    EXPECT_TRUE(back.toDense().approxEquals(coo.toDense(), 0.0));
}

TEST(BlockCursor, VisitsBlocksInOrder)
{
    auto coo = figure1Matrix();
    SmashMatrix m = SmashMatrix::fromCoo(coo, HierarchyConfig({2, 2}));
    BlockCursor cursor(m);
    BlockPosition pos;
    Index prev_linear = -1;
    Index count = 0;
    while (cursor.next(pos)) {
        Index linear = pos.row * m.paddedCols() + pos.colStart;
        EXPECT_GT(linear, prev_linear);
        EXPECT_EQ(pos.nzaBlock, count);
        prev_linear = linear;
        ++count;
    }
    EXPECT_EQ(count, m.numBlocks());
    // Exhausted cursor keeps returning false.
    EXPECT_FALSE(cursor.next(pos));
}

TEST(BlockCursor, CountsScanWork)
{
    auto coo = figure1Matrix();
    SmashMatrix m = SmashMatrix::fromCoo(coo, HierarchyConfig({2, 2}));
    BlockCursor cursor(m);
    BlockPosition pos;
    while (cursor.next(pos)) {
    }
    EXPECT_GT(cursor.stats().wordLoads, 0U);
    EXPECT_GT(cursor.stats().bitOps, 0U);
}

TEST(BlockCursor, ResetRestarts)
{
    auto coo = figure1Matrix();
    SmashMatrix m = SmashMatrix::fromCoo(coo, HierarchyConfig({2, 2}));
    BlockCursor cursor(m);
    BlockPosition pos;
    ASSERT_TRUE(cursor.next(pos));
    cursor.reset();
    Index count = 0;
    while (cursor.next(pos))
        ++count;
    EXPECT_EQ(count, m.numBlocks());
}

TEST(BlockCursor, EmptyMatrix)
{
    fmt::CooMatrix coo(8, 8);
    SmashMatrix m = SmashMatrix::fromCoo(coo, HierarchyConfig({2, 2}));
    EXPECT_EQ(m.numBlocks(), 0);
    BlockCursor cursor(m);
    BlockPosition pos;
    EXPECT_FALSE(cursor.next(pos));
}

/** Encode/decode round-trip across structures and configurations. */
class SmashRoundTrip
    : public ::testing::TestWithParam<
          std::tuple<std::vector<Index>, Index, Index, double>>
{
};

TEST_P(SmashRoundTrip, DecodeMatchesOracle)
{
    auto [top_down, rows, cols, density] = GetParam();
    Index nnz = std::max<Index>(
        1, static_cast<Index>(static_cast<double>(rows * cols) * density));
    fmt::CooMatrix coo = wl::genClustered(
        rows, cols, nnz, 4,
        static_cast<std::uint64_t>(rows + cols * 7));
    auto cfg = HierarchyConfig::fromPaperNotation(top_down);
    SmashMatrix m = SmashMatrix::fromCoo(coo, cfg);
    EXPECT_TRUE(m.checkInvariants());
    EXPECT_TRUE(m.toDense().approxEquals(coo.toDense(), 0.0));
    EXPECT_EQ(m.nnz(), coo.nnz());

    // The cursor must visit exactly the set bits of Bitmap-0.
    BlockCursor cursor(m);
    BlockPosition pos;
    Index blocks = 0;
    while (cursor.next(pos))
        ++blocks;
    EXPECT_EQ(blocks, m.numBlocks());
}

INSTANTIATE_TEST_SUITE_P(
    ConfigsAndShapes, SmashRoundTrip,
    ::testing::Combine(
        ::testing::Values(std::vector<Index>{2},
                          std::vector<Index>{4, 2},
                          std::vector<Index>{16, 4, 2},
                          std::vector<Index>{8, 4, 8},
                          std::vector<Index>{2, 4, 2}),
        ::testing::Values<Index>(1, 17, 64),
        ::testing::Values<Index>(1, 33, 64),
        ::testing::Values(0.02, 0.3)));

TEST(SmashStorage, CompactBeatsCsrOnDenseClustered)
{
    // A dense-ish clustered matrix: SMASH's Fig. 19 win case.
    fmt::CooMatrix coo = wl::genClustered(256, 256, 6000, 8, 99);
    SmashMatrix m = SmashMatrix::fromCoo(coo, HierarchyConfig({2, 4, 16}));
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    EXPECT_LT(m.storageBytesCompact(), csr.storageBytes());
}

TEST(SmashStorage, CsrBeatsSmashOnExtremeSparsity)
{
    // Very sparse scatter with nnz >> rows, as in M1-M4: every
    // non-zero sits alone in its block, so the NZA pads heavily and
    // CSR's 12 bytes/nnz win (Fig. 19 left side).
    fmt::CooMatrix coo = wl::genUniform(512, 512, 2000, 7);
    SmashMatrix m = SmashMatrix::fromCoo(coo, HierarchyConfig({2, 4, 16}));
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    EXPECT_GT(m.storageBytesCompact(), csr.storageBytes());
}

} // namespace
} // namespace smash::core
