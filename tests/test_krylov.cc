/**
 * @file
 * Tests for the extended §5.2.1 solver stack: sparse triangular
 * solves, ILU(0) factorization (including the defining property
 * (LU)_ij == A_ij on A's pattern), preconditioned CG, BiCGSTAB and
 * Lanczos eigenvalue estimation — each over both CSR and SMASH
 * SpMV backends where applicable.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "formats/convert.hh"
#include "kernels/spgemm.hh"
#include "kernels/spmv.hh"
#include "kernels/sptrsv.hh"
#include "sim/exec_model.hh"
#include "solvers/ilu.hh"
#include "solvers/krylov.hh"
#include "workloads/matrix_gen.hh"

namespace smash::solve
{
namespace
{

using core::HierarchyConfig;
using core::SmashMatrix;
using sim::NativeExec;

std::vector<Value>
randomVector(Index n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Value> v(static_cast<std::size_t>(n));
    for (auto& x : v)
        x = Value(0.5) + static_cast<Value>(rng.uniform());
    return v;
}

/** Well-conditioned random lower-triangular CSR (diag stored). */
fmt::CsrMatrix
randomLower(Index n, Index extra_per_row, std::uint64_t seed)
{
    Rng rng(seed);
    fmt::CooMatrix coo(n, n);
    for (Index i = 0; i < n; ++i) {
        coo.add(i, i, 2.0 + rng.uniform());
        for (Index k = 0; k < std::min(extra_per_row, i); ++k) {
            Index c = static_cast<Index>(
                rng.below(static_cast<std::uint64_t>(i)));
            coo.add(i, c, 0.25 * (rng.uniform() - 0.5));
        }
    }
    coo.canonicalize();
    return fmt::CsrMatrix::fromCoo(coo);
}

// ------------------------------------------------------------ SpTRSV

TEST(Sptrsv, LowerSolveInvertsMultiplication)
{
    fmt::CsrMatrix l = randomLower(64, 3, 5);
    std::vector<Value> x_true = randomVector(64, 6);
    std::vector<Value> b(64, 0.0);
    NativeExec e;
    kern::spmvCsr(l, x_true, b, e);
    std::vector<Value> x(64, 0.0);
    kern::sptrsvLowerCsr(l, b, x, e);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Sptrsv, UpperSolveInvertsMultiplication)
{
    fmt::CsrMatrix l = randomLower(48, 2, 7);
    fmt::CsrMatrix u = fmt::transpose(l);
    std::vector<Value> x_true = randomVector(48, 8);
    std::vector<Value> b(48, 0.0);
    NativeExec e;
    kern::spmvCsr(u, x_true, b, e);
    std::vector<Value> x(48, 0.0);
    kern::sptrsvUpperCsr(u, b, x, e);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Sptrsv, UnitDiagonalSkipsDivision)
{
    // L with implicit unit diagonal: solve with strictly-lower part.
    fmt::CooMatrix coo(3, 3);
    coo.add(1, 0, 2.0);
    coo.add(2, 1, -1.0);
    coo.canonicalize();
    fmt::CsrMatrix l = fmt::CsrMatrix::fromCoo(coo);
    std::vector<Value> b{1.0, 1.0, 1.0};
    std::vector<Value> x(3, 0.0);
    NativeExec e;
    kern::sptrsvLowerCsr(l, b, x, e, /*unit_diagonal=*/true);
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], -1.0, 1e-12);  // 1 - 2*1
    EXPECT_NEAR(x[2], 0.0, 1e-12);   // 1 - (-1)*(-1)
}

TEST(Sptrsv, RejectsEntriesOnWrongSide)
{
    fmt::CooMatrix coo(3, 3);
    coo.add(0, 0, 1.0);
    coo.add(0, 2, 1.0); // above the diagonal
    coo.add(1, 1, 1.0);
    coo.add(2, 2, 1.0);
    coo.canonicalize();
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo);
    std::vector<Value> b(3, 1.0), x(3, 0.0);
    NativeExec e;
    EXPECT_THROW(kern::sptrsvLowerCsr(a, b, x, e), FatalError);
}

TEST(Sptrsv, RejectsZeroDiagonal)
{
    fmt::CooMatrix coo(2, 2);
    coo.add(0, 0, 1.0);
    coo.add(1, 0, 1.0); // row 1 has no diagonal
    coo.canonicalize();
    fmt::CsrMatrix l = fmt::CsrMatrix::fromCoo(coo);
    std::vector<Value> b(2, 1.0), x(2, 0.0);
    NativeExec e;
    EXPECT_THROW(kern::sptrsvLowerCsr(l, b, x, e), FatalError);
}

// ------------------------------------------------------------- ILU(0)

TEST(Ilu0, DefiningPropertyOnPattern)
{
    // (L U)_ij == A_ij for every (i,j) in A's sparsity pattern.
    fmt::CooMatrix coo = wl::genPoisson2d(8, 8);
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo);
    Ilu0Factors f = ilu0(a);

    // Assemble L with its unit diagonal for the product check.
    fmt::CooMatrix l_coo = f.lower.toCoo();
    for (Index i = 0; i < a.rows(); ++i)
        l_coo.add(i, i, 1.0);
    l_coo.canonicalize();
    NativeExec e;
    fmt::CsrMatrix lu = kern::spgemmGustavson(
        fmt::CsrMatrix::fromCoo(l_coo), f.upper, e);

    for (const fmt::CooEntry& entry : coo.entries())
        EXPECT_NEAR(lu.at(entry.row, entry.col), entry.value, 1e-9)
            << "at (" << entry.row << "," << entry.col << ")";
}

TEST(Ilu0, ExactForTriangularPatterns)
{
    // A already lower triangular: ILU(0) reproduces A exactly
    // (L = unit strict lower of A D^-1 ... in fact U = diag row).
    fmt::CsrMatrix a = randomLower(32, 3, 17);
    Ilu0Factors f = ilu0(a);
    // Solve with the factors and compare against direct solve on A.
    std::vector<Value> x_true = randomVector(32, 18);
    std::vector<Value> b(32, 0.0);
    NativeExec e;
    kern::spmvCsr(a, x_true, b, e);
    Ilu0Preconditioner precond(std::move(f));
    std::vector<Value> x(32, 0.0);
    precond(b, x, e);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Ilu0, RequiresStoredDiagonal)
{
    fmt::CooMatrix coo(2, 2);
    coo.add(0, 1, 1.0);
    coo.add(1, 0, 1.0);
    coo.canonicalize();
    EXPECT_THROW(ilu0(fmt::CsrMatrix::fromCoo(coo)), FatalError);
}

TEST(Ilu0, RequiresSquare)
{
    fmt::CooMatrix coo = wl::genUniform(4, 6, 10, 3);
    EXPECT_THROW(ilu0(fmt::CsrMatrix::fromCoo(coo)), FatalError);
}

// ---------------------------------------------------- Preconditioned CG

struct CsrOp
{
    const fmt::CsrMatrix& a;
    void
    operator()(const std::vector<Value>& x, std::vector<Value>& y) const
    {
        NativeExec e;
        kern::spmvCsr(a, x, y, e);
    }
};

TEST(Pcg, Ilu0ConvergesFasterThanUnpreconditioned)
{
    fmt::CooMatrix coo = wl::genPoisson2d(16, 16);
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo);
    std::vector<Value> b = randomVector(a.rows(), 4);
    NativeExec e;

    std::vector<Value> x0(b.size(), 0.0);
    IdentityPreconditioner ident;
    SolveReport plain = preconditionedCg(
        CsrOp{a},
        [&](const std::vector<Value>& r, std::vector<Value>& z,
            NativeExec& ee) { ident(r, z, ee); },
        b, x0, 1e-10, 500, e);

    std::vector<Value> x1(b.size(), 0.0);
    Ilu0Preconditioner ilu_pc(ilu0(a));
    SolveReport pc = preconditionedCg(
        CsrOp{a},
        [&](const std::vector<Value>& r, std::vector<Value>& z,
            NativeExec& ee) { ilu_pc(r, z, ee); },
        b, x1, 1e-10, 500, e);

    EXPECT_TRUE(plain.converged);
    EXPECT_TRUE(pc.converged);
    EXPECT_LT(pc.iterations, plain.iterations);

    // Both reach the same solution.
    for (std::size_t i = 0; i < x0.size(); ++i)
        EXPECT_NEAR(x0[i], x1[i], 1e-6);
}

TEST(Pcg, JacobiPreconditionerSolvesPoisson)
{
    fmt::CooMatrix coo = wl::genPoisson2d(12, 12);
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo);
    std::vector<Value> diag(static_cast<std::size_t>(a.rows()), 4.0);
    std::vector<Value> b = randomVector(a.rows(), 9);
    std::vector<Value> x(b.size(), 0.0);
    NativeExec e;
    JacobiPreconditioner jac(diag);
    SolveReport rep = preconditionedCg(
        CsrOp{a},
        [&](const std::vector<Value>& r, std::vector<Value>& z,
            NativeExec& ee) { jac(r, z, ee); },
        b, x, 1e-10, 500, e);
    EXPECT_TRUE(rep.converged);

    // Residual check against the operator.
    std::vector<Value> ax(b.size(), 0.0);
    kern::spmvCsr(a, x, ax, e);
    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_NEAR(ax[i], b[i], 1e-7);
}

TEST(Pcg, SmashBackendMatchesCsrBackend)
{
    fmt::CooMatrix coo = wl::genPoisson2d(10, 10);
    fmt::CsrMatrix a_csr = fmt::CsrMatrix::fromCoo(coo);
    SmashMatrix a_smash = SmashMatrix::fromCoo(
        coo, HierarchyConfig::fromPaperNotation({16, 4, 2}));
    std::vector<Value> b = randomVector(a_csr.rows(), 14);
    NativeExec e;
    IdentityPreconditioner ident;

    std::vector<Value> x_csr(b.size(), 0.0), x_smash(b.size(), 0.0);
    preconditionedCg(
        CsrOp{a_csr},
        [&](const std::vector<Value>& r, std::vector<Value>& z,
            NativeExec& ee) { ident(r, z, ee); },
        b, x_csr, 1e-10, 500, e);

    auto smash_op = [&](const std::vector<Value>& x, std::vector<Value>& y) {
        NativeExec ee;
        std::vector<Value> xp(x);
        xp.resize(static_cast<std::size_t>(a_smash.paddedCols()), 0.0);
        kern::spmvSmashSw(a_smash, xp, y, ee);
    };
    preconditionedCg(
        smash_op,
        [&](const std::vector<Value>& r, std::vector<Value>& z,
            NativeExec& ee) { ident(r, z, ee); },
        b, x_smash, 1e-10, 500, e);

    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_NEAR(x_csr[i], x_smash[i], 1e-7);
}

// ------------------------------------------------------------ BiCGSTAB

TEST(Bicgstab, SolvesNonSymmetricSystem)
{
    fmt::CooMatrix coo = wl::genDiagDominant(120, 6, 1.0, 42);
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo);
    std::vector<Value> x_true = randomVector(120, 43);
    std::vector<Value> b(120, 0.0);
    NativeExec e;
    kern::spmvCsr(a, x_true, b, e);

    std::vector<Value> x(120, 0.0);
    SolveReport rep = bicgstab(CsrOp{a}, b, x, 1e-12, 400, e);
    EXPECT_TRUE(rep.converged);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

TEST(Bicgstab, HandlesZeroRhs)
{
    fmt::CooMatrix coo = wl::genDiagDominant(16, 3, 1.0, 5);
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo);
    std::vector<Value> b(16, 0.0);
    std::vector<Value> x = randomVector(16, 6);
    NativeExec e;
    SolveReport rep = bicgstab(CsrOp{a}, b, x, 1e-12, 100, e);
    EXPECT_TRUE(rep.converged);
    for (Value v : x)
        EXPECT_EQ(v, Value(0));
}

TEST(Bicgstab, DimensionMismatchThrows)
{
    fmt::CooMatrix coo = wl::genDiagDominant(8, 2, 1.0, 5);
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo);
    std::vector<Value> b(8, 1.0), x(7, 0.0);
    NativeExec e;
    EXPECT_THROW(bicgstab(CsrOp{a}, b, x, 1e-10, 10, e), FatalError);
}

// ------------------------------------------------------------- Lanczos

TEST(TridiagEigen, DiagonalMatrixIsItsOwnSpectrum)
{
    auto ev = symTridiagEigenvalues({3.0, 1.0, 2.0}, {0.0, 0.0});
    ASSERT_EQ(ev.size(), 3u);
    EXPECT_NEAR(ev[0], 1.0, 1e-12);
    EXPECT_NEAR(ev[1], 2.0, 1e-12);
    EXPECT_NEAR(ev[2], 3.0, 1e-12);
}

TEST(TridiagEigen, TwoByTwoAnalytic)
{
    // [[2, 1], [1, 2]] -> {1, 3}.
    auto ev = symTridiagEigenvalues({2.0, 2.0}, {1.0});
    ASSERT_EQ(ev.size(), 2u);
    EXPECT_NEAR(ev[0], 1.0, 1e-12);
    EXPECT_NEAR(ev[1], 3.0, 1e-12);
}

TEST(TridiagEigen, UniformTridiagonalMatchesClosedForm)
{
    // (-1, 2, -1) of size n: lambda_k = 2 - 2 cos(k pi / (n+1)).
    const int n = 12;
    std::vector<double> alpha(n, 2.0), beta(n - 1, -1.0);
    auto ev = symTridiagEigenvalues(alpha, beta);
    ASSERT_EQ(ev.size(), static_cast<std::size_t>(n));
    for (int k = 1; k <= n; ++k) {
        double expected = 2.0 - 2.0 * std::cos(k * M_PI / (n + 1));
        EXPECT_NEAR(ev[static_cast<std::size_t>(k - 1)], expected, 1e-10);
    }
}

TEST(TridiagEigen, RejectsMismatchedLengths)
{
    EXPECT_THROW(symTridiagEigenvalues({1.0, 2.0}, {0.5, 0.5}), FatalError);
}

TEST(Lanczos, RecoversPoissonExtremeEigenvalues)
{
    // 1-D Poisson (tridiagonal -1/2/-1) has a known spectrum; a
    // modest Lanczos run must bracket it tightly at both ends.
    const Index n = 64;
    fmt::CooMatrix coo(n, n);
    for (Index i = 0; i < n; ++i) {
        coo.add(i, i, 2.0);
        if (i > 0)
            coo.add(i, i - 1, -1.0);
        if (i + 1 < n)
            coo.add(i, i + 1, -1.0);
    }
    coo.canonicalize();
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo);
    NativeExec e;
    LanczosResult lr = lanczos(CsrOp{a}, randomVector(n, 77), 48, e);
    auto ritz = lr.ritzValues();
    ASSERT_FALSE(ritz.empty());

    // The Poisson spectrum clusters at both ends, so extreme Ritz
    // values converge only polynomially; bracket at 1e-4.
    const double lambda_max =
        2.0 - 2.0 * std::cos(static_cast<double>(n) * M_PI / (n + 1));
    const double lambda_min = 2.0 - 2.0 * std::cos(M_PI / (n + 1));
    EXPECT_NEAR(ritz.back(), lambda_max, 1e-4);
    EXPECT_NEAR(ritz.front(), lambda_min, 1e-4);
    // Ritz values are interior to the true spectrum.
    EXPECT_LE(ritz.back(), lambda_max + 1e-12);
    EXPECT_GE(ritz.front(), lambda_min - 1e-12);
}

TEST(Lanczos, AgreesWithPowerMethodOnDominantEigenvalue)
{
    fmt::CooMatrix coo = wl::genPoisson2d(9, 9);
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo);
    NativeExec e;
    std::vector<Value> x = randomVector(a.rows(), 5);
    Value lambda_pm = powerMethod(CsrOp{a}, x, 1e-12, 3000, e);
    LanczosResult lr = lanczos(CsrOp{a}, randomVector(a.rows(), 6), 40, e);
    EXPECT_NEAR(lr.ritzValues().back(), static_cast<double>(lambda_pm),
                1e-5);
}

TEST(Lanczos, BreaksDownCleanlyOnLowRankOperator)
{
    // Identity: the Krylov space collapses after one step.
    const Index n = 10;
    fmt::CooMatrix coo(n, n);
    for (Index i = 0; i < n; ++i)
        coo.add(i, i, 1.0);
    coo.canonicalize();
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo);
    NativeExec e;
    LanczosResult lr = lanczos(CsrOp{a}, randomVector(n, 8), 5, e);
    EXPECT_TRUE(lr.brokeDown);
    auto ritz = lr.ritzValues();
    ASSERT_EQ(ritz.size(), 1u);
    EXPECT_NEAR(ritz[0], 1.0, 1e-12);
}

} // namespace
} // namespace smash::solve
