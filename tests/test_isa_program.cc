/**
 * @file
 * Tests for the ISA encoding layer and the program executor:
 * encode/decode round trips across the whole field space,
 * assembler/disassembler inverses, malformed-input rejection, and
 * end-to-end execution of Algorithm-1-style instruction streams
 * whose RDIND outputs must match the SmashMatrix block positions.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/smash_matrix.hh"
#include "isa/encoding.hh"
#include "isa/program.hh"
#include "sim/exec_model.hh"
#include "workloads/matrix_gen.hh"

namespace smash::isa
{
namespace
{

using core::HierarchyConfig;
using core::SmashMatrix;
using sim::NativeExec;

// ----------------------------------------------------------- encoding

TEST(Encoding, RoundTripsEveryOpcode)
{
    const Instruction cases[] = {
        Instruction::matinfo(1, 2, 0),
        Instruction::bmapinfo(3, 2, 1),
        Instruction::rdbmap(4, 1, 2),
        Instruction::pbmap(3),
        Instruction::rdind(5, 6, 0),
    };
    for (const Instruction& inst : cases) {
        EXPECT_EQ(decode(encode(inst)), inst)
            << "round trip failed for " << toAssembly(inst);
    }
}

TEST(Encoding, FieldSweepRoundTrips)
{
    // Exhaust group x register-corner combinations.
    for (int grp = 0; grp < Bmu::kGroups; ++grp) {
        for (int r : {0, 1, 15, 30, 31}) {
            for (int imm : {0, 1, 2, 15}) {
                Instruction inst = Instruction::rdbmap(r, imm, grp);
                EXPECT_EQ(decode(encode(inst)), inst);
            }
        }
    }
}

TEST(Encoding, DistinctInstructionsGetDistinctWords)
{
    EXPECT_NE(encode(Instruction::pbmap(0)), encode(Instruction::pbmap(1)));
    EXPECT_NE(encode(Instruction::matinfo(1, 2, 0)),
              encode(Instruction::matinfo(2, 1, 0)));
}

TEST(Encoding, RejectsOutOfRangeFields)
{
    EXPECT_THROW(Instruction::matinfo(32, 0, 0), FatalError);
    EXPECT_THROW(Instruction::matinfo(-1, 0, 0), FatalError);
    EXPECT_THROW(Instruction::pbmap(Bmu::kGroups), FatalError);
    EXPECT_THROW(Instruction::bmapinfo(0, 16, 0), FatalError);
    EXPECT_THROW(Instruction::rdbmap(0, -1, 0), FatalError);
}

TEST(Encoding, RejectsUnknownOpcodeWord)
{
    // Opcode 0 and opcodes > kRdind are invalid.
    EXPECT_THROW(decode(0u), FatalError);
    EXPECT_THROW(decode(InstWord(60) << 26), FatalError);
}

// ---------------------------------------------------------- assembler

TEST(Assembler, ParsesEveryMnemonic)
{
    EXPECT_EQ(parseAssembly("matinfo r1, r2, g0"),
              Instruction::matinfo(1, 2, 0));
    EXPECT_EQ(parseAssembly("bmapinfo r3, 2, g1"),
              Instruction::bmapinfo(3, 2, 1));
    EXPECT_EQ(parseAssembly("rdbmap [r4], 1, g2"),
              Instruction::rdbmap(4, 1, 2));
    EXPECT_EQ(parseAssembly("pbmap g3"), Instruction::pbmap(3));
    EXPECT_EQ(parseAssembly("rdind r5, r6, g0"),
              Instruction::rdind(5, 6, 0));
}

TEST(Assembler, ToleratesWhitespaceAndComments)
{
    EXPECT_EQ(parseAssembly("  pbmap   g1   # scan next"),
              Instruction::pbmap(1));
    EXPECT_EQ(parseAssembly("\tmatinfo  r10 ,  r11 , g2"),
              Instruction::matinfo(10, 11, 2));
}

TEST(Assembler, DisassemblyIsInverse)
{
    const Instruction cases[] = {
        Instruction::matinfo(7, 8, 1),
        Instruction::bmapinfo(9, 0, 2),
        Instruction::rdbmap(10, 2, 3),
        Instruction::pbmap(0),
        Instruction::rdind(11, 12, 1),
    };
    for (const Instruction& inst : cases)
        EXPECT_EQ(parseAssembly(toAssembly(inst)), inst);
}

TEST(Assembler, RejectsMalformedInput)
{
    EXPECT_THROW(parseAssembly(""), FatalError);
    EXPECT_THROW(parseAssembly("   # only a comment"), FatalError);
    EXPECT_THROW(parseAssembly("nop g0"), FatalError);
    EXPECT_THROW(parseAssembly("pbmap"), FatalError);
    EXPECT_THROW(parseAssembly("pbmap g0, g1"), FatalError);
    EXPECT_THROW(parseAssembly("matinfo r1, r2"), FatalError);
    EXPECT_THROW(parseAssembly("matinfo x1, r2, g0"), FatalError);
    EXPECT_THROW(parseAssembly("rdbmap r4, 1, g0"), FatalError);
    EXPECT_THROW(parseAssembly("rdbmap [r4, 1, g0"), FatalError);
    EXPECT_THROW(parseAssembly("bmapinfo r3, lvl, g0"), FatalError);
    EXPECT_THROW(parseAssembly("pbmap g9"), FatalError);
}

TEST(Assembler, ProgramAssembleSkipsBlanksAndComments)
{
    BmuProgram program = BmuProgram::assemble(R"(
        # configure group 0
        matinfo r1, r2, g0

        bmapinfo r3, 0, g0   # Bitmap-0 ratio
        pbmap g0
    )");
    EXPECT_EQ(program.size(), 3u);
    EXPECT_EQ(decode(program.words()[0]), Instruction::matinfo(1, 2, 0));
}

TEST(Assembler, ProgramDisassembleRoundTrips)
{
    BmuProgram program;
    program.push(Instruction::matinfo(1, 2, 0))
        .push(Instruction::bmapinfo(3, 1, 0))
        .push(Instruction::pbmap(0));
    BmuProgram again = BmuProgram::assemble(program.disassemble());
    EXPECT_EQ(again.words(), program.words());
}

// ----------------------------------------------------------- executor

/** Algorithm 1 configuration prologue as an instruction stream. */
BmuProgram
spmvPrologue(int levels)
{
    BmuProgram program;
    program.push(Instruction::matinfo(1, 2, 0));
    for (int lvl = levels - 1; lvl >= 0; --lvl)
        program.push(Instruction::bmapinfo(10 + lvl, lvl, 0));
    for (int lvl = levels - 1; lvl >= 0; --lvl)
        program.push(Instruction::rdbmap(20 + lvl, lvl, 0));
    return program;
}

TEST(Executor, Algorithm1StreamEnumeratesAllBlocks)
{
    fmt::CooMatrix coo = wl::genUniform(32, 32, 150, 5);
    HierarchyConfig cfg = HierarchyConfig::fromPaperNotation({16, 4, 2});
    SmashMatrix a = SmashMatrix::fromCoo(coo, cfg);

    Bmu bmu;
    NativeExec e;
    BmuExecutor<NativeExec> cpu(bmu, e);

    // Register setup mirrors Algorithm 1 lines 2-8.
    cpu.setRegister(1, static_cast<std::uint64_t>(a.rows()));
    cpu.setRegister(2, static_cast<std::uint64_t>(a.paddedCols()));
    for (int lvl = 0; lvl < cfg.levels(); ++lvl) {
        cpu.setRegister(10 + lvl,
                        static_cast<std::uint64_t>(cfg.ratio(lvl)));
        std::uint64_t addr = 0x1000u + static_cast<std::uint64_t>(lvl);
        cpu.setRegister(20 + lvl, addr);
        cpu.mapBitmap(addr, &a.hierarchy().level(lvl));
    }
    cpu.run(spmvPrologue(cfg.levels()));

    // Drive PBMAP/RDIND until exhaustion; positions must match the
    // library's own block enumeration.
    Instruction pbmap = Instruction::pbmap(0);
    Instruction rdind = Instruction::rdind(5, 6, 0);
    Index blocks = 0;
    Index bit = a.hierarchy().level(0).findNextSet(0);
    while (cpu.step(pbmap)) {
        cpu.step(rdind);
        Index row = static_cast<Index>(cpu.getRegister(5));
        Index col = static_cast<Index>(cpu.getRegister(6));
        ASSERT_GE(bit, 0) << "BMU produced more blocks than Bitmap-0";
        core::BlockPosition expect = a.positionOfBit(bit);
        EXPECT_EQ(row, expect.row);
        EXPECT_EQ(col, expect.colStart);
        bit = a.hierarchy().level(0).findNextSet(bit + 1);
        ++blocks;
    }
    EXPECT_EQ(blocks, a.numBlocks());
    EXPECT_FALSE(cpu.lastPbmapValid());
}

TEST(Executor, TraceRecordsPbmapAndRdind)
{
    fmt::CooMatrix coo(4, 4);
    coo.add(1, 2, 5.0);
    coo.canonicalize();
    SmashMatrix a = SmashMatrix::fromCoo(
        coo, HierarchyConfig::fromPaperNotation({2}));

    Bmu bmu;
    NativeExec e;
    BmuExecutor<NativeExec> cpu(bmu, e);
    cpu.setRegister(1, static_cast<std::uint64_t>(a.rows()));
    cpu.setRegister(2, static_cast<std::uint64_t>(a.paddedCols()));
    cpu.setRegister(10, 2);
    cpu.setRegister(20, 0x2000u);
    cpu.mapBitmap(0x2000u, &a.hierarchy().level(0));

    BmuProgram program = BmuProgram::assemble(R"(
        matinfo r1, r2, g0
        bmapinfo r10, 0, g0
        rdbmap [r20], 0, g0
        pbmap g0
        rdind r5, r6, g0
        pbmap g0
    )");
    std::vector<TraceEntry> trace;
    cpu.run(program, &trace);

    ASSERT_EQ(trace.size(), 6u);
    EXPECT_TRUE(trace[3].pbmapValid);
    EXPECT_EQ(trace[4].rowOut, 1);
    EXPECT_EQ(trace[4].colOut, 2);
    EXPECT_FALSE(trace[5].pbmapValid); // only one block exists
    std::string text = formatTrace(trace);
    EXPECT_NE(text.find("block found"), std::string::npos);
    EXPECT_NE(text.find("exhausted"), std::string::npos);
    EXPECT_NE(text.find("row=1 col=2"), std::string::npos);
}

TEST(Executor, RdbmapWithUnmappedAddressThrows)
{
    Bmu bmu;
    NativeExec e;
    BmuExecutor<NativeExec> cpu(bmu, e);
    cpu.setRegister(4, 0xdead);
    EXPECT_THROW(cpu.step(Instruction::rdbmap(4, 0, 0)), FatalError);
}

TEST(Executor, RegisterAccessorsValidate)
{
    Bmu bmu;
    NativeExec e;
    BmuExecutor<NativeExec> cpu(bmu, e);
    EXPECT_THROW(cpu.setRegister(-1, 0), FatalError);
    EXPECT_THROW(cpu.getRegister(32), FatalError);
    cpu.setRegister(31, 77);
    EXPECT_EQ(cpu.getRegister(31), 77u);
}

} // namespace
} // namespace smash::isa
