/**
 * @file
 * Correctness and cost-model tests for every kernel variant: all
 * SpMV/SpMM/SpAdd encodings must agree with the dense oracle on
 * randomized inputs, and the simulated cost relationships the paper
 * depends on (ideal < CSR instructions; SMASH-HW fewer instructions
 * than CSR; dependent-load counts) must hold.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "formats/convert.hh"
#include "kernels/reference.hh"
#include "sim/exec_model.hh"
#include "kernels/spadd.hh"
#include "kernels/spmm.hh"
#include "kernels/spmv.hh"
#include "workloads/matrix_gen.hh"

namespace smash::kern
{
namespace
{

using core::HierarchyConfig;
using core::SmashMatrix;
using sim::Machine;
using sim::NativeExec;
using sim::SimExec;

std::vector<Value>
randomVector(Index n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Value> v(static_cast<std::size_t>(n));
    for (auto& x : v)
        x = Value(0.25) + static_cast<Value>(rng.uniform());
    return v;
}

struct SpmvCase
{
    Index rows;
    Index cols;
    Index nnz;
    std::vector<Index> config; // paper top-down notation
    int structure;             // 0 uniform, 1 clustered, 2 powerlaw
};

fmt::CooMatrix
makeMatrix(Index rows, Index cols, Index nnz, int structure,
           std::uint64_t seed)
{
    switch (structure) {
      case 1:
        return wl::genClustered(rows, cols, nnz, 4, seed);
      case 2:
        return wl::genPowerLaw(rows, cols, nnz, 0.8, seed);
      default:
        return wl::genUniform(rows, cols, nnz, seed);
    }
}

class SpmvAllVariants : public ::testing::TestWithParam<SpmvCase>
{
};

TEST_P(SpmvAllVariants, MatchOracle)
{
    const SpmvCase& tc = GetParam();
    fmt::CooMatrix coo = makeMatrix(tc.rows, tc.cols, tc.nnz,
                                    tc.structure, 77);
    fmt::DenseMatrix dense = coo.toDense();
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    fmt::BcsrMatrix bcsr = fmt::BcsrMatrix::fromCoo(coo, 4, 4);
    auto cfg = HierarchyConfig::fromPaperNotation(tc.config);
    SmashMatrix smash = SmashMatrix::fromCoo(coo, cfg);

    std::vector<Value> x = randomVector(tc.cols, 31);
    std::vector<Value> oracle(static_cast<std::size_t>(tc.rows), 0);
    denseSpmv(dense, x, oracle);

    NativeExec e;
    auto check = [&](std::vector<Value>& y, const char* what) {
        ASSERT_EQ(y.size(), oracle.size());
        for (std::size_t i = 0; i < y.size(); ++i)
            ASSERT_NEAR(y[i], oracle[i], 1e-9) << what << " row " << i;
    };

    {
        std::vector<Value> y(static_cast<std::size_t>(tc.rows), 0);
        spmvCsr(csr, x, y, e);
        check(y, "csr");
    }
    {
        std::vector<Value> y(static_cast<std::size_t>(tc.rows), 0);
        spmvCsrIdeal(csr, x, y, e);
        check(y, "csr-ideal");
    }
    {
        std::vector<Value> y(static_cast<std::size_t>(tc.rows), 0);
        spmvCsrUnrolled(csr, x, y, e);
        check(y, "csr-unrolled");
    }
    {
        std::vector<Value> xb = padVector(
            x, static_cast<Index>(roundUp(
                static_cast<std::uint64_t>(tc.cols), 4)));
        std::vector<Value> y(static_cast<std::size_t>(tc.rows), 0);
        spmvBcsr(bcsr, xb, y, e);
        check(y, "bcsr");
    }
    {
        std::vector<Value> xp = padVector(x, smash.paddedCols());
        std::vector<Value> y(static_cast<std::size_t>(tc.rows), 0);
        spmvSmashSw(smash, xp, y, e);
        check(y, "smash-sw");
    }
    {
        std::vector<Value> xp = padVector(x, smash.paddedCols());
        std::vector<Value> y(static_cast<std::size_t>(tc.rows), 0);
        isa::Bmu bmu;
        spmvSmashHw(smash, bmu, xp, y, e);
        check(y, "smash-hw");
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SpmvAllVariants,
    ::testing::Values(
        SpmvCase{1, 1, 1, {2}, 0},
        SpmvCase{30, 30, 90, {4, 2}, 0},
        SpmvCase{64, 64, 400, {16, 4, 2}, 1},
        SpmvCase{100, 50, 300, {16, 4, 2}, 0},
        SpmvCase{50, 100, 600, {8, 4, 2}, 1},
        SpmvCase{128, 128, 2000, {2, 4, 2}, 2},
        SpmvCase{77, 91, 777, {8, 4, 8}, 1},
        SpmvCase{200, 200, 200, {16, 4, 2}, 2}));

class SpmvBaselineFormats
    : public ::testing::TestWithParam<std::tuple<Index, Index, Index>>
{
};

TEST_P(SpmvBaselineFormats, CooAndCscMatchOracle)
{
    auto [rows, cols, nnz] = GetParam();
    fmt::CooMatrix coo = makeMatrix(rows, cols, nnz, 0, 88);
    fmt::CscMatrix csc = fmt::CscMatrix::fromCoo(coo);
    std::vector<Value> x = randomVector(cols, 11);
    std::vector<Value> oracle(static_cast<std::size_t>(rows), 0);
    denseSpmv(coo.toDense(), x, oracle);

    NativeExec e;
    std::vector<Value> y1(static_cast<std::size_t>(rows), 0);
    spmvCoo(coo, x, y1, e);
    std::vector<Value> y2(static_cast<std::size_t>(rows), 0);
    spmvCsc(csc, x, y2, e);
    for (std::size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_NEAR(y1[i], oracle[i], 1e-9) << "coo row " << i;
        EXPECT_NEAR(y2[i], oracle[i], 1e-9) << "csc row " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpmvBaselineFormats,
    ::testing::Values(std::make_tuple<Index, Index, Index>(1, 1, 1),
                      std::make_tuple<Index, Index, Index>(40, 60, 300),
                      std::make_tuple<Index, Index, Index>(60, 40, 300),
                      std::make_tuple<Index, Index, Index>(128, 128,
                                                           1000)));

TEST(SpmvCost, IdealUsesFewerInstructionsThanCsr)
{
    fmt::CooMatrix coo = wl::genUniform(256, 256, 4000, 3);
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    std::vector<Value> x = randomVector(256, 4);

    Machine m_csr, m_ideal;
    SimExec e_csr(m_csr), e_ideal(m_ideal);
    std::vector<Value> y1(256, 0), y2(256, 0);
    spmvCsr(csr, x, y1, e_csr);
    spmvCsrIdeal(csr, x, y2, e_ideal);

    EXPECT_LT(m_ideal.core().instructions(),
              m_csr.core().instructions());
    EXPECT_LT(m_ideal.core().cycles(), m_csr.core().cycles());
    // The paper's Fig. 3 band: roughly 40-50% fewer instructions.
    double ratio = static_cast<double>(m_ideal.core().instructions()) /
        static_cast<double>(m_csr.core().instructions());
    EXPECT_LT(ratio, 0.8);
    EXPECT_GT(ratio, 0.3);
}

TEST(SpmvCost, CsrChasesPointersSmashHwDoesNot)
{
    fmt::CooMatrix coo = wl::genClustered(256, 256, 4000, 4, 5);
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    SmashMatrix smash = SmashMatrix::fromCoo(
        coo, HierarchyConfig::fromPaperNotation({16, 4, 2}));
    std::vector<Value> x = randomVector(256, 6);

    Machine m_csr;
    SimExec e_csr(m_csr);
    std::vector<Value> y1(256, 0);
    spmvCsr(csr, x, y1, e_csr);
    double csr_stall = m_csr.core().stallCycles();

    Machine m_hw;
    SimExec e_hw(m_hw);
    isa::Bmu bmu;
    std::vector<Value> xp = padVector(x, smash.paddedCols());
    std::vector<Value> y2(256, 0);
    spmvSmashHw(smash, bmu, xp, y2, e_hw);

    EXPECT_LT(m_hw.core().instructions(), m_csr.core().instructions());
    EXPECT_LT(m_hw.core().stallCycles(), csr_stall);
}

struct SpmmCase
{
    Index m, k, n;  // A is m x k, B is k x n
    Index nnz_a, nnz_b;
    Index block;
};

class SpmmAllVariants : public ::testing::TestWithParam<SpmmCase>
{
};

TEST_P(SpmmAllVariants, MatchOracle)
{
    const SpmmCase& tc = GetParam();
    fmt::CooMatrix coo_a = wl::genClustered(tc.m, tc.k, tc.nnz_a, 3, 21);
    fmt::CooMatrix coo_b = wl::genClustered(tc.k, tc.n, tc.nnz_b, 3, 22);
    fmt::DenseMatrix da = coo_a.toDense();
    fmt::DenseMatrix db = coo_b.toDense();
    fmt::DenseMatrix oracle(tc.m, tc.n);
    denseSpmm(da, db, oracle);

    fmt::CsrMatrix a_csr = fmt::CsrMatrix::fromCoo(coo_a);
    fmt::CscMatrix b_csc = fmt::CscMatrix::fromCoo(coo_b);
    fmt::CsrMatrix bt_csr = fmt::transpose(a_csr); // unused shape aid
    NativeExec e;

    {
        fmt::DenseMatrix c(tc.m, tc.n);
        spmmCsr(a_csr, b_csc, c, e);
        EXPECT_TRUE(c.approxEquals(oracle, 1e-9)) << "csr";
    }
    {
        fmt::DenseMatrix c(tc.m, tc.n);
        spmmCsrIdeal(a_csr, b_csc, c, e);
        EXPECT_TRUE(c.approxEquals(oracle, 1e-9)) << "csr-ideal";
    }
    {
        fmt::CooMatrix coo_bt = fmt::transpose(
            fmt::CsrMatrix::fromCoo(coo_b)).toCoo();
        fmt::BcsrMatrix a_b = fmt::BcsrMatrix::fromCoo(coo_a, 4, 4);
        fmt::BcsrMatrix bt_b = fmt::BcsrMatrix::fromCoo(coo_bt, 4, 4);
        fmt::DenseMatrix c(tc.m, tc.n);
        spmmBcsr(a_b, bt_b, c, e);
        EXPECT_TRUE(c.approxEquals(oracle, 1e-9)) << "bcsr";
    }
    {
        HierarchyConfig cfg({tc.block});
        fmt::CooMatrix coo_bt = fmt::transpose(
            fmt::CsrMatrix::fromCoo(coo_b)).toCoo();
        SmashMatrix a_s = SmashMatrix::fromCoo(coo_a, cfg);
        SmashMatrix bt_s = SmashMatrix::fromCoo(coo_bt, cfg);
        fmt::DenseMatrix c1(tc.m, tc.n);
        spmmSmashSw(a_s, bt_s, c1, e);
        EXPECT_TRUE(c1.approxEquals(oracle, 1e-9)) << "smash-sw";

        fmt::DenseMatrix c2(tc.m, tc.n);
        isa::Bmu bmu;
        spmmSmashHw(a_s, bt_s, bmu, c2, e);
        EXPECT_TRUE(c2.approxEquals(oracle, 1e-9)) << "smash-hw";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SpmmAllVariants,
    ::testing::Values(
        SpmmCase{8, 8, 8, 16, 16, 2},
        SpmmCase{32, 24, 16, 100, 80, 2},
        SpmmCase{48, 48, 48, 300, 300, 4},
        SpmmCase{20, 64, 12, 200, 150, 8},
        SpmmCase{64, 32, 64, 256, 256, 2}));

TEST(SpmmCost, IdealCutsInstructionsHard)
{
    // Index matching dominates SpMM, so the ideal gap should exceed
    // the SpMV gap (paper: 65% vs 42% fewer instructions).
    fmt::CooMatrix coo_a = wl::genUniform(96, 96, 1200, 31);
    fmt::CooMatrix coo_b = wl::genUniform(96, 64, 800, 32);
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo_a);
    fmt::CscMatrix b = fmt::CscMatrix::fromCoo(coo_b);

    Machine m_csr, m_ideal;
    SimExec e1(m_csr), e2(m_ideal);
    fmt::DenseMatrix c1(96, 64), c2(96, 64);
    spmmCsr(a, b, c1, e1);
    spmmCsrIdeal(a, b, c2, e2);
    double ratio = static_cast<double>(m_ideal.core().instructions()) /
        static_cast<double>(m_csr.core().instructions());
    EXPECT_LT(ratio, 0.6);
}

TEST(SpmmCost, SmashHwBeatsCsr)
{
    fmt::CooMatrix coo_a = wl::genClustered(96, 96, 1500, 4, 41);
    fmt::CooMatrix coo_b = wl::genClustered(96, 64, 1000, 4, 42);
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo_a);
    fmt::CscMatrix b = fmt::CscMatrix::fromCoo(coo_b);
    HierarchyConfig cfg({4});
    SmashMatrix a_s = SmashMatrix::fromCoo(coo_a, cfg);
    SmashMatrix bt_s = SmashMatrix::fromCoo(
        fmt::transpose(fmt::CsrMatrix::fromCoo(coo_b)).toCoo(), cfg);

    Machine m_csr, m_hw;
    SimExec e1(m_csr), e2(m_hw);
    fmt::DenseMatrix c1(96, 64), c2(96, 64);
    spmmCsr(a, b, c1, e1);
    isa::Bmu bmu;
    spmmSmashHw(a_s, bt_s, bmu, c2, e2);
    EXPECT_TRUE(c1.approxEquals(c2, 1e-9));
    EXPECT_LT(m_hw.core().instructions(), m_csr.core().instructions());
    EXPECT_LT(m_hw.core().cycles(), m_csr.core().cycles());
}

class SpaddVariants
    : public ::testing::TestWithParam<std::tuple<Index, Index, Index>>
{
};

TEST_P(SpaddVariants, MatchOracle)
{
    auto [rows, cols, nnz] = GetParam();
    fmt::CooMatrix coo_a = wl::genUniform(rows, cols, nnz, 51);
    fmt::CooMatrix coo_b = wl::genClustered(rows, cols, nnz, 3, 52);
    fmt::DenseMatrix oracle(rows, cols);
    denseSpadd(coo_a.toDense(), coo_b.toDense(), oracle);

    NativeExec e;
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo_a);
    fmt::CsrMatrix b = fmt::CsrMatrix::fromCoo(coo_b);
    {
        fmt::CooMatrix c = spaddCsr(a, b, e);
        EXPECT_TRUE(c.toDense().approxEquals(oracle, 1e-12)) << "csr";
    }
    {
        fmt::CooMatrix c = spaddCsrIdeal(a, b, e);
        EXPECT_TRUE(c.toDense().approxEquals(oracle, 1e-12)) << "ideal";
    }
    {
        HierarchyConfig cfg({2, 4});
        SmashMatrix sa = SmashMatrix::fromCoo(coo_a, cfg);
        SmashMatrix sb = SmashMatrix::fromCoo(coo_b, cfg);
        SmashMatrix sc = spaddSmash(sa, sb, e);
        EXPECT_TRUE(sc.checkInvariants());
        EXPECT_TRUE(sc.toDense().approxEquals(oracle, 1e-12)) << "smash";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SpaddVariants,
    ::testing::Values(std::make_tuple<Index, Index, Index>(16, 16, 40),
                      std::make_tuple<Index, Index, Index>(64, 64, 500),
                      std::make_tuple<Index, Index, Index>(33, 65, 200),
                      std::make_tuple<Index, Index, Index>(128, 16, 300)));

TEST(SpaddSmash, CancellationDropsBlocks)
{
    fmt::CooMatrix coo_a(4, 4);
    coo_a.add(0, 0, 2.0);
    coo_a.add(2, 2, 1.0);
    coo_a.canonicalize();
    fmt::CooMatrix coo_b(4, 4);
    coo_b.add(0, 0, -2.0);
    coo_b.add(2, 2, 1.0);
    coo_b.canonicalize();
    HierarchyConfig cfg({2, 2});
    NativeExec e;
    SmashMatrix c = spaddSmash(SmashMatrix::fromCoo(coo_a, cfg),
                               SmashMatrix::fromCoo(coo_b, cfg), e);
    EXPECT_TRUE(c.checkInvariants());
    EXPECT_EQ(c.nnz(), 1);
    EXPECT_EQ(c.numBlocks(), 1);
    EXPECT_DOUBLE_EQ(c.toDense().at(2, 2), 2.0);
}

TEST(SpaddCost, IdealUsesFewerInstructions)
{
    fmt::CooMatrix coo_a = wl::genUniform(128, 128, 1500, 61);
    fmt::CooMatrix coo_b = wl::genUniform(128, 128, 1500, 62);
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo_a);
    fmt::CsrMatrix b = fmt::CsrMatrix::fromCoo(coo_b);
    Machine m1, m2;
    SimExec e1(m1), e2(m2);
    spaddCsr(a, b, e1);
    spaddCsrIdeal(a, b, e2);
    double ratio = static_cast<double>(m2.core().instructions()) /
        static_cast<double>(m1.core().instructions());
    EXPECT_LT(ratio, 0.75); // the Fig. 3 SpMatAdd band (~51%)
}

TEST(KernelUtil, PadVectorExtends)
{
    std::vector<Value> x{1, 2, 3};
    auto p = padVector(x, 6);
    ASSERT_EQ(p.size(), 6U);
    EXPECT_EQ(p[2], 3.0);
    EXPECT_EQ(p[5], 0.0);
    // Already long enough: unchanged.
    EXPECT_EQ(padVector(p, 4).size(), 6U);
}

TEST(KernelUtil, RowBlockRanks)
{
    fmt::CooMatrix coo(4, 8);
    coo.add(0, 0, 1.0);
    coo.add(0, 6, 1.0);
    coo.add(2, 3, 1.0);
    coo.canonicalize();
    SmashMatrix m = SmashMatrix::fromCoo(coo, HierarchyConfig({2}));
    auto rank = rowBlockRanks(m);
    ASSERT_EQ(rank.size(), 5U);
    EXPECT_EQ(rank[0], 0);
    EXPECT_EQ(rank[1], 2); // row 0 has blocks at cols 0-1 and 6-7
    EXPECT_EQ(rank[2], 2); // row 1 empty
    EXPECT_EQ(rank[3], 3); // row 2 has one block
    EXPECT_EQ(rank[4], 3);
}

} // namespace
} // namespace smash::kern
