/**
 * @file
 * Tests for the iterative solvers (§5.2.1 use cases): CG on SPD
 * systems, Jacobi on diagonally dominant systems, and the power
 * method — each over CSR and SMASH SpMV operators, native and
 * simulated, verifying solutions against direct residual checks.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "formats/convert.hh"
#include "isa/bmu.hh"
#include "kernels/spmv.hh"
#include "sim/exec_model.hh"
#include "solvers/iterative.hh"
#include "workloads/matrix_gen.hh"

namespace smash::solve
{
namespace
{

using core::HierarchyConfig;
using core::SmashMatrix;
using sim::NativeExec;

/**
 * Build a sparse symmetric positive-definite, diagonally dominant
 * matrix: A = S + S^T with a dominant diagonal added.
 */
fmt::CooMatrix
spdMatrix(Index n, Index off_nnz, std::uint64_t seed)
{
    fmt::CooMatrix base = wl::genRunScatter(n, n, off_nnz, 3, seed);
    fmt::CooMatrix sym(n, n);
    std::vector<Value> row_sum(static_cast<std::size_t>(n), Value(0));
    for (const fmt::CooEntry& entry : base.entries()) {
        if (entry.row == entry.col)
            continue;
        Value v = entry.value * Value(0.5);
        sym.add(entry.row, entry.col, v);
        sym.add(entry.col, entry.row, v);
        row_sum[static_cast<std::size_t>(entry.row)] += std::abs(v);
        row_sum[static_cast<std::size_t>(entry.col)] += std::abs(v);
    }
    for (Index i = 0; i < n; ++i) {
        sym.add(i, i, row_sum[static_cast<std::size_t>(i)] + Value(1));
    }
    sym.canonicalize();
    return sym;
}

std::vector<Value>
randomVector(Index n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Value> v(static_cast<std::size_t>(n));
    for (auto& x : v)
        x = static_cast<Value>(rng.uniform()) + Value(0.1);
    return v;
}

double
residual(const fmt::CsrMatrix& a, const std::vector<Value>& x,
         const std::vector<Value>& b)
{
    NativeExec e;
    std::vector<Value> ax(b.size(), 0);
    kern::spmvCsr(a, x, ax, e);
    double num = 0, den = 0;
    for (std::size_t i = 0; i < b.size(); ++i) {
        num += (ax[i] - b[i]) * (ax[i] - b[i]);
        den += b[i] * b[i];
    }
    return std::sqrt(num / den);
}

class CgOverEncodings : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CgOverEncodings, CsrAndSmashConverge)
{
    const std::uint64_t seed = GetParam();
    const Index n = 128;
    fmt::CooMatrix coo = spdMatrix(n, 800, seed);
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    SmashMatrix smash = SmashMatrix::fromCoo(
        coo, HierarchyConfig::fromPaperNotation({16, 4, 2}));
    std::vector<Value> b = randomVector(n, seed + 1);
    NativeExec e;

    std::vector<Value> x_csr(static_cast<std::size_t>(n), 0);
    SolveReport r1 = conjugateGradient(
        [&](const std::vector<Value>& in, std::vector<Value>& out) {
            kern::spmvCsr(csr, in, out, e);
        },
        b, x_csr, 1e-10, 500, e);
    EXPECT_TRUE(r1.converged) << toString(r1);
    EXPECT_LT(residual(csr, x_csr, b), 1e-8);

    std::vector<Value> x_hw(static_cast<std::size_t>(n), 0);
    isa::Bmu bmu;
    SolveReport r2 = conjugateGradient(
        [&](const std::vector<Value>& in, std::vector<Value>& out) {
            std::vector<Value> xp = kern::padVector(
                in, smash.paddedCols());
            kern::spmvSmashHw(smash, bmu, xp, out, e);
        },
        b, x_hw, 1e-10, 500, e);
    EXPECT_TRUE(r2.converged) << toString(r2);
    EXPECT_LT(residual(csr, x_hw, b), 1e-8);

    // Same operator, same arithmetic: solutions agree closely.
    for (std::size_t i = 0; i < x_csr.size(); ++i)
        EXPECT_NEAR(x_csr[i], x_hw[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CgOverEncodings,
                         ::testing::Values(1, 2, 3, 4));

TEST(Cg, ZeroRhsGivesZeroSolution)
{
    fmt::CooMatrix coo = spdMatrix(32, 100, 9);
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    NativeExec e;
    std::vector<Value> b(32, 0.0);
    std::vector<Value> x(32, 5.0); // non-zero guess
    SolveReport r = conjugateGradient(
        [&](const std::vector<Value>& in, std::vector<Value>& out) {
            kern::spmvCsr(csr, in, out, e);
        },
        b, x, 1e-12, 10, e);
    EXPECT_TRUE(r.converged);
    for (Value v : x)
        EXPECT_EQ(v, 0.0);
}

TEST(Cg, RejectsDimensionMismatch)
{
    NativeExec e;
    std::vector<Value> b(8, 1.0), x(4, 0.0);
    auto noop = [](const std::vector<Value>&, std::vector<Value>&) {};
    EXPECT_THROW(conjugateGradient(noop, b, x, 1e-6, 10, e),
                 FatalError);
}

TEST(Jacobi, ConvergesOnDominantSystem)
{
    const Index n = 100;
    fmt::CooMatrix coo = spdMatrix(n, 500, 21);
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    std::vector<Value> diag(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i)
        diag[static_cast<std::size_t>(i)] = csr.at(i, i);
    std::vector<Value> b = randomVector(n, 22);
    std::vector<Value> x(static_cast<std::size_t>(n), 0);
    NativeExec e;
    SolveReport r = jacobi(
        [&](const std::vector<Value>& in, std::vector<Value>& out) {
            kern::spmvCsr(csr, in, out, e);
        },
        diag, b, x, 1e-10, 2000, e);
    EXPECT_TRUE(r.converged) << toString(r);
    EXPECT_LT(residual(csr, x, b), 1e-8);
}

TEST(Jacobi, RejectsZeroDiagonal)
{
    NativeExec e;
    std::vector<Value> diag{1.0, 0.0};
    std::vector<Value> b(2, 1.0), x(2, 0.0);
    auto noop = [](const std::vector<Value>&, std::vector<Value>&) {};
    EXPECT_THROW(jacobi(noop, diag, b, x, 1e-6, 5, e), FatalError);
}

TEST(PowerMethod, FindsDominantEigenvalueOfDiagonal)
{
    // Diagonal matrix: dominant eigenvalue = max diagonal entry.
    fmt::CooMatrix coo(16, 16);
    for (Index i = 0; i < 16; ++i)
        coo.add(i, i, static_cast<Value>(i + 1));
    coo.canonicalize();
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    NativeExec e;
    std::vector<Value> x(16, 1.0);
    SolveReport report;
    Value lambda = powerMethod(
        [&](const std::vector<Value>& in, std::vector<Value>& out) {
            kern::spmvCsr(csr, in, out, e);
        },
        x, 1e-12, 2000, e, &report);
    EXPECT_TRUE(report.converged) << toString(report);
    EXPECT_NEAR(lambda, 16.0, 1e-6);
    // Eigenvector concentrates on the last coordinate.
    EXPECT_NEAR(std::abs(x[15]), 1.0, 1e-5);
}

TEST(PowerMethod, SmashOperatorMatchesCsr)
{
    fmt::CooMatrix coo = spdMatrix(64, 300, 31);
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    SmashMatrix smash = SmashMatrix::fromCoo(coo,
                                             HierarchyConfig({2, 4}));
    NativeExec e;
    std::vector<Value> x1(64, 1.0), x2(64, 1.0);
    Value l1 = powerMethod(
        [&](const std::vector<Value>& in, std::vector<Value>& out) {
            kern::spmvCsr(csr, in, out, e);
        },
        x1, 1e-11, 3000, e);
    Value l2 = powerMethod(
        [&](const std::vector<Value>& in, std::vector<Value>& out) {
            std::vector<Value> xp = kern::padVector(
                in, smash.paddedCols());
            kern::spmvSmashSw(smash, xp, out, e);
        },
        x2, 1e-11, 3000, e);
    EXPECT_NEAR(l1, l2, 1e-6);
}

TEST(SolveReportText, MentionsConvergence)
{
    SolveReport r{12, 1e-11, true};
    std::string s = toString(r);
    EXPECT_NE(s.find("converged"), std::string::npos);
    EXPECT_NE(s.find("12"), std::string::npos);
}

} // namespace
} // namespace smash::solve
