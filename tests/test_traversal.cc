/**
 * @file
 * Tests for the semiring layer and the graph traversal algorithms:
 * semiring SpMV agreement between CSR and SMASH backends, and each
 * matrix-based algorithm (BFS / SSSP / components / triangles)
 * against its classical direct oracle on randomized graphs.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hh"
#include "formats/convert.hh"
#include "graph/generators.hh"
#include "graph/semiring.hh"
#include "graph/traversal.hh"
#include "kernels/spmv.hh"
#include "sim/exec_model.hh"
#include "workloads/matrix_gen.hh"

namespace smash::graph
{
namespace
{

using core::HierarchyConfig;
using core::SmashMatrix;
using sim::NativeExec;

/** Symmetrized adjacency of g, transposed (the pull-BFS operand). */
fmt::CsrMatrix
adjacencyTransposed(const Graph& g)
{
    return fmt::transpose(g.toAdjacencyMatrix());
}

/** Random positive edge weights over g's adjacency structure. */
fmt::CsrMatrix
weightedAdjacency(const Graph& g, std::uint64_t seed)
{
    Rng rng(seed);
    fmt::CooMatrix coo(g.numVertices(), g.numVertices());
    for (Vertex u = 0; u < g.numVertices(); ++u) {
        const Vertex* nbr = g.neighbors(u);
        for (Index k = 0; k < g.outDegree(u); ++k)
            coo.add(u, nbr[k], 0.5 + rng.uniform());
    }
    coo.canonicalize();
    return fmt::CsrMatrix::fromCoo(coo);
}

// --------------------------------------------------------- semirings

TEST(Semiring, ArithmeticMatchesPlainSpmv)
{
    fmt::CooMatrix coo = wl::genUniform(48, 48, 300, 3);
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo);
    Rng rng(4);
    std::vector<Value> x(48);
    for (auto& v : x)
        v = rng.uniform();
    std::vector<Value> y_plain(48, 0.0), y_semi(48, 0.0);
    NativeExec e;
    kern::spmvCsr(a, x, y_plain, e);
    spmvSemiringCsr<ArithmeticSemiring>(a, x, y_semi, e);
    for (std::size_t i = 0; i < y_plain.size(); ++i)
        EXPECT_NEAR(y_plain[i], y_semi[i], 1e-12);
}

TEST(Semiring, BooleanYieldsReachabilityIndicator)
{
    // Chain 0 -> 1 -> 2: one boolean SpMV of A^T moves the frontier
    // one hop.
    Graph g = Graph::fromEdges(3, {{0, 1}, {1, 2}});
    fmt::CsrMatrix at = adjacencyTransposed(g);
    std::vector<Value> x{1.0, 0.0, 0.0}, y(3, 0.0);
    NativeExec e;
    spmvSemiringCsr<BooleanSemiring>(at, x, y, e);
    EXPECT_EQ(y, (std::vector<Value>{0.0, 1.0, 0.0}));
}

TEST(Semiring, MinPlusRelaxesOneHop)
{
    Graph g = Graph::fromEdges(3, {{0, 1}, {1, 2}});
    fmt::CsrMatrix w = weightedAdjacency(g, 7);
    fmt::CsrMatrix wt = fmt::transpose(w);
    const Value inf = std::numeric_limits<Value>::infinity();
    std::vector<Value> dist{0.0, inf, inf}, out(3, inf);
    NativeExec e;
    spmvSemiringCsr<MinPlusSemiring>(wt, dist, out, e);
    EXPECT_EQ(out[0], inf);                  // nothing reaches 0
    EXPECT_NEAR(out[1], w.at(0, 1), 1e-12);  // one hop
    EXPECT_EQ(out[2], inf);                  // two hops away
}

struct SemiringSweepCase
{
    const char* name;
    Index n;
    Index nnz;
    std::uint64_t seed;
};

class SemiringBackends : public ::testing::TestWithParam<SemiringSweepCase>
{};

TEST_P(SemiringBackends, SmashSwMatchesCsrAcrossSemirings)
{
    const auto& p = GetParam();
    fmt::CooMatrix coo = wl::genUniform(p.n, p.n, p.nnz, p.seed);
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    SmashMatrix smash = SmashMatrix::fromCoo(
        coo, HierarchyConfig::fromPaperNotation({16, 4, 2}));
    Rng rng(p.seed + 1);
    std::vector<Value> x(static_cast<std::size_t>(p.n));
    for (auto& v : x)
        v = 0.5 + rng.uniform();
    std::vector<Value> xp(x);
    xp.resize(static_cast<std::size_t>(smash.paddedCols()), 0.0);
    NativeExec e;

    {
        std::vector<Value> y_csr(static_cast<std::size_t>(p.n), 0.0);
        std::vector<Value> y_smash(static_cast<std::size_t>(p.n), 0.0);
        spmvSemiringCsr<ArithmeticSemiring>(csr, x, y_csr, e);
        spmvSemiringSmashSw<ArithmeticSemiring>(smash, xp, y_smash, e);
        for (std::size_t i = 0; i < y_csr.size(); ++i)
            EXPECT_NEAR(y_csr[i], y_smash[i], 1e-9);
    }
    {
        std::vector<Value> y_csr(static_cast<std::size_t>(p.n), 0.0);
        std::vector<Value> y_smash(static_cast<std::size_t>(p.n), 0.0);
        spmvSemiringCsr<BooleanSemiring>(csr, x, y_csr, e);
        spmvSemiringSmashSw<BooleanSemiring>(smash, xp, y_smash, e);
        EXPECT_EQ(y_csr, y_smash);
    }
    {
        std::vector<Value> y_csr(static_cast<std::size_t>(p.n), 0.0);
        std::vector<Value> y_smash(static_cast<std::size_t>(p.n), 0.0);
        spmvSemiringCsr<MinPlusSemiring>(csr, x, y_csr, e);
        spmvSemiringSmashSw<MinPlusSemiring>(smash, xp, y_smash, e);
        for (std::size_t i = 0; i < y_csr.size(); ++i)
            EXPECT_EQ(y_csr[i], y_smash[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SemiringBackends,
    ::testing::Values(
        SemiringSweepCase{"small", 32, 120, 51},
        SemiringSweepCase{"medium", 96, 700, 52},
        SemiringSweepCase{"sparse", 128, 180, 53},
        SemiringSweepCase{"dense", 24, 400, 54}),
    [](const auto& info) { return info.param.name; });

// --------------------------------------------------------------- BFS

class TraversalGraphs : public ::testing::TestWithParam<int>
{
  protected:
    Graph
    make() const
    {
        switch (GetParam()) {
          case 0:
            return uniformRandomGraph(60, 180, 11);
          case 1:
            return rmatGraph(64, 200, 12);
          case 2:
            return gridGraph(8, 8, 13);
          case 3: {
            // Disconnected: two cliques with no bridge.
            std::vector<std::pair<Vertex, Vertex>> edges;
            for (Vertex u = 0; u < 5; ++u)
                for (Vertex v = 0; v < 5; ++v)
                    if (u != v) {
                        edges.push_back({u, v});
                        edges.push_back({u + 5, v + 5});
                    }
            return Graph::fromEdges(10, edges);
          }
          default:
            return Graph::fromEdges(1, {});
        }
    }
};

TEST_P(TraversalGraphs, SemiringBfsMatchesQueueBfs)
{
    Graph g = make();
    fmt::CsrMatrix at = adjacencyTransposed(g);
    NativeExec e;
    auto spmv = [&](const std::vector<Value>& x, std::vector<Value>& y) {
        spmvSemiringCsr<BooleanSemiring>(at, x, y, e);
    };
    std::vector<Index> ref = bfsReference(g, 0);
    std::vector<Index> semi = bfsSemiring(g.numVertices(), 0, spmv);
    EXPECT_EQ(ref, semi);
}

TEST_P(TraversalGraphs, SemiringBfsOverSmashMatchesQueueBfs)
{
    Graph g = make();
    if (g.numEdges() == 0)
        GTEST_SKIP() << "empty adjacency cannot be SMASH-encoded usefully";
    fmt::CooMatrix at_coo = adjacencyTransposed(g).toCoo();
    SmashMatrix at = SmashMatrix::fromCoo(
        at_coo, HierarchyConfig::fromPaperNotation({4, 2}));
    NativeExec e;
    auto spmv = [&](const std::vector<Value>& x, std::vector<Value>& y) {
        std::vector<Value> xp(x);
        xp.resize(static_cast<std::size_t>(at.paddedCols()), 0.0);
        spmvSemiringSmashSw<BooleanSemiring>(at, xp, y, e);
    };
    EXPECT_EQ(bfsReference(g, 0), bfsSemiring(g.numVertices(), 0, spmv));
}

TEST_P(TraversalGraphs, SemiringSsspMatchesBellmanFordOracle)
{
    Graph g = make();
    fmt::CsrMatrix w = weightedAdjacency(g, 99);
    fmt::CsrMatrix wt = fmt::transpose(w);
    NativeExec e;
    auto spmv = [&](const std::vector<Value>& x, std::vector<Value>& y) {
        spmvSemiringCsr<MinPlusSemiring>(wt, x, y, e);
    };
    std::vector<Value> ref = ssspReference(w, 0);
    std::vector<Value> semi = ssspSemiring(g.numVertices(), 0, spmv);
    ASSERT_EQ(ref.size(), semi.size());
    for (std::size_t v = 0; v < ref.size(); ++v) {
        if (std::isinf(ref[v]))
            EXPECT_TRUE(std::isinf(semi[v])) << "vertex " << v;
        else
            EXPECT_NEAR(ref[v], semi[v], 1e-9) << "vertex " << v;
    }
}

TEST_P(TraversalGraphs, SemiringComponentsMatchUnionFind)
{
    Graph g = make();
    // Symmetrize for the undirected component definition.
    fmt::CooMatrix sym_coo(g.numVertices(), g.numVertices());
    for (Vertex u = 0; u < g.numVertices(); ++u) {
        const Vertex* nbr = g.neighbors(u);
        for (Index k = 0; k < g.outDegree(u); ++k) {
            sym_coo.add(u, nbr[k], 1.0);
            sym_coo.add(nbr[k], u, 1.0);
        }
    }
    sym_coo.canonicalize();
    fmt::CsrMatrix sym = fmt::CsrMatrix::fromCoo(sym_coo);
    NativeExec e;
    auto spmv = [&](const std::vector<Value>& x, std::vector<Value>& y) {
        spmvSemiringCsr<MinSelect2ndSemiring>(sym, x, y, e);
    };
    EXPECT_EQ(componentsReference(g),
              componentsSemiring(g.numVertices(), spmv));
}

TEST_P(TraversalGraphs, MergeTrianglesMatchOracle)
{
    Graph g = make();
    // Symmetrize: triangle counting is defined on undirected graphs.
    std::vector<std::pair<Vertex, Vertex>> edges;
    for (Vertex u = 0; u < g.numVertices(); ++u) {
        const Vertex* nbr = g.neighbors(u);
        for (Index k = 0; k < g.outDegree(u); ++k) {
            edges.push_back({u, nbr[k]});
            edges.push_back({nbr[k], u});
        }
    }
    Graph sym = Graph::fromEdges(g.numVertices(), edges);
    EXPECT_EQ(trianglesMerge(sym), trianglesReference(sym));
}

std::string
traversalGraphName(const ::testing::TestParamInfo<int>& info)
{
    static const char* const names[] = {"uniform", "rmat", "grid",
                                        "cliques"};
    return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(Shapes, TraversalGraphs,
                         ::testing::Values(0, 1, 2, 3),
                         traversalGraphName);

// ------------------------------------------------------ special cases

TEST(Traversal, BfsRejectsBadSource)
{
    Graph g = uniformRandomGraph(8, 16, 3);
    EXPECT_THROW(bfsReference(g, 8), FatalError);
    NativeExec e;
    fmt::CsrMatrix at = adjacencyTransposed(g);
    auto spmv = [&](const std::vector<Value>& x, std::vector<Value>& y) {
        spmvSemiringCsr<BooleanSemiring>(at, x, y, e);
    };
    EXPECT_THROW(bfsSemiring(g.numVertices(), -1, spmv), FatalError);
}

TEST(Traversal, IsolatedVertexIsItsOwnComponent)
{
    Graph g = Graph::fromEdges(4, {{0, 1}, {1, 0}});
    std::vector<Index> comp = componentsReference(g);
    EXPECT_EQ(comp[0], comp[1]);
    EXPECT_EQ(comp[2], 2);
    EXPECT_EQ(comp[3], 3);
}

TEST(Traversal, TriangleInKFour)
{
    // K4 contains exactly 4 triangles.
    std::vector<std::pair<Vertex, Vertex>> edges;
    for (Vertex u = 0; u < 4; ++u)
        for (Vertex v = 0; v < 4; ++v)
            if (u != v)
                edges.push_back({u, v});
    Graph k4 = Graph::fromEdges(4, edges);
    EXPECT_EQ(trianglesMerge(k4), 4u);
    EXPECT_EQ(trianglesReference(k4), 4u);
}

TEST(Traversal, SsspUsesLighterIndirectPath)
{
    // 0 -> 2 direct (heavy) vs 0 -> 1 -> 2 (light).
    fmt::CooMatrix coo(3, 3);
    coo.add(0, 2, 10.0);
    coo.add(0, 1, 1.0);
    coo.add(1, 2, 1.0);
    coo.canonicalize();
    fmt::CsrMatrix w = fmt::CsrMatrix::fromCoo(coo);
    std::vector<Value> dist = ssspReference(w, 0);
    EXPECT_NEAR(dist[2], 2.0, 1e-12);

    fmt::CsrMatrix wt = fmt::transpose(w);
    NativeExec e;
    auto spmv = [&](const std::vector<Value>& x, std::vector<Value>& y) {
        spmvSemiringCsr<MinPlusSemiring>(wt, x, y, e);
    };
    std::vector<Value> semi = ssspSemiring(3, 0, spmv);
    EXPECT_NEAR(semi[2], 2.0, 1e-12);
}

} // namespace
} // namespace smash::graph
