/**
 * @file
 * Solver example (paper §5.2.1): solve a 2-D Poisson system with
 * Conjugate Gradient where the operator is applied through three
 * interchangeable SpMV backends — CSR, Software-only SMASH, and the
 * BMU — then accelerate convergence with an ILU(0) preconditioner
 * built on the sparse-LU substrate.
 *
 * Build:  cmake -B build -G Ninja && cmake --build build
 * Run:    ./build/examples/cg_poisson [grid_side]
 */

#include <cstdlib>
#include <iostream>

#include "engine/operator.hh"
#include "isa/bmu.hh"
#include "sim/exec_model.hh"
#include "solvers/ilu.hh"
#include "solvers/krylov.hh"
#include "workloads/matrix_gen.hh"

int
main(int argc, char** argv)
{
    using namespace smash;

    const Index side = argc > 1 ? std::atol(argv[1]) : 48;
    fmt::CooMatrix coo = wl::genPoisson2d(side, side);
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo);
    core::SmashMatrix smash = core::SmashMatrix::fromCoo(
        coo, core::HierarchyConfig::fromPaperNotation({16, 4, 2}));

    std::cout << "2-D Poisson, " << side << "x" << side << " grid: "
              << a.rows() << " unknowns, " << a.nnz() << " non-zeros\n\n";

    std::vector<Value> b(static_cast<std::size_t>(a.rows()), 1.0);
    sim::NativeExec exec;
    const double tol = 1e-9;
    const int max_iters = 5000;

    // --- CG with each SpMV backend. ---
    auto solve_with = [&](const char* name, auto&& apply) {
        std::vector<Value> x(b.size(), 0.0);
        solve::IdentityPreconditioner ident;
        solve::SolveReport r = solve::preconditionedCg(
            apply,
            [&](const std::vector<Value>& rr, std::vector<Value>& z,
                sim::NativeExec& ee) { ident(rr, z, ee); },
            b, x, tol, max_iters, exec);
        std::cout << "  " << name << ": " << solve::toString(r) << "\n";
        return x;
    };

    // Each backend is the same engine operator with different
    // dispatch options — the solver never sees the format.
    std::cout << "Plain CG, three SpMV backends:\n";
    std::vector<Value> x_csr =
        solve_with("CSR        ", eng::makeOperator(a, exec));
    std::vector<Value> x_sw =
        solve_with("SW-SMASH   ", eng::makeOperator(smash, exec));
    isa::Bmu bmu;
    std::vector<Value> x_hw = solve_with(
        "SMASH (BMU)",
        eng::makeOperator(smash, exec, {.bmu = &bmu}));

    double max_diff = 0;
    for (std::size_t i = 0; i < x_csr.size(); ++i) {
        max_diff = std::max(max_diff, std::abs(x_csr[i] - x_sw[i]));
        max_diff = std::max(max_diff, std::abs(x_csr[i] - x_hw[i]));
    }
    std::cout << "  max cross-backend difference: " << max_diff << "\n\n";

    // --- ILU(0)-preconditioned CG. ---
    std::cout << "ILU(0)-preconditioned CG (sparse LU substrate):\n";
    solve::Ilu0Preconditioner ilu(solve::ilu0(a));
    std::vector<Value> x(b.size(), 0.0);
    solve::SolveReport r = solve::preconditionedCg(
        eng::makeOperator(a, exec),
        [&](const std::vector<Value>& rr, std::vector<Value>& z,
            sim::NativeExec& ee) { ilu(rr, z, ee); },
        b, x, tol, max_iters, exec);
    std::cout << "  ILU(0)-PCG : " << solve::toString(r) << "\n";

    // --- Extreme eigenvalues via Lanczos (condition number). ---
    std::vector<Value> start(b.size(), 1.0);
    solve::LanczosResult lr = solve::lanczos(
        eng::makeOperator(a, exec), start, 64, exec);
    auto ritz = lr.ritzValues();
    std::cout << "\nLanczos (64 steps): spectrum approx ["
              << ritz.front() << ", " << ritz.back()
              << "], condition estimate "
              << ritz.back() / ritz.front() << "\n";
    return max_diff < 1e-6 ? 0 : 1;
}
