/**
 * @file
 * Quickstart: build a small sparse matrix, encode it with SMASH's
 * hierarchical bitmap format, inspect the encoding, and run SpMV
 * three ways — CSR, Software-only SMASH, and BMU-accelerated SMASH
 * (functional model) — verifying they agree.
 *
 * Build:  cmake -B build -G Ninja && cmake --build build
 * Run:    ./build/examples/quickstart
 */

#include <iostream>

#include "core/smash_matrix.hh"
#include "engine/dispatch.hh"
#include "formats/convert.hh"
#include "isa/bmu.hh"
#include "sim/exec_model.hh"

int
main()
{
    using namespace smash;

    // --- 1. A small sparse matrix (the paper's Fig. 1 example). ---
    fmt::CooMatrix coo(4, 4);
    coo.add(0, 0, 3.2);
    coo.add(1, 0, 1.2);
    coo.add(1, 2, 4.2);
    coo.add(2, 3, 5.1);
    coo.add(3, 0, 5.3);
    coo.add(3, 1, 3.3);
    coo.canonicalize();

    // --- 2. Encode: 2-level hierarchy, paper notation b1.b0 = 2.2
    //        (each Bitmap-0 bit covers a 2-element NZA block; each
    //        Bitmap-1 bit covers 2 Bitmap-0 bits). ---
    auto cfg = core::HierarchyConfig::fromPaperNotation({2, 2});
    core::SmashMatrix smash = core::SmashMatrix::fromCoo(coo, cfg);

    std::cout << "SMASH encoding of a 4x4 matrix with 6 non-zeros\n"
              << "  hierarchy config (top-down): "
              << smash.config().toString() << "\n"
              << "  NZA blocks: " << smash.numBlocks()
              << " x " << smash.blockSize() << " elements\n"
              << "  locality of sparsity: "
              << smash.localityOfSparsity() << "\n"
              << "  compact storage: " << smash.storageBytesCompact()
              << " bytes (CSR: "
              << fmt::CsrMatrix::fromCoo(coo).storageBytes()
              << " bytes, dense: "
              << coo.toDense().storageBytes() << " bytes)\n\n";

    // --- 3. SpMV y = A x under each indexing scheme, all through
    //        the engine's format-agnostic dispatch (it pads x to the
    //        SMASH operand length internally). ---
    std::vector<Value> x{1.0, 2.0, 3.0, 4.0};
    sim::NativeExec exec; // native hooks: full speed, no simulation

    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    std::vector<Value> y_csr(4, 0.0);
    eng::spmv(csr, x, y_csr, exec);

    std::vector<Value> y_sw(4, 0.0);
    eng::spmv(smash, x, y_sw, exec);

    isa::Bmu bmu; // the Bitmap Management Unit (functional model)
    std::vector<Value> y_hw(4, 0.0);
    eng::spmv(smash, x, y_hw, exec, {.bmu = &bmu});

    std::cout << "SpMV result (y = A x):\n";
    for (std::size_t r = 0; r < 4; ++r) {
        std::cout << "  y[" << r << "] csr=" << y_csr[r]
                  << " smash-sw=" << y_sw[r]
                  << " smash-hw=" << y_hw[r] << "\n";
        if (y_csr[r] != y_sw[r] || y_csr[r] != y_hw[r]) {
            std::cerr << "mismatch!\n";
            return 1;
        }
    }
    std::cout << "all schemes agree.\n";
    return 0;
}
