/**
 * @file
 * Compression-ratio tuning example (§4.1.1 / §7.2.2): generate a
 * matrix with a chosen structure, sweep Bitmap-0 compression ratios
 * and hierarchy depths, and report for each configuration the
 * compact storage footprint, the locality of sparsity, and the
 * simulated SpMV cost — the tradeoff the paper's Fig. 5/14 discuss
 * (small bitmaps vs. zero-padding in the NZA).
 *
 * Usage: format_tuning [clustered|scatter|powerlaw] [rows] [nnz]
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/table.hh"
#include "core/smash_matrix.hh"
#include "engine/dispatch.hh"
#include "isa/bmu.hh"
#include "sim/exec_model.hh"
#include "workloads/matrix_gen.hh"

int
main(int argc, char** argv)
{
    using namespace smash;

    const char* structure = argc > 1 ? argv[1] : "clustered";
    Index rows = argc > 2 ? std::atoll(argv[2]) : 4096;
    Index nnz = argc > 3 ? std::atoll(argv[3]) : 200000;

    fmt::CooMatrix coo;
    if (std::strcmp(structure, "scatter") == 0) {
        coo = wl::genUniform(rows, rows, nnz, 1);
    } else if (std::strcmp(structure, "powerlaw") == 0) {
        coo = wl::genPowerLaw(rows, rows, nnz, 0.7, 1, 6);
    } else {
        coo = wl::genClustered(rows, rows, nnz, 8, 1);
    }
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    std::cout << "Matrix: " << structure << " " << rows << "x" << rows
              << ", nnz " << coo.nnz() << "; CSR storage "
              << csr.storageBytes() / 1024 << " KiB\n\n";

    TextTable table("Hierarchy configuration sweep (simulated SpMV)");
    table.setHeader({"config (top-down)", "blocks", "locality",
                     "compact KiB", "vs CSR", "sim Mcycles"});

    const std::vector<std::vector<Index>> configs = {
        {2}, {4}, {8}, {4, 2}, {16, 2}, {16, 4, 2},
        {16, 4, 4}, {8, 4, 8}, {64, 16, 2},
    };
    std::vector<Value> x(static_cast<std::size_t>(rows), 1.0);
    double best_cycles = 1e300;
    std::string best;
    for (const auto& cfg_vec : configs) {
        auto cfg = core::HierarchyConfig::fromPaperNotation(cfg_vec);
        core::SmashMatrix sm = core::SmashMatrix::fromCoo(coo, cfg);
        sim::Machine machine;
        {
            sim::SimExec e(machine);
            isa::Bmu bmu;
            std::vector<Value> y(static_cast<std::size_t>(rows), 0.0);
            eng::spmv(sm, x, y, e, {.bmu = &bmu});
        }
        double cycles = machine.core().cycles();
        if (cycles < best_cycles) {
            best_cycles = cycles;
            best = cfg.toString();
        }
        table.addRow({cfg.toString(), std::to_string(sm.numBlocks()),
                      formatFixed(sm.localityOfSparsity(), 2),
                      formatFixed(static_cast<double>(
                          sm.storageBytesCompact()) / 1024.0, 1),
                      formatFixed(static_cast<double>(
                          sm.storageBytesCompact()) /
                          static_cast<double>(csr.storageBytes()), 2),
                      formatFixed(cycles / 1e6, 2)});
    }
    table.print(std::cout);
    std::cout << "\nBest configuration for simulated SpMV: " << best
              << "\nRule of thumb (paper §7.2.2): 2:1 Bitmap-0 when the"
              << " structure is unknown; higher ratios pay off only on"
              << " clustered matrices.\n";
    return 0;
}
