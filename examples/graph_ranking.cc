/**
 * @file
 * Graph-analytics example (the paper's §6 use case): generate a
 * power-law web-like graph, rank its vertices with PageRank over
 * (a) the CSR-encoded and (b) the SMASH-encoded rank matrix, verify
 * the rankings agree, and report the simulated cycle counts of both
 * encodings — the Fig. 18 experiment in miniature.
 *
 * Usage: graph_ranking [num_vertices] [num_edges]
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "graph/generators.hh"
#include "graph/pagerank.hh"
#include "sim/exec_model.hh"

int
main(int argc, char** argv)
{
    using namespace smash;

    graph::Vertex n = argc > 1 ? std::atoll(argv[1]) : 20000;
    Index edges = argc > 2 ? std::atoll(argv[2]) : 120000;

    std::cout << "Generating an RMAT graph: " << n << " vertices, ~"
              << edges << " undirected edges...\n";
    graph::Graph g = graph::rmatGraph(n, edges, /*seed=*/2026);

    fmt::CooMatrix m_coo = g.toPageRankMatrix();
    fmt::CsrMatrix m_csr = fmt::CsrMatrix::fromCoo(m_coo);
    core::SmashMatrix m_smash = core::SmashMatrix::fromCoo(
        m_coo, core::HierarchyConfig::fromPaperNotation({16, 4, 2}));

    graph::PageRankParams params;
    params.iterations = 10;

    // --- Functional run (native speed) + agreement check. ---
    sim::NativeExec native;
    std::vector<Value> ranks = graph::pagerankCsr(m_csr, params, native);
    isa::Bmu bmu_native;
    std::vector<Value> ranks_smash =
        graph::pagerankSmashHw(m_smash, bmu_native, params, native);
    for (std::size_t v = 0; v < ranks.size(); ++v) {
        if (std::abs(ranks[v] - ranks_smash[v]) > 1e-9) {
            std::cerr << "encodings disagree at vertex " << v << "\n";
            return 1;
        }
    }

    std::vector<graph::Vertex> order(static_cast<std::size_t>(n));
    for (graph::Vertex v = 0; v < n; ++v)
        order[static_cast<std::size_t>(v)] = v;
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&](graph::Vertex a, graph::Vertex b) {
                          return ranks[static_cast<std::size_t>(a)] >
                              ranks[static_cast<std::size_t>(b)];
                      });
    std::cout << "Top-5 vertices by PageRank:\n";
    for (int i = 0; i < 5; ++i) {
        graph::Vertex v = order[static_cast<std::size_t>(i)];
        std::cout << "  #" << (i + 1) << "  vertex " << v << "  rank "
                  << ranks[static_cast<std::size_t>(v)]
                  << "  out-degree " << g.outDegree(v) << "\n";
    }

    // --- Simulated comparison (Table-2 machine). ---
    sim::Machine mc_csr, mc_hw;
    {
        sim::SimExec e(mc_csr);
        graph::pagerankCsr(m_csr, params, e);
    }
    {
        sim::SimExec e(mc_hw);
        isa::Bmu bmu;
        graph::pagerankSmashHw(m_smash, bmu, params, e);
    }
    std::cout << "\nSimulated cost (" << params.iterations
              << " iterations):\n"
              << "  CSR:       " << mc_csr.core().cycles() << " cycles, "
              << mc_csr.core().instructions() << " instructions\n"
              << "  SMASH-BMU: " << mc_hw.core().cycles() << " cycles, "
              << mc_hw.core().instructions() << " instructions\n"
              << "  speedup:   "
              << mc_csr.core().cycles() / mc_hw.core().cycles() << "x\n";
    return 0;
}
