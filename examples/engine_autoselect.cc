/**
 * @file
 * Format auto-selection example: three structurally different
 * matrices — a banded finite-difference system, a clustered
 * FEM-style matrix, and a power-law graph matrix — run through
 * eng::encodeAuto(), which profiles the structure (nnz/row,
 * diagonal coverage, §7.2.3 locality of sparsity) and picks DIA,
 * SMASH, and CSR respectively. Every result is validated against
 * CSR through the same dispatch API the selection feeds.
 *
 * Build:  cmake -B build && cmake --build build
 * Run:    ./build/examples/engine_autoselect
 */

#include <cmath>
#include <iostream>

#include "common/table.hh"
#include "engine/autoselect.hh"
#include "engine/dispatch.hh"
#include "workloads/matrix_gen.hh"

int
main()
{
    using namespace smash;

    struct Case
    {
        const char* name;
        fmt::CooMatrix coo;
    };
    const Case cases[] = {
        {"Poisson 64x64 grid (banded)", wl::genPoisson2d(64, 64)},
        {"FEM-style clustered (locality 0.9)",
         wl::genWithLocality(4096, 4096, 120000, 8, 0.9, 11)},
        {"power-law graph rows (scattered)",
         wl::genPowerLaw(4096, 4096, 90000, 1.1, 12)},
    };

    TextTable table("Auto-selection on three structure classes");
    table.setHeader({"matrix", "nnz/row", "diagonals", "locality",
                     "chosen format", "max |err| vs CSR"});

    sim::NativeExec e;
    for (const Case& c : cases) {
        eng::StructureStats stats = eng::analyzeStructure(c.coo);
        eng::SparseMatrixAny m = eng::encodeAuto(c.coo);

        // Validate the selected encoding against CSR via dispatch.
        fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(c.coo);
        std::vector<Value> x(static_cast<std::size_t>(c.coo.cols()),
                             Value(1));
        for (Index i = 0; i < c.coo.cols(); ++i)
            x[static_cast<std::size_t>(i)] += Value(i % 5) * Value(0.5);
        std::vector<Value> y_auto(
            static_cast<std::size_t>(c.coo.rows()), Value(0));
        std::vector<Value> y_csr(y_auto.size(), Value(0));
        eng::spmv(m, x, y_auto, e);
        eng::spmv(csr, x, y_csr, e);
        double err = 0;
        for (std::size_t i = 0; i < y_auto.size(); ++i)
            err = std::max(err, std::abs(
                static_cast<double>(y_auto[i] - y_csr[i])));

        table.addRow({c.name, formatFixed(stats.avgNnzPerRow, 1),
                      std::to_string(stats.numDiagonals),
                      formatFixed(stats.blockLocality, 2),
                      eng::toString(m.format()),
                      formatFixed(err, 12)});
        if (err > 1e-9) {
            std::cerr << "dispatch mismatch on " << c.name << "\n";
            return 1;
        }
    }
    table.print(std::cout);
    std::cout << "\nRule set (engine/autoselect.cc): dense when density"
                 " >= 0.4; DIA when few, well-filled diagonals; SMASH"
                 " when locality of sparsity >= 0.5 (paper §7.2.3);"
                 " ELL when row populations are uniform; CSR otherwise."
                 "\n";
    return 0;
}
