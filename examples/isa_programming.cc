/**
 * @file
 * ISA programming example (paper §4.3): write the Algorithm-1
 * configuration and scan loop as literal SMASH assembly, assemble
 * it to binary, execute it against the BMU, and use the traced
 * RDIND outputs to drive the SpMV multiply — the lowest-level view
 * of the hardware/software contract.
 *
 * Build:  cmake -B build -G Ninja && cmake --build build
 * Run:    ./build/examples/isa_programming
 */

#include <iostream>

#include "core/smash_matrix.hh"
#include "isa/program.hh"
#include "sim/exec_model.hh"
#include "workloads/matrix_gen.hh"

int
main()
{
    using namespace smash;

    // A small sparse matrix encoded with a 3-level hierarchy.
    fmt::CooMatrix coo = wl::genClustered(16, 16, 40, 4, /*seed=*/3);
    auto cfg = core::HierarchyConfig::fromPaperNotation({4, 2, 2});
    core::SmashMatrix a = core::SmashMatrix::fromCoo(coo, cfg);
    std::cout << "Matrix: 16x16, " << a.nnz() << " non-zeros, "
              << a.numBlocks() << " NZA blocks, hierarchy "
              << cfg.toString() << "\n\n";

    // --- 1. The configuration prologue, as assembly text. ---
    const char* prologue_asm = R"(
        # Algorithm 1, lines 2-8: configure group 0.
        matinfo  r1,  r2,  g0   # rows, padded columns
        bmapinfo r12, 2,  g0    # Bitmap-2 compression ratio
        bmapinfo r11, 1,  g0    # Bitmap-1 compression ratio
        bmapinfo r10, 0,  g0    # Bitmap-0 ratio (NZA block size)
        rdbmap  [r22], 2,  g0   # load Bitmap-2 into SRAM buffer 2
        rdbmap  [r21], 1,  g0   # load Bitmap-1 into SRAM buffer 1
        rdbmap  [r20], 0,  g0   # load Bitmap-0 into SRAM buffer 0
    )";
    isa::BmuProgram prologue = isa::BmuProgram::assemble(prologue_asm);
    std::cout << "Assembled prologue (" << prologue.size()
              << " instructions):\n" << prologue.disassemble() << "\n";

    // --- 2. Bind registers and the bitmap address space. ---
    isa::Bmu bmu;
    sim::NativeExec exec;
    isa::BmuExecutor<sim::NativeExec> cpu(bmu, exec);
    cpu.setRegister(1, static_cast<std::uint64_t>(a.rows()));
    cpu.setRegister(2, static_cast<std::uint64_t>(a.paddedCols()));
    for (int lvl = 0; lvl < cfg.levels(); ++lvl) {
        cpu.setRegister(10 + lvl,
                        static_cast<std::uint64_t>(cfg.ratio(lvl)));
        std::uint64_t addr = 0x4000u + 0x100u * static_cast<unsigned>(lvl);
        cpu.setRegister(20 + lvl, addr);
        cpu.mapBitmap(addr, &a.hierarchy().level(lvl));
    }
    std::vector<isa::TraceEntry> trace;
    cpu.run(prologue, &trace);

    // --- 3. The scan loop: PBMAP + RDIND per non-zero block,
    //        multiplying NZA blocks against x as indices arrive. ---
    std::vector<Value> x(static_cast<std::size_t>(a.paddedCols()), 1.0);
    std::vector<Value> y(static_cast<std::size_t>(a.rows()), 0.0);
    isa::Instruction pbmap = isa::parseAssembly("pbmap g0");
    isa::Instruction rdind = isa::parseAssembly("rdind r5, r6, g0");

    Index block = 0;
    while (cpu.step(pbmap)) {
        cpu.step(rdind);
        Index row = static_cast<Index>(cpu.getRegister(5));
        Index col = static_cast<Index>(cpu.getRegister(6));
        const Value* nza = a.blockData(block);
        Value acc = 0;
        for (Index k = 0; k < a.blockSize(); ++k)
            acc += nza[k] * x[static_cast<std::size_t>(col + k)];
        y[static_cast<std::size_t>(row)] += acc;
        ++block;
    }
    std::cout << "Scan loop enumerated " << block << " blocks (expected "
              << a.numBlocks() << ")\n\n";

    // --- 4. Validate against the dense product. ---
    fmt::DenseMatrix dense = a.toDense();
    double max_err = 0;
    for (Index r = 0; r < a.rows(); ++r) {
        Value want = 0;
        for (Index c = 0; c < a.cols(); ++c)
            want += dense.at(r, c); // x is all-ones
        max_err = std::max(max_err,
                           std::abs(y[static_cast<std::size_t>(r)] - want));
    }
    std::cout << "SpMV through raw ISA: max |error| = " << max_err << "\n";

    // --- 5. Show the binary encoding round trip. ---
    std::cout << "\nBinary encodings:\n";
    for (std::size_t i = 0; i < prologue.size(); ++i) {
        isa::InstWord w = prologue.words()[i];
        std::cout << "  0x" << std::hex << w << std::dec << "  "
                  << isa::toAssembly(isa::decode(w)) << "\n";
    }
    return max_err < 1e-12 && block == a.numBlocks() ? 0 : 1;
}
