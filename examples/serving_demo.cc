/**
 * @file
 * Worked example of the typed serving API: register matrices once,
 * stand up a Session, and stream SpMV / SpMM / SpAdd requests
 * through the async pipeline. Demonstrates the serving-layer
 * guarantees — no exception crosses the API boundary (statuses come
 * back as serve::Result), format auto-selection runs once per
 * matrix, conversions are cached, concurrent requests coalesce into
 * batched computes, priorities shape flush order, and admission
 * control sheds overload with kOverloaded instead of queueing
 * without bound.
 */

#include <future>
#include <iostream>
#include <vector>

#include "engine/format.hh"
#include "serve/session.hh"
#include "workloads/matrix_gen.hh"

using namespace smash;

namespace
{

std::vector<Value>
operand(Index cols, Index kind)
{
    std::vector<Value> x(static_cast<std::size_t>(cols));
    for (Index i = 0; i < cols; ++i)
        x[static_cast<std::size_t>(i)] =
            Value(1) + Value((i + kind) % 5) * Value(0.25);
    return x;
}

double
norm1(const std::vector<Value>& y)
{
    double s = 0;
    for (Value v : y)
        s += std::abs(static_cast<double>(v));
    return s;
}

} // namespace

int
main()
{
    // 1. A registry owns the named matrices. put() analyzes each
    //    structure once (§7.2.3) and picks its serving format.
    serve::MatrixRegistry registry;
    const eng::Format ranker_fmt = registry.put(
        "ranker", wl::genWithLocality(1024, 1024, 16000, 8, 0.9, 5));
    const eng::Format graph_fmt = registry.put(
        "graph", wl::genPowerLaw(1024, 1024, 12000, 1.2, 9));
    std::cout << "registered 'ranker' as " << eng::toString(ranker_fmt)
              << ", 'graph' as " << eng::toString(graph_fmt) << "\n";

    // 2. A session serves typed requests: submit() returns a
    //    future<Result<T>>; the pipeline converts (once), batches
    //    per (matrix, op class), and computes on its thread pool.
    serve::SessionOptions options;
    options.threads = 4;
    options.maxBatch = 8;
    options.maxInflightPerMatrix = 64; // admission control on
    serve::Session session(registry, options);

    std::vector<std::future<serve::Result<std::vector<Value>>>> spmv;
    for (Index wave = 0; wave < 2; ++wave)
        for (Index k = 0; k < 8; ++k) {
            // kBatch priority: throughput traffic, deep coalescing.
            serve::RequestOptions bulk;
            bulk.priority = serve::Priority::kBatch;
            spmv.push_back(session.submit(serve::SpmvRequest{
                "ranker", operand(1024, k), bulk}));
            spmv.push_back(session.submit(serve::SpmvRequest{
                "graph", operand(1024, k + 3), {}}));
        }

    // A latency-sensitive request: kHigh flushes its queue at once
    // (any parked requests against the same matrix ride along).
    serve::RequestOptions urgent;
    urgent.priority = serve::Priority::kHigh;
    serve::Result<std::vector<Value>> hot = session
        .submit(serve::SpmvRequest{"ranker", operand(1024, 0), urgent})
        .get();
    std::cout << "high-priority request: " << hot.status().toString()
              << ", |y|_1 = " << norm1(hot.value()) << "\n";

    // 3. Statuses are data, not exceptions: an unknown name or a
    //    wrong-length operand comes back as a ready Result.
    serve::Result<std::vector<Value>> missing =
        session.submit(serve::SpmvRequest{"nope", operand(1024, 0)})
            .get();
    serve::Result<std::vector<Value>> short_x =
        session.submit(serve::SpmvRequest{"ranker", operand(57, 0)})
            .get();
    std::cout << "unknown matrix  -> " << missing.status().toString()
              << "\nshort operand   -> " << short_x.status().toString()
              << "\n";

    // 4. SpMM: a dense multi-RHS block, one traversal per batch of
    //    concurrent blocks. SpAdd: merge two registered matrices.
    fmt::DenseMatrix block(1024, 4);
    for (Index c = 0; c < 4; ++c)
        for (Index j = 0; j < 1024; ++j)
            block.at(j, c) = operand(1024, c)[static_cast<std::size_t>(j)];
    serve::Result<fmt::DenseMatrix> spmm =
        session.submit(serve::SpmmRequest{"ranker", block}).get();
    std::cout << "spmm 4-RHS block -> " << spmm.status().toString()
              << ", C is " << spmm.value().rows() << "x"
              << spmm.value().cols() << "\n";

    serve::Result<fmt::CooMatrix> sum =
        session.submit(serve::SpaddRequest{"ranker", "graph"}).get();
    std::cout << "spadd ranker+graph -> " << sum.status().toString()
              << ", " << sum.value().nnz() << " non-zeros\n";

    // 5. Futures resolve as batches complete (arrival order need
    //    not match submission order; every future is independent).
    double checksum = 0;
    for (auto& f : spmv) {
        serve::Result<std::vector<Value>> r = f.get();
        if (r.ok())
            checksum += norm1(r.value());
    }
    std::cout << "served " << spmv.size()
              << " spmv requests, result checksum " << checksum << "\n";

    // drain() settles the pipeline's accounting before we read it
    // (futures resolve before the deliver task finishes counting).
    session.drain();
    const serve::PipelineStats& stats = session.stats();
    std::cout << "pipeline: " << stats.completed.load()
              << " completed in " << stats.batches.load()
              << " batches (widest " << stats.widestBatch.load()
              << "); p99 latency (normal) "
              << stats.latency(serve::Priority::kNormal)
                     .percentileUs(0.99)
              << " us; conversions: ranker "
              << registry.conversions("ranker") << ", graph "
              << registry.conversions("graph")
              << " (cached after the first touch)\n";
    return 0;
}
