/**
 * @file
 * Worked example of the serving subsystem: register matrices once,
 * stand up a Session, and stream SpMV requests through the async
 * pipeline. Demonstrates the three serving-layer guarantees —
 * format auto-selection runs once per matrix, conversions are
 * cached (the second wave of requests reconverts nothing), and
 * concurrent requests against the same matrix coalesce into
 * batched multi-RHS computes.
 */

#include <future>
#include <iostream>
#include <vector>

#include "engine/format.hh"
#include "serve/session.hh"
#include "workloads/matrix_gen.hh"

using namespace smash;

namespace
{

std::vector<Value>
operand(Index cols, Index kind)
{
    std::vector<Value> x(static_cast<std::size_t>(cols));
    for (Index i = 0; i < cols; ++i)
        x[static_cast<std::size_t>(i)] =
            Value(1) + Value((i + kind) % 5) * Value(0.25);
    return x;
}

double
norm1(const std::vector<Value>& y)
{
    double s = 0;
    for (Value v : y)
        s += std::abs(static_cast<double>(v));
    return s;
}

} // namespace

int
main()
{
    // 1. A registry owns the named matrices. put() analyzes each
    //    structure once (§7.2.3) and picks its serving format.
    serve::MatrixRegistry registry;
    const eng::Format ranker_fmt = registry.put(
        "ranker", wl::genWithLocality(1024, 1024, 16000, 8, 0.9, 5));
    const eng::Format graph_fmt = registry.put(
        "graph", wl::genPowerLaw(1024, 1024, 12000, 1.2, 9));
    std::cout << "registered 'ranker' as " << eng::toString(ranker_fmt)
              << ", 'graph' as " << eng::toString(graph_fmt) << "\n";

    // 2. A session serves requests: submit() returns immediately
    //    with a future; the pipeline converts (once), batches, and
    //    computes on its thread pool.
    serve::SessionOptions options;
    options.threads = 4;
    options.maxBatch = 8;
    serve::Session session(registry, options);

    std::vector<std::future<std::vector<Value>>> futures;
    for (Index wave = 0; wave < 2; ++wave)
        for (Index k = 0; k < 8; ++k) {
            futures.push_back(
                session.submit("ranker", operand(1024, k)));
            futures.push_back(
                session.submit("graph", operand(1024, k + 3)));
        }

    // 3. Futures resolve as batches complete (arrival order need
    //    not match submission order; every future is independent).
    double checksum = 0;
    for (auto& f : futures)
        checksum += norm1(f.get());
    std::cout << "served " << futures.size()
              << " requests, result checksum " << checksum << "\n";

    // drain() settles the pipeline's accounting before we read it
    // (futures resolve before the deliver task finishes counting).
    session.drain();
    const serve::PipelineStats& stats = session.stats();
    std::cout << "pipeline: " << stats.completed.load()
              << " completed in " << stats.batches.load()
              << " batches (widest " << stats.widestBatch.load()
              << "); conversions: ranker "
              << registry.conversions("ranker") << ", graph "
              << registry.conversions("graph")
              << " (cached after the first touch)\n";
    return 0;
}
