/**
 * @file
 * Semiring traversal example: run BFS, single-source shortest
 * paths, and connected components on a synthetic road-network graph
 * by swapping the semiring under one SpMV — over both CSR and the
 * SMASH encoding — and cross-check against the classical direct
 * algorithms.
 *
 * Build:  cmake -B build -G Ninja && cmake --build build
 * Run:    ./build/examples/graph_traversal
 */

#include <cmath>
#include <iostream>

#include "formats/convert.hh"
#include "graph/generators.hh"
#include "graph/semiring.hh"
#include "graph/traversal.hh"
#include "sim/exec_model.hh"

int
main()
{
    using namespace smash;
    using graph::Graph;

    Graph g = graph::gridGraph(24, 24, /*seed=*/7);
    std::cout << "Road-network stand-in: " << g.numVertices()
              << " vertices, " << g.numEdges() << " directed edges\n\n";

    fmt::CsrMatrix at = fmt::transpose(g.toAdjacencyMatrix());
    core::SmashMatrix at_smash = core::SmashMatrix::fromCoo(
        at.toCoo(), core::HierarchyConfig::fromPaperNotation({4, 2}));
    sim::NativeExec e;

    // --- BFS: boolean semiring. ---
    auto bool_csr = [&](const std::vector<Value>& x,
                        std::vector<Value>& y) {
        graph::spmvSemiringCsr<graph::BooleanSemiring>(at, x, y, e);
    };
    auto bool_smash = [&](const std::vector<Value>& x,
                          std::vector<Value>& y) {
        std::vector<Value> xp(x);
        xp.resize(static_cast<std::size_t>(at_smash.paddedCols()), 0.0);
        graph::spmvSemiringSmashSw<graph::BooleanSemiring>(
            at_smash, xp, y, e);
    };
    auto ref_levels = graph::bfsReference(g, 0);
    auto csr_levels = graph::bfsSemiring(g.numVertices(), 0, bool_csr);
    auto smash_levels = graph::bfsSemiring(g.numVertices(), 0, bool_smash);
    Index max_level = 0;
    for (Index lvl : ref_levels)
        max_level = std::max(max_level, lvl);
    std::cout << "BFS from vertex 0 (boolean semiring):\n"
              << "  eccentricity " << max_level << "; CSR backend "
              << (csr_levels == ref_levels ? "matches" : "DIFFERS from")
              << " queue BFS; SMASH backend "
              << (smash_levels == ref_levels ? "matches" : "DIFFERS from")
              << " queue BFS\n\n";

    // --- SSSP: min-plus semiring over unit weights. ---
    auto minplus = [&](const std::vector<Value>& x, std::vector<Value>& y) {
        graph::spmvSemiringCsr<graph::MinPlusSemiring>(at, x, y, e);
    };
    auto dist = graph::ssspSemiring(g.numVertices(), 0, minplus);
    auto ref_dist = graph::ssspReference(g.toAdjacencyMatrix(), 0);
    double max_err = 0;
    for (std::size_t v = 0; v < dist.size(); ++v) {
        if (std::isfinite(ref_dist[v]))
            max_err = std::max(max_err, std::abs(dist[v] - ref_dist[v]));
    }
    std::cout << "SSSP (min-plus semiring, unit weights):\n"
              << "  max |semiring - Bellman-Ford| = " << max_err << "\n\n";

    // --- Connected components: min-select2nd semiring. ---
    fmt::CooMatrix sym_coo(g.numVertices(), g.numVertices());
    for (graph::Vertex u = 0; u < g.numVertices(); ++u) {
        const graph::Vertex* nbr = g.neighbors(u);
        for (Index k = 0; k < g.outDegree(u); ++k) {
            sym_coo.add(u, nbr[k], 1.0);
            sym_coo.add(nbr[k], u, 1.0);
        }
    }
    sym_coo.canonicalize();
    fmt::CsrMatrix sym = fmt::CsrMatrix::fromCoo(sym_coo);
    auto minlabel = [&](const std::vector<Value>& x,
                        std::vector<Value>& y) {
        graph::spmvSemiringCsr<graph::MinSelect2ndSemiring>(sym, x, y, e);
    };
    auto comp = graph::componentsSemiring(g.numVertices(), minlabel);
    auto ref_comp = graph::componentsReference(g);
    std::size_t distinct = 0;
    for (std::size_t v = 0; v < comp.size(); ++v)
        if (comp[v] == static_cast<Index>(v))
            ++distinct;
    std::cout << "Connected components (min-select2nd semiring):\n"
              << "  " << distinct << " component(s); "
              << (comp == ref_comp ? "matches" : "DIFFERS from")
              << " union-find\n\n";

    // --- Triangles. ---
    std::cout << "Triangles (merge-intersect): "
              << graph::trianglesMerge(g) << "\n";

    bool ok = csr_levels == ref_levels && smash_levels == ref_levels &&
        max_err == 0.0 && comp == ref_comp;
    std::cout << (ok ? "\nall traversals agree with their oracles.\n"
                     : "\nMISMATCH detected.\n");
    return ok ? 0 : 1;
}
