/**
 * @file
 * Sparse-matrix-multiply workflow example (§5.2): A and B arrive in
 * interchange form (Matrix Market), are encoded — A row-major,
 * B as the SMASH of B-transposed so its columns scan like rows —
 * and multiplied with BMU-assisted index matching. The CSR x CSC
 * inner-product path validates the result.
 *
 * Usage: spmm_workflow [a.mtx b.mtx]   (generates inputs if omitted)
 */

#include <iostream>

#include "engine/dispatch.hh"
#include "formats/convert.hh"
#include "formats/matrix_market.hh"
#include "isa/bmu.hh"
#include "sim/exec_model.hh"
#include "workloads/matrix_gen.hh"

int
main(int argc, char** argv)
{
    using namespace smash;

    fmt::CooMatrix a_coo, b_coo;
    if (argc > 2) {
        std::cout << "Reading " << argv[1] << " and " << argv[2] << "\n";
        a_coo = fmt::readMatrixMarketFile(argv[1]);
        b_coo = fmt::readMatrixMarketFile(argv[2]);
    } else {
        std::cout << "No inputs given; generating 512x512 operands.\n";
        a_coo = wl::genClustered(512, 512, 8000, 6, 11);
        b_coo = wl::genClustered(512, 128, 3000, 6, 12);
    }
    SMASH_CHECK(a_coo.cols() == b_coo.rows(),
                "inner dimensions must match");

    // Encode. Both operands must share the NZA block size so the
    // BMU's index matching compares aligned grids (§5.2).
    auto cfg = core::HierarchyConfig::fromPaperNotation({16, 4, 2});
    core::SmashMatrix a = core::SmashMatrix::fromCoo(a_coo, cfg);
    fmt::CooMatrix bt_coo = fmt::transpose(
        fmt::CsrMatrix::fromCoo(b_coo)).toCoo();
    core::SmashMatrix bt = core::SmashMatrix::fromCoo(bt_coo, cfg);

    std::cout << "A: " << a.rows() << "x" << a.cols() << " nnz "
              << a.nnz() << " blocks " << a.numBlocks()
              << " | B^T: " << bt.rows() << "x" << bt.cols() << " nnz "
              << bt.nnz() << " blocks " << bt.numBlocks() << "\n";

    // SMASH SpMM with the BMU (functional model), via the engine.
    sim::NativeExec e;
    isa::Bmu bmu;
    fmt::DenseMatrix c_smash(a.rows(), bt.rows());
    eng::spmm(a, bt, c_smash, e, {.bmu = &bmu});

    // Validate against the CSR x CSC inner-product path.
    fmt::CsrMatrix a_csr = fmt::CsrMatrix::fromCoo(a_coo);
    fmt::CscMatrix b_csc = fmt::CscMatrix::fromCoo(b_coo);
    fmt::DenseMatrix c_ref(a.rows(), bt.rows());
    eng::spmm(a_csr, b_csc, c_ref, e);
    if (!c_smash.approxEquals(c_ref, 1e-9)) {
        std::cerr << "SMASH and CSR products disagree!\n";
        return 1;
    }
    std::cout << "Products agree; C has " << c_smash.countNonZeros()
              << " non-zeros.\n";

    // Simulated comparison.
    sim::Machine m_csr, m_hw;
    {
        sim::SimExec se(m_csr);
        fmt::DenseMatrix c(a.rows(), bt.rows());
        eng::spmm(a_csr, b_csc, c, se);
    }
    {
        sim::SimExec se(m_hw);
        isa::Bmu b2;
        fmt::DenseMatrix c(a.rows(), bt.rows());
        eng::spmm(a, bt, c, se, {.bmu = &b2});
    }
    std::cout << "Simulated: CSR " << m_csr.core().cycles()
              << " cycles vs SMASH-BMU " << m_hw.core().cycles()
              << " cycles -> speedup "
              << m_csr.core().cycles() / m_hw.core().cycles() << "x\n";
    return 0;
}
