/**
 * @file
 * Worked example of the observability layer: stand up a serving
 * session, push mixed-priority traffic through it with event
 * tracing armed, then harvest all three instrumentation products —
 * the Prometheus text exposition (what a /metrics endpoint would
 * serve), the per-stage latency breakdown from the session's span
 * stamps, and a Chrome trace-event JSON file ready for
 * chrome://tracing or Perfetto (inspect it with
 * tools/smash_trace).
 */

#include <fstream>
#include <future>
#include <iostream>
#include <vector>

#include "engine/format.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/session.hh"
#include "workloads/matrix_gen.hh"

using namespace smash;

namespace
{

std::vector<Value>
operand(Index cols, Index kind)
{
    std::vector<Value> x(static_cast<std::size_t>(cols));
    for (Index i = 0; i < cols; ++i)
        x[static_cast<std::size_t>(i)] =
            Value(1) + Value((i + kind) % 5) * Value(0.25);
    return x;
}

serve::Priority
mixedPriority(Index r)
{
    const Index slot = r % 8;
    if (slot == 0)
        return serve::Priority::kHigh;
    return slot <= 4 ? serve::Priority::kNormal
                     : serve::Priority::kBatch;
}

} // namespace

int
main()
{
    // 1. Arm tracing before any traffic (SMASH_TRACE=1 in the
    //    environment does the same at startup). Everything below
    //    records 32-byte events into per-thread rings.
    obs::setTraceEnabled(true);

    serve::MatrixRegistry registry;
    const eng::Format chosen = registry.put(
        "ranker", wl::genWithLocality(1024, 1024, 16000, 8, 0.9, 5));
    std::cout << "registered 'ranker' as " << eng::toString(chosen)
              << "\n";

    // 2. Serve two waves of mixed-priority SpMV traffic: kHigh
    //    flushes immediately (batcher reason "priority"), the rest
    //    coalesce until the batch fills ("size") or the flush timer
    //    fires ("deadline") — all of which the metrics count.
    serve::SessionOptions options;
    options.threads = 4;
    options.maxBatch = 8;
    options.compute = serve::ComputeExec::kParallel;
    {
        serve::Session session(registry, options);
        std::vector<std::future<serve::Result<std::vector<Value>>>>
            futures;
        for (Index r = 0; r < 64; ++r) {
            serve::RequestOptions ropts;
            ropts.priority = mixedPriority(r);
            futures.push_back(session.submit(serve::SpmvRequest{
                "ranker", operand(1024, r % 8), ropts}));
        }
        for (auto& f : futures)
            if (!f.get().ok())
                return 1;

        // 3. The span stamps every request carried become per-stage
        //    latency histograms: where did a request's lifetime go?
        std::cout << "\nPer-stage latency (64 requests):\n";
        for (std::size_t s = 0; s < serve::kNumPipelineStages; ++s) {
            const auto stage = static_cast<serve::PipelineStage>(s);
            const serve::LatencyHistogram& h =
                session.stats().stage(stage);
            std::cout << "  " << serve::toString(stage) << ": p50 "
                      << h.percentileUs(0.5) << " us, p99 "
                      << h.percentileUs(0.99) << " us\n";
        }
        const auto queue_us = session.stats().queueUs();
        const auto compute_us = session.stats().computeUs();
        std::cout << "  queue " << queue_us << " us vs compute "
                  << compute_us << " us total\n";
        session.drain();
    } // session + pool torn down: trace writers quiesced

    // 4. The Prometheus text exposition — the same bytes a
    //    /metrics endpoint would serve, also printed by
    //    `bench/perf_report --metrics`.
    std::cout << "\n--- metrics exposition ---\n";
    obs::MetricsRegistry::global().exportText(std::cout);

    // 5. The event trace as Chrome trace-event JSON: load in
    //    chrome://tracing / Perfetto, or run
    //    `tools/smash_trace --validate observability_trace.json`.
    const obs::TraceCollector& tc = obs::TraceCollector::global();
    std::ofstream trace("observability_trace.json");
    tc.dumpJson(trace);
    std::cout << "\nwrote " << tc.retained() << " trace events ("
              << tc.dropped()
              << " dropped by ring wrap) to observability_trace.json\n";
    return 0;
}
