/**
 * @file
 * smash_serverd — the SMASH serving daemon: a net::Server over the
 * built-in demo registry (net/demo_matrices.hh), listening on a
 * Unix-domain socket and/or TCP.
 *
 *   smash_serverd --unix /tmp/smash.sock
 *   smash_serverd --tcp 7450 --threads 8 --max-inflight 64
 *   smash_serverd --unix /tmp/smash.sock --tcp 0   # ephemeral port
 *
 * Flags:
 *   --unix PATH              Unix-domain listener (stale socket
 *                            files are replaced)
 *   --tcp PORT               TCP listener; 0 binds an ephemeral
 *                            port and prints it
 *   --threads N              session pool workers (default 4)
 *   --max-inflight N         global admission cap (default 64;
 *                            0 = unbounded)
 *   --max-inflight-per-conn N  per-connection cap (default 0)
 *   --max-batch N            batch coalescing cap (default 16)
 *   --shards K               register the demo matrices sharded
 *                            into K row bands (default 1 = plain);
 *                            wire answers are bit-identical either
 *                            way
 *   --idle-timeout MS        reap connections idle this long
 *                            (default 30000; 0 disables the reaper)
 *   --http-metrics PORT      HTTP GET /metrics listener; 0 binds an
 *                            ephemeral port and prints it
 *   --tenant-rate R          default per-tenant token-bucket rate,
 *                            requests/second (0 = unlimited)
 *   --tenant-burst B         token-bucket depth (0 = max(rate, 1))
 *   --tenant-inflight N      per-tenant in-flight cap across all of
 *                            the tenant's connections (0 = none)
 *   --shed-target-us US      queue-latency EWMA target arming the
 *                            degradation ladder (0 = disabled)
 *   --faults SPEC            arm the fault injector (chaos testing;
 *                            see net/fault.hh for the spec format).
 *                            $SMASH_NET_FAULTS works too.
 *
 * Lifecycle: runs until SIGINT/SIGTERM, then drains in flight
 * requests (clients see typed kShuttingDown for anything submitted
 * past that point), tears the listeners down, and exits 0. SIGPIPE
 * is ignored process-wide — a client vanishing mid-response is an
 * EPIPE on that connection, never a daemon death.
 *
 * On startup the daemon prints one "listening" line per transport;
 * scripts (the CI smoke leg) wait for those lines before pointing
 * the load generator at it.
 */

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "net/demo_matrices.hh"
#include "net/fault.hh"
#include "net/server.hh"

namespace
{

int
usage(const char* argv0)
{
    std::cerr << "usage: " << argv0
              << " [--unix PATH] [--tcp PORT] [--threads N]\n"
              << "       [--max-inflight N] "
                 "[--max-inflight-per-conn N] [--max-batch N] "
                 "[--shards K]\n"
              << "       [--idle-timeout MS] [--http-metrics PORT] "
                 "[--shed-target-us US]\n"
              << "       [--tenant-rate R] [--tenant-burst B] "
                 "[--tenant-inflight N] [--faults SPEC]\n"
              << "at least one of --unix / --tcp is required\n";
    return 2;
}

double
parseDouble(const char* s, bool& ok)
{
    char* end = nullptr;
    const double v = std::strtod(s, &end);
    ok = end != s && *end == '\0';
    return v;
}

long
parseLong(const char* s, bool& ok)
{
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    ok = end != s && *end == '\0';
    return v;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace smash;

    net::ServerOptions options;
    options.session.threads = 4;
    options.session.maxInflight = 64;
    // Default reaper: a half-open peer may pin a thread for at most
    // 30s. Tests and co-located clients can lower or disable it.
    options.idleTimeout = std::chrono::milliseconds(30000);
    Index shards = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        bool ok = false;
        if (arg == "--unix" && has_value) {
            options.unixPath = argv[++i];
        } else if (arg == "--tcp" && has_value) {
            const long port = parseLong(argv[++i], ok);
            if (!ok || port < 0 || port > 65535)
                return usage(argv[0]);
            options.tcpPort = static_cast<int>(port);
        } else if (arg == "--threads" && has_value) {
            const long n = parseLong(argv[++i], ok);
            if (!ok || n < 1)
                return usage(argv[0]);
            options.session.threads = static_cast<int>(n);
        } else if (arg == "--max-inflight" && has_value) {
            const long n = parseLong(argv[++i], ok);
            if (!ok || n < 0)
                return usage(argv[0]);
            options.session.maxInflight = static_cast<Index>(n);
        } else if (arg == "--max-inflight-per-conn" && has_value) {
            const long n = parseLong(argv[++i], ok);
            if (!ok || n < 0)
                return usage(argv[0]);
            options.maxInflightPerConn = static_cast<Index>(n);
        } else if (arg == "--max-batch" && has_value) {
            const long n = parseLong(argv[++i], ok);
            if (!ok || n < 1)
                return usage(argv[0]);
            options.session.maxBatch = static_cast<Index>(n);
        } else if (arg == "--shards" && has_value) {
            const long n = parseLong(argv[++i], ok);
            if (!ok || n < 1)
                return usage(argv[0]);
            shards = static_cast<Index>(n);
        } else if (arg == "--idle-timeout" && has_value) {
            const long ms = parseLong(argv[++i], ok);
            if (!ok || ms < 0)
                return usage(argv[0]);
            options.idleTimeout = std::chrono::milliseconds(ms);
        } else if (arg == "--http-metrics" && has_value) {
            const long port = parseLong(argv[++i], ok);
            if (!ok || port < 0 || port > 65535)
                return usage(argv[0]);
            options.httpMetricsPort = static_cast<int>(port);
        } else if (arg == "--tenant-rate" && has_value) {
            const double r = parseDouble(argv[++i], ok);
            if (!ok || r < 0)
                return usage(argv[0]);
            options.tenantQuota.ratePerSec = r;
        } else if (arg == "--tenant-burst" && has_value) {
            const double b = parseDouble(argv[++i], ok);
            if (!ok || b < 0)
                return usage(argv[0]);
            options.tenantQuota.burst = b;
        } else if (arg == "--tenant-inflight" && has_value) {
            const long n = parseLong(argv[++i], ok);
            if (!ok || n < 0)
                return usage(argv[0]);
            options.tenantQuota.maxInflight = static_cast<Index>(n);
        } else if (arg == "--shed-target-us" && has_value) {
            const long us = parseLong(argv[++i], ok);
            if (!ok || us < 0)
                return usage(argv[0]);
            options.session.shed.queueTarget =
                std::chrono::microseconds(us);
        } else if (arg == "--faults" && has_value) {
            net::FaultConfig faults;
            std::string fault_error;
            if (!net::parseFaultSpec(argv[++i], faults, fault_error)) {
                std::cerr << "smash_serverd: " << fault_error << "\n";
                return 2;
            }
            net::FaultInjector::global().configure(faults);
        } else {
            return usage(argv[0]);
        }
    }
    if (options.unixPath.empty() && options.tcpPort < 0)
        return usage(argv[0]);

    {
        std::string fault_error;
        if (!net::FaultInjector::global().configureFromEnv(
                fault_error)) {
            std::cerr << "smash_serverd: SMASH_NET_FAULTS: "
                      << fault_error << "\n";
            return 2;
        }
    }

    // Belt and braces with the socket layer's MSG_NOSIGNAL: no
    // vanished client may kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);

    // Take SIGINT/SIGTERM via sigwait on the main thread: every
    // thread the server spawns inherits this mask, so no handler
    // races the accept/read loops.
    sigset_t stop_signals;
    sigemptyset(&stop_signals);
    sigaddset(&stop_signals, SIGINT);
    sigaddset(&stop_signals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &stop_signals, nullptr);

    serve::MatrixRegistry registry;
    net::populateDemoRegistry(registry, shards);

    net::Server server(registry, options);
    std::string error;
    if (!server.start(error)) {
        std::cerr << "smash_serverd: " << error << "\n";
        return 1;
    }
    if (!options.unixPath.empty())
        std::cout << "listening unix " << options.unixPath << "\n";
    if (options.tcpPort >= 0)
        std::cout << "listening tcp " << server.tcpPort() << "\n";
    if (options.httpMetricsPort >= 0)
        std::cout << "listening http " << server.httpMetricsPort()
                  << "\n";
    if (net::FaultInjector::global().enabled())
        std::cout << "fault injection armed\n";
    std::cout.flush();

    int sig = 0;
    sigwait(&stop_signals, &sig);
    std::cout << "smash_serverd: "
              << (sig == SIGINT ? "SIGINT" : "SIGTERM")
              << ", draining\n";
    server.shutdown();
    std::cout << "smash_serverd: served "
              << server.connectionsAccepted()
              << " connections, exiting\n";
    return 0;
}
