/**
 * @file
 * Trace-file companion of the SMASH_TRACE runtime: validates and
 * summarizes the Chrome trace-event JSON written by instrumented
 * runs (bench/serving_throughput, examples/observability_demo).
 *
 *   smash_trace FILE                 per-subsystem event summary
 *   smash_trace --validate FILE      strict JSON + structure check;
 *                                    exit 1 on malformed input or an
 *                                    empty traceEvents array
 *   smash_trace --validate --expect CAT ... FILE
 *                                    additionally require >= 1 event
 *                                    of each named category (CI uses
 *                                    pool batcher pipeline dispatch
 *                                    plan_cache)
 *
 * The validator is the same self-contained parser the unit tests
 * run (obs::validateJson) — no external JSON dependency — so a file
 * this tool accepts also round-trips through python3 -m json.tool
 * and loads in chrome://tracing / Perfetto.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.hh"

namespace
{

/** Value of the first "key": "string" occurrence after @p from. */
std::string
stringField(const std::string& line, const char* key)
{
    const std::string needle = std::string("\"") + key + "\": \"";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return "";
    const std::size_t begin = at + needle.size();
    const std::size_t end = line.find('"', begin);
    if (end == std::string::npos)
        return "";
    return line.substr(begin, end - begin);
}

/** Value of the first numeric "key": N occurrence (0 if absent). */
double
numberField(const std::string& line, const char* key)
{
    const std::string needle = std::string("\"") + key + "\": ";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return 0;
    return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

struct CatStats
{
    std::size_t events = 0;
    double totalDurUs = 0;
    std::map<std::string, std::size_t> names;
};

int
run(int argc, char** argv)
{
    bool validate = false;
    std::vector<std::string> expected;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--validate") == 0) {
            validate = true;
        } else if (std::strcmp(argv[i], "--expect") == 0 &&
                   i + 1 < argc) {
            expected.emplace_back(argv[++i]);
        } else if (argv[i][0] == '-') {
            std::cerr << "unknown option " << argv[i] << "\n";
            return 2;
        } else if (path.empty()) {
            path = argv[i];
        } else {
            std::cerr << "one trace file at a time\n";
            return 2;
        }
    }
    if (path.empty()) {
        std::cerr << "usage: smash_trace [--validate]"
                     " [--expect CAT]... FILE\n";
        return 2;
    }

    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot read " << path << "\n";
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    std::string error;
    if (!smash::obs::validateJson(text, error)) {
        std::cerr << path << ": invalid JSON: " << error << "\n";
        return 1;
    }
    if (text.find("\"traceEvents\"") == std::string::npos) {
        std::cerr << path << ": no traceEvents array\n";
        return 1;
    }

    // The dump writes one event per line, so a line scan recovers
    // the per-category breakdown without a DOM.
    std::map<std::string, CatStats> cats;
    std::size_t total = 0;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        const std::string cat = stringField(line, "cat");
        if (cat.empty())
            continue;
        CatStats& s = cats[cat];
        ++s.events;
        ++total;
        ++s.names[stringField(line, "name")];
        s.totalDurUs += numberField(line, "dur");
    }

    if (validate && total == 0) {
        std::cerr << path << ": traceEvents is empty\n";
        return 1;
    }
    int missing = 0;
    for (const std::string& cat : expected) {
        if (cats.find(cat) == cats.end()) {
            std::cerr << path << ": no \"" << cat << "\" events\n";
            ++missing;
        }
    }
    if (missing > 0)
        return 1;

    if (validate) {
        std::cout << path << ": valid (" << total << " events, "
                  << cats.size() << " subsystems)\n";
        return 0;
    }
    std::cout << path << ": " << total << " events\n";
    for (const auto& [cat, s] : cats) {
        std::cout << "  " << cat << ": " << s.events << " events, "
                  << s.totalDurUs << " us total span time\n";
        for (const auto& [name, n] : s.names)
            std::cout << "    " << name << ": " << n << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    return run(argc, argv);
}
