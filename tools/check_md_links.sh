#!/usr/bin/env bash
# Fail on dead relative links in the repository's markdown files.
# Usage: tools/check_md_links.sh   (exit 1 when any link is dead)
#
# Checks every [text](target) whose target is not an absolute URL:
# the target (minus any #anchor) must exist relative to the file
# that links it. External URLs are not fetched — CI must not flake
# on someone else's server.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
fail=0
checked=0

while IFS= read -r -d '' md; do
    dir=$(dirname "$md")
    while IFS= read -r target; do
        case "$target" in
            http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        path="${target%%#*}"
        [ -z "$path" ] && continue
        checked=$((checked + 1))
        if [ ! -e "$dir/$path" ]; then
            echo "dead link in ${md#"$root"/}: ($target)"
            fail=1
        fi
    done < <(grep -oE '\[[^]]*\]\([^)]+\)' "$md" \
             | sed -E 's/^\[[^]]*\]\(//; s/\)$//; s/ +"[^"]*"$//')
done < <(find "$root" -name '*.md' -not -path '*/build/*' -print0)

echo "checked $checked relative markdown links"
exit $fail
