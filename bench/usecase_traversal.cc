/**
 * @file
 * Semiring traversal use case (extension; generalizes the paper's
 * §7.3 graph results): BFS (boolean semiring) and SSSP (min-plus)
 * as iterated semiring SpMV on the Table-4 graph stand-ins, with
 * CSR and SW-SMASH backends. The point: the SMASH encoding needs no
 * changes to serve non-arithmetic semirings — indexing is the same.
 */

#include <iostream>

#include "common/table.hh"
#include "graph/generators.hh"
#include "graph/semiring.hh"
#include "graph/traversal.hh"
#include "formats/convert.hh"
#include "harness.hh"
#include "workloads/graph_suite.hh"

namespace smash::bench
{
namespace
{

struct TraversalCost
{
    double cycles = 0;
    Counter instructions = 0;
};

int
run()
{
    const double scale = wl::benchScale(0.02);
    preamble("Traversal use case (extension)",
             "BFS (boolean) and SSSP (min-plus) as semiring SpMV over "
             "CSR vs SW-SMASH on the Table-4 graph stand-ins; rounds "
             "capped at 24 per algorithm (identical across backends)",
             scale);

    // Fixed round budget: the road-network stand-in has a large
    // diameter, so a fixpoint run would be O(V*E); a fixed budget
    // keeps the work identical across backends and bounded.
    const Index kRounds = 24;

    TextTable table("Simulated semiring traversals");
    table.setHeader({"graph", "algorithm", "backend", "instructions",
                     "cycles", "speedup"});

    for (const wl::GraphSpec& spec : wl::table4Specs()) {
        graph::Graph g = wl::generateGraph(wl::scaleSpec(spec, scale));
        fmt::CsrMatrix at = fmt::transpose(g.toAdjacencyMatrix());
        if (at.nnz() == 0)
            continue;
        core::SmashMatrix at_smash = core::SmashMatrix::fromCoo(
            at.toCoo(), core::HierarchyConfig::fromPaperNotation(
                {16, 4, 2}));

        // --- BFS over both backends. ---
        double csr_cycles = 0;
        {
            sim::Machine m;
            sim::SimExec e(m);
            graph::bfsSemiring(
                g.numVertices(), 0,
                [&](const std::vector<Value>& x, std::vector<Value>& y) {
                    graph::spmvSemiringCsr<graph::BooleanSemiring>(
                        at, x, y, e);
                },
                kRounds);
            csr_cycles = m.core().cycles();
            table.addRow({spec.name, "BFS", "CSR",
                          std::to_string(m.core().instructions()),
                          formatFixed(m.core().cycles(), 0), "1.00"});
        }
        {
            sim::Machine m;
            sim::SimExec e(m);
            graph::bfsSemiring(
                g.numVertices(), 0,
                [&](const std::vector<Value>& x, std::vector<Value>& y) {
                    std::vector<Value> xp = kern::padVector(
                        x, at_smash.paddedCols());
                    graph::spmvSemiringSmashSw<graph::BooleanSemiring>(
                        at_smash, xp, y, e);
                },
                kRounds);
            table.addRow({spec.name, "BFS", "SW-SMASH",
                          std::to_string(m.core().instructions()),
                          formatFixed(m.core().cycles(), 0),
                          formatFixed(csr_cycles / m.core().cycles(), 2)});
        }

        // --- SSSP (unit weights) over both backends. ---
        {
            sim::Machine m;
            sim::SimExec e(m);
            graph::ssspSemiring(
                g.numVertices(), 0,
                [&](const std::vector<Value>& x, std::vector<Value>& y) {
                    graph::spmvSemiringCsr<graph::MinPlusSemiring>(
                        at, x, y, e);
                },
                kRounds);
            csr_cycles = m.core().cycles();
            table.addRow({spec.name, "SSSP", "CSR",
                          std::to_string(m.core().instructions()),
                          formatFixed(m.core().cycles(), 0), "1.00"});
        }
        {
            sim::Machine m;
            sim::SimExec e(m);
            graph::ssspSemiring(
                g.numVertices(), 0,
                [&](const std::vector<Value>& x, std::vector<Value>& y) {
                    std::vector<Value> xp = kern::padVector(
                        x, at_smash.paddedCols());
                    graph::spmvSemiringSmashSw<graph::MinPlusSemiring>(
                        at_smash, xp, y, e);
                },
                kRounds);
            table.addRow({spec.name, "SSSP", "SW-SMASH",
                          std::to_string(m.core().instructions()),
                          formatFixed(m.core().cycles(), 0),
                          formatFixed(csr_cycles / m.core().cycles(), 2)});
        }
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: SW-SMASH competitive with CSR on the "
                 "denser community graphs and behind on the road "
                 "network (same high-sparsity penalty as Fig. 10's "
                 "M1-M2); both backends compute identical frontiers.\n";
    return 0;
}

} // namespace
} // namespace smash::bench

int
main()
{
    return smash::bench::run();
}
