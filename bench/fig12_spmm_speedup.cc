/**
 * @file
 * Reproduces paper Figures 12 and 13: SpMM speedup and normalized
 * executed instructions of TACO-BCSR, Software-only SMASH and SMASH
 * (BMU) over TACO-CSR, per matrix.
 *
 * Paper reference: SMASH averages 1.44x over TACO-CSR and 1.30x
 * over TACO-BCSR — larger than the SpMV gain because inner-product
 * SpMM performs twice the indexing work per dot product.
 *
 * B is A^T restricted to kSpmmCols columns so the O(rows x cols)
 * dot-product grid stays tractable (DESIGN.md §5).
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"

namespace smash::bench
{
namespace
{

int
run()
{
    const double scale = wl::benchScale(0.02);
    preamble("Figures 12 + 13",
             "SpMM speedup and normalized instructions vs TACO-CSR "
             "(per matrix, paper bitmap configs, B = A^T[:, :64])",
             scale);

    TextTable speed("Figure 12 — SpMM speedup over TACO-CSR");
    speed.setHeader({"matrix.config", "TACO-BCSR", "SW-SMASH", "SMASH"});
    TextTable instr("Figure 13 — SpMM normalized instructions");
    instr.setHeader({"matrix.config", "TACO-BCSR", "SW-SMASH", "SMASH"});

    double sum_bcsr = 0, sum_sw = 0, sum_hw = 0;
    double isum_bcsr = 0, isum_sw = 0, isum_hw = 0;
    int count = 0;
    for (const wl::MatrixSpec& full_spec : wl::table3Specs()) {
        wl::MatrixSpec spec = wl::scaleSpec(full_spec, scale);
        MatrixBundle bundle = buildBundle(spec);
        SpmmBundle spmm = buildSpmmBundle(bundle);

        SimResult csr = simSpmm(SpmvScheme::kTacoCsr, bundle, spmm);
        SimResult bcsr = simSpmm(SpmvScheme::kTacoBcsr, bundle, spmm);
        SimResult sw = simSpmm(SpmvScheme::kSmashSw, bundle, spmm);
        SimResult hw = simSpmm(SpmvScheme::kSmashHw, bundle, spmm);

        auto inorm = [&](const SimResult& r) {
            return static_cast<double>(r.instructions) /
                static_cast<double>(csr.instructions);
        };
        std::string label = spec.name + "." +
            bundle.smash.config().toString();
        speed.addRow({label,
                      formatFixed(csr.cycles / bcsr.cycles, 2),
                      formatFixed(csr.cycles / sw.cycles, 2),
                      formatFixed(csr.cycles / hw.cycles, 2)});
        instr.addRow({label, formatFixed(inorm(bcsr), 2),
                      formatFixed(inorm(sw), 2),
                      formatFixed(inorm(hw), 2)});
        sum_bcsr += csr.cycles / bcsr.cycles;
        sum_sw += csr.cycles / sw.cycles;
        sum_hw += csr.cycles / hw.cycles;
        isum_bcsr += inorm(bcsr);
        isum_sw += inorm(sw);
        isum_hw += inorm(hw);
        ++count;
    }
    speed.addRow({"AVG (paper: ~1.11 / ~1.05 / 1.44)",
                  formatFixed(sum_bcsr / count, 2),
                  formatFixed(sum_sw / count, 2),
                  formatFixed(sum_hw / count, 2)});
    instr.addRow({"AVG", formatFixed(isum_bcsr / count, 2),
                  formatFixed(isum_sw / count, 2),
                  formatFixed(isum_hw / count, 2)});
    speed.print(std::cout);
    std::cout << "\n";
    instr.print(std::cout);
    return 0;
}

} // namespace
} // namespace smash::bench

int
main()
{
    return smash::bench::run();
}
