/**
 * @file
 * Shared plumbing for the per-figure benchmark binaries: the
 * simulated-system preamble (paper Table 2), workload-bundle
 * construction, per-scheme SpMV/SpMM simulation runners, and
 * wall-clock timing helpers for the native (real-system) benches.
 *
 * Every binary prints the paper figure/table it regenerates, the
 * workload scale in effect (SMASH_BENCH_SCALE), and then the same
 * rows/series the paper reports.
 */

#ifndef SMASH_BENCH_HARNESS_HH
#define SMASH_BENCH_HARNESS_HH

#include <functional>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/smash_matrix.hh"
#include "formats/bcsr_matrix.hh"
#include "formats/csc_matrix.hh"
#include "formats/csr_matrix.hh"
#include "sim/exec_model.hh"
#include "workloads/matrix_suite.hh"

namespace smash::bench
{

/** Execution model selected on a bench command line. */
enum class ExecKind
{
    kNative,   //!< serial native kernels (wall clock)
    kParallel, //!< ParallelExec drivers (wall clock)
    kSim,      //!< SimExec (cycle-accurate cost model)
};

/** Short lower-case name ("native", "parallel", "sim"). */
const char* toString(ExecKind kind);

/** Options shared by the CLI-driven benches. */
struct BenchCli
{
    int threads = 4;                  //!< --threads N
    ExecKind exec = ExecKind::kNative; //!< --exec {native,parallel,sim}
    bool pin = false;                 //!< --pin: pin pool workers
};

/**
 * Parse --threads N, --exec {native,parallel,sim}, and --pin from a
 * bench command line (all optional, @p defaults seeds the rest).
 * Prints usage and exits(2) on an unknown flag or a malformed
 * value.
 */
BenchCli parseBenchCli(int argc, char** argv,
                       const BenchCli& defaults = {});

/** Simulated-cost measurement of one kernel run. */
struct SimResult
{
    double cycles = 0;
    Counter instructions = 0;
    Counter dramReads = 0;
};

/** Print the figure banner + simulated system config + scale. */
void preamble(const std::string& figure, const std::string& what,
              double scale);

/** All encodings of one suite matrix, built once per bench. */
struct MatrixBundle
{
    wl::MatrixSpec spec;
    fmt::CooMatrix coo;
    fmt::CsrMatrix csr;
    fmt::BcsrMatrix bcsr;
    core::SmashMatrix smash;
    double locality = 0;
};

/**
 * Generate and encode a suite matrix.
 * @param hierarchy overrides the spec's paper hierarchy when
 *        non-empty (top-down notation)
 */
MatrixBundle buildBundle(const wl::MatrixSpec& spec,
                         const std::vector<Index>& hierarchy = {});

/** SpMV schemes of Figs. 10-11. */
enum class SpmvScheme
{
    kTacoCsr,
    kTacoBcsr,
    kMklCsr,
    kSmashSw,
    kSmashHw,
    kIdealCsr,
};

/** Run one simulated SpMV on a fresh machine. */
SimResult simSpmv(SpmvScheme scheme, const MatrixBundle& bundle);

/** Native wall-clock SpMV (seconds), best of @p reps repetitions. */
double nativeSpmvSeconds(SpmvScheme scheme, const MatrixBundle& bundle,
                         int reps);

/** Inputs for the inner-product SpMM benches: B = A^T restricted to
 *  the first kSpmmCols columns (documented in DESIGN.md). */
struct SpmmBundle
{
    fmt::CscMatrix bCsc;
    fmt::BcsrMatrix btBcsr;
    core::SmashMatrix btSmash;
    Index cols = 0;
};

/** Number of B columns used by the SpMM benches. */
inline constexpr Index kSpmmCols = 64;

/** Build the SpMM operand set for @p bundle. */
SpmmBundle buildSpmmBundle(const MatrixBundle& bundle,
                           const std::vector<Index>& hierarchy = {});

/** Run one simulated SpMM on a fresh machine. */
SimResult simSpmm(SpmvScheme scheme, const MatrixBundle& a,
                  const SpmmBundle& b);

/** Native wall-clock SpMM (seconds), best of @p reps repetitions. */
double nativeSpmmSeconds(SpmvScheme scheme, const MatrixBundle& a,
                         const SpmmBundle& b, int reps);

/** Wall-clock seconds of @p fn (single invocation). */
double secondsOf(const std::function<void()>& fn);

} // namespace smash::bench

#endif // SMASH_BENCH_HARNESS_HH
