/**
 * @file
 * Reproduces paper Figures 10 and 11: SpMV speedup and normalized
 * executed instructions of TACO-BCSR, Software-only SMASH and SMASH
 * (BMU) over TACO-CSR, per matrix, using the per-matrix bitmap
 * configurations from the figure captions (Mi.b2.b1.b0).
 *
 * Paper reference: SMASH averages 1.38x over TACO-CSR (1.32x over
 * TACO-BCSR) with ~47% fewer instructions than TACO-CSR;
 * Software-only SMASH loses to CSR on very sparse matrices and wins
 * on denser ones.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"

namespace smash::bench
{
namespace
{

int
run()
{
    const double scale = wl::benchScale(0.4);
    preamble("Figures 10 + 11",
             "SpMV speedup and normalized instructions vs TACO-CSR "
             "(per matrix, paper bitmap configs)",
             scale);

    TextTable speed("Figure 10 — SpMV speedup over TACO-CSR");
    speed.setHeader({"matrix.config", "locality", "TACO-BCSR",
                     "SW-SMASH", "SMASH"});
    TextTable instr("Figure 11 — SpMV normalized instructions");
    instr.setHeader({"matrix.config", "TACO-BCSR", "SW-SMASH", "SMASH"});

    double sum_bcsr = 0, sum_sw = 0, sum_hw = 0;
    double isum_bcsr = 0, isum_sw = 0, isum_hw = 0;
    int count = 0;
    for (const wl::MatrixSpec& full_spec : wl::table3Specs()) {
        wl::MatrixSpec spec = wl::scaleSpec(full_spec, scale);
        MatrixBundle bundle = buildBundle(spec);

        SimResult csr = simSpmv(SpmvScheme::kTacoCsr, bundle);
        SimResult bcsr = simSpmv(SpmvScheme::kTacoBcsr, bundle);
        SimResult sw = simSpmv(SpmvScheme::kSmashSw, bundle);
        SimResult hw = simSpmv(SpmvScheme::kSmashHw, bundle);

        auto inorm = [&](const SimResult& r) {
            return static_cast<double>(r.instructions) /
                static_cast<double>(csr.instructions);
        };
        std::string label = spec.name + "." +
            bundle.smash.config().toString();
        speed.addRow({label, formatFixed(bundle.locality, 2),
                      formatFixed(csr.cycles / bcsr.cycles, 2),
                      formatFixed(csr.cycles / sw.cycles, 2),
                      formatFixed(csr.cycles / hw.cycles, 2)});
        instr.addRow({label, formatFixed(inorm(bcsr), 2),
                      formatFixed(inorm(sw), 2),
                      formatFixed(inorm(hw), 2)});
        sum_bcsr += csr.cycles / bcsr.cycles;
        sum_sw += csr.cycles / sw.cycles;
        sum_hw += csr.cycles / hw.cycles;
        isum_bcsr += inorm(bcsr);
        isum_sw += inorm(sw);
        isum_hw += inorm(hw);
        ++count;
    }
    speed.addRow({"AVG (paper: 1.06 / ~0.95 / 1.38)", "",
                  formatFixed(sum_bcsr / count, 2),
                  formatFixed(sum_sw / count, 2),
                  formatFixed(sum_hw / count, 2)});
    instr.addRow({"AVG (paper SMASH: ~0.53)",
                  formatFixed(isum_bcsr / count, 2),
                  formatFixed(isum_sw / count, 2),
                  formatFixed(isum_hw / count, 2)});
    speed.print(std::cout);
    std::cout << "\n";
    instr.print(std::cout);
    return 0;
}

} // namespace
} // namespace smash::bench

int
main()
{
    return smash::bench::run();
}
