/**
 * @file
 * Reproduces paper Figure 16: sensitivity of SMASH SpMV speedup to
 * the *locality of sparsity* (average non-zeros per NZA block /
 * block size), swept 12.5%..100% on the M2 / M8 / M13 shapes with
 * the Mi.16.4.8 and M13.8.4.8 configurations, normalized to 12.5%.
 *
 * Paper reference: speedup rises with locality (up to +25% on M13),
 * and the benefit is smaller for sparser matrices, where indexing
 * dominates and NZA zero-padding matters less.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "workloads/matrix_gen.hh"

namespace smash::bench
{
namespace
{

struct Shape
{
    const char* label;
    int suiteIndex;             // index into table3Specs()
    std::vector<Index> config;  // top-down, b0 = 8 per the caption
};

int
run()
{
    const double scale = wl::benchScale(0.3);
    preamble("Figure 16",
             "SMASH SpMV speedup vs locality of sparsity "
             "(normalized to 12.5% locality)",
             scale);

    const std::vector<Shape> shapes = {
        {"M2.16.4.8", 1, {16, 4, 8}},
        {"M8.16.4.8", 7, {16, 4, 8}},
        {"M13.8.4.8", 12, {8, 4, 8}},
    };
    const std::vector<double> localities{0.125, 0.25, 0.375, 0.5,
                                         0.625, 0.75, 0.875, 1.0};

    TextTable table("Figure 16 — SpMV speedup vs locality of sparsity");
    std::vector<std::string> header{"shape"};
    for (double loc : localities)
        header.push_back(formatFixed(loc * 100, 1) + "%");
    table.setHeader(header);

    auto specs = wl::table3Specs();
    for (const Shape& shape : shapes) {
        wl::MatrixSpec spec = wl::scaleSpec(
            specs[static_cast<std::size_t>(shape.suiteIndex)], scale);
        const Index block = shape.config.back();
        std::vector<std::string> row{shape.label};
        double base_cycles = 0;
        for (double loc : localities) {
            fmt::CooMatrix coo = wl::genWithLocality(
                spec.rows, spec.cols, spec.nnz, block, loc, spec.seed);
            MatrixBundle bundle;
            bundle.spec = spec;
            bundle.coo = std::move(coo);
            bundle.csr = fmt::CsrMatrix::fromCoo(bundle.coo);
            bundle.bcsr = fmt::BcsrMatrix::fromCoo(bundle.coo, 4, 4);
            bundle.smash = core::SmashMatrix::fromCoo(
                bundle.coo,
                core::HierarchyConfig::fromPaperNotation(shape.config));
            double cycles = simSpmv(SpmvScheme::kSmashHw, bundle).cycles;
            if (loc == localities.front())
                base_cycles = cycles;
            row.push_back(formatFixed(base_cycles / cycles, 2));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "(paper: monotone increase, up to ~1.25 on M13; "
                 "flattest on the sparsest matrix M2)\n";
    return 0;
}

} // namespace
} // namespace smash::bench

int
main()
{
    return smash::bench::run();
}
