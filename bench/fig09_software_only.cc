/**
 * @file
 * Reproduces paper Figure 9: software-only approaches on a *real*
 * system — TACO-CSR, TACO-BCSR, MKL-like optimized CSR, and
 * Software-only SMASH — native wall-clock, normalized to TACO-CSR,
 * averaged over the Table-3 suite, for SpMV and SpMM.
 *
 * Paper reference (Xeon Gold 5118): MKL 1.15x (SpMV) / 1.25x
 * (SpMM); TACO-BCSR ~1.12x/1.20x; Software-only SMASH 1.05x (SpMV)
 * and 1.10x (SpMM) over TACO-CSR, below BCSR and MKL.
 *
 * This binary also registers google-benchmark timers for the
 * per-scheme kernels on a representative matrix (M8) so standard
 * tooling can consume the numbers; the summary table is printed
 * first.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "common/table.hh"
#include "harness.hh"

namespace smash::bench
{
namespace
{

double g_scale = 0.25;

void
summary()
{
    preamble("Figure 9",
             "Software-only schemes, native wall clock, normalized to "
             "TACO-CSR (suite average; this machine stands in for the "
             "paper's Xeon Gold 5118)",
             g_scale);

    // Geometric mean of per-matrix speedups over TACO-CSR (a sum of
    // raw seconds would let the largest matrix swamp the average).
    double mv[4] = {0, 0, 0, 0};
    double mm[4] = {0, 0, 0, 0};
    int count = 0;
    const SpmvScheme schemes[4] = {
        SpmvScheme::kTacoCsr, SpmvScheme::kTacoBcsr,
        SpmvScheme::kMklCsr, SpmvScheme::kSmashSw};

    for (const wl::MatrixSpec& full_spec : wl::table3Specs()) {
        wl::MatrixSpec spec = wl::scaleSpec(full_spec, g_scale);
        MatrixBundle bundle = buildBundle(spec);
        SpmmBundle spmm = buildSpmmBundle(bundle);
        double mv_csr = nativeSpmvSeconds(schemes[0], bundle, 3);
        double mm_csr = nativeSpmmSeconds(schemes[0], bundle, spmm, 2);
        for (int s = 0; s < 4; ++s) {
            double mv_s = s == 0
                ? mv_csr : nativeSpmvSeconds(schemes[s], bundle, 3);
            double mm_s = s == 0
                ? mm_csr : nativeSpmmSeconds(schemes[s], bundle, spmm, 2);
            mv[s] += std::log(mv_csr / mv_s);
            mm[s] += std::log(mm_csr / mm_s);
        }
        ++count;
    }

    TextTable table("Figure 9 — speedup over TACO-CSR (native)");
    table.setHeader({"scheme", "SpMV", "paper SpMV", "SpMM",
                     "paper SpMM"});
    const char* names[4] = {"TACO-CSR", "TACO-BCSR", "MKL-like CSR",
                            "Software-only SMASH"};
    const char* paper_mv[4] = {"1.00", "~1.12", "1.15", "1.05"};
    const char* paper_mm[4] = {"1.00", "~1.20", "1.25", "1.10"};
    for (int s = 0; s < 4; ++s) {
        table.addRow({names[s],
                      formatFixed(std::exp(mv[s] / count), 2),
                      paper_mv[s],
                      formatFixed(std::exp(mm[s] / count), 2),
                      paper_mm[s]});
    }
    table.print(std::cout);
}

/** google-benchmark registration on a representative matrix. */
class Fig9Fixture : public ::benchmark::Fixture
{
  public:
    void
    SetUp(::benchmark::State&) override
    {
        if (!bundle) {
            wl::MatrixSpec spec = wl::scaleSpec(wl::table3Specs()[7],
                                                g_scale);
            bundle = std::make_unique<MatrixBundle>(buildBundle(spec));
        }
    }

    static std::unique_ptr<MatrixBundle> bundle;
};

std::unique_ptr<MatrixBundle> Fig9Fixture::bundle;

#define SMASH_FIG9_BENCH(name, scheme)                                     \
    BENCHMARK_F(Fig9Fixture, name)(::benchmark::State & state)             \
    {                                                                      \
        for (auto _ : state) {                                             \
            ::benchmark::DoNotOptimize(                                    \
                nativeSpmvSeconds(scheme, *bundle, 1));                    \
        }                                                                  \
    }

SMASH_FIG9_BENCH(SpmvTacoCsr, SpmvScheme::kTacoCsr)
SMASH_FIG9_BENCH(SpmvTacoBcsr, SpmvScheme::kTacoBcsr)
SMASH_FIG9_BENCH(SpmvMklLike, SpmvScheme::kMklCsr)
SMASH_FIG9_BENCH(SpmvSmashSw, SpmvScheme::kSmashSw)

} // namespace
} // namespace smash::bench

int
main(int argc, char** argv)
{
    smash::bench::g_scale = smash::wl::benchScale(0.25);
    smash::bench::summary();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
