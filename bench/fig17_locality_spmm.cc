/**
 * @file
 * Reproduces paper Figure 17: sensitivity of SMASH SpMM speedup to
 * the locality of sparsity, same shapes/configurations as Fig. 16,
 * normalized to 12.5% locality. Paper reference: same monotone
 * trend as SpMV, slightly stronger for the denser matrices.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "workloads/matrix_gen.hh"

namespace smash::bench
{
namespace
{

struct Shape
{
    const char* label;
    int suiteIndex;
    std::vector<Index> config;
};

int
run()
{
    const double scale = wl::benchScale(0.05);
    preamble("Figure 17",
             "SMASH SpMM speedup vs locality of sparsity "
             "(normalized to 12.5% locality; B = A^T[:, :64])",
             scale);

    const std::vector<Shape> shapes = {
        {"M2.16.4.8", 1, {16, 4, 8}},
        {"M8.16.4.8", 7, {16, 4, 8}},
        {"M13.8.4.8", 12, {8, 4, 8}},
    };
    const std::vector<double> localities{0.125, 0.25, 0.375, 0.5,
                                         0.625, 0.75, 0.875, 1.0};

    TextTable table("Figure 17 — SpMM speedup vs locality of sparsity");
    std::vector<std::string> header{"shape"};
    for (double loc : localities)
        header.push_back(formatFixed(loc * 100, 1) + "%");
    table.setHeader(header);

    auto specs = wl::table3Specs();
    for (const Shape& shape : shapes) {
        wl::MatrixSpec spec = wl::scaleSpec(
            specs[static_cast<std::size_t>(shape.suiteIndex)], scale);
        const Index block = shape.config.back();
        std::vector<std::string> row{shape.label};
        double base_cycles = 0;
        for (double loc : localities) {
            // Feasibility: the locality generator needs
            // ceil(nnz / (loc * block)) aligned blocks to fit in the
            // rows x (cols/block) grid. Scaled-down runs can make
            // the lowest locality points infeasible (nnz shrinks as
            // s^1.5 but the grid as s^2); normalize to the first
            // feasible point instead.
            const double blocks_needed =
                static_cast<double>(spec.nnz) / (loc * block);
            const double grid = static_cast<double>(spec.rows) *
                (static_cast<double>(spec.cols) / block);
            if (blocks_needed > grid) {
                row.push_back("n/a");
                continue;
            }
            MatrixBundle bundle;
            bundle.spec = spec;
            bundle.coo = wl::genWithLocality(
                spec.rows, spec.cols, spec.nnz, block, loc, spec.seed);
            bundle.csr = fmt::CsrMatrix::fromCoo(bundle.coo);
            bundle.bcsr = fmt::BcsrMatrix::fromCoo(bundle.coo, 4, 4);
            bundle.smash = core::SmashMatrix::fromCoo(
                bundle.coo,
                core::HierarchyConfig::fromPaperNotation(shape.config));
            SpmmBundle spmm = buildSpmmBundle(bundle, shape.config);
            double cycles =
                simSpmm(SpmvScheme::kSmashHw, bundle, spmm).cycles;
            if (base_cycles == 0)
                base_cycles = cycles; // first feasible point
            row.push_back(formatFixed(base_cycles / cycles, 2));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "(paper: monotone increase with locality)\n";
    return 0;
}

} // namespace
} // namespace smash::bench

int
main()
{
    return smash::bench::run();
}
