/**
 * @file
 * net_loadgen — multi-process closed-loop load generator for
 * smash_serverd, and the end-to-end smoke gate the CI server leg
 * runs.
 *
 * Sweep mode (default): for each connection count in --conns, fork
 * that many worker processes. Each worker opens one connection and
 * runs a closed loop with --window pipelined SpMV requests
 * outstanding; per-request latencies and status counts flow back to
 * the parent over a pipe, which prints one table row per sweep
 * point:
 *
 *   conns window   req/s   p50(us)   p99(us)        ok  overloaded
 *
 * Offered load is the closed-loop product conns x window; pushing
 * it past the server's --max-inflight is how the p99 knee and the
 * kOverloaded column appear.
 *
 * Smoke mode (--smoke): single process, four gates, exit 0 only if
 * all hold —
 *   1. ping round-trips;
 *   2. remote SpMV answers are BIT-IDENTICAL to a local eng::spmv
 *      over the same demo matrix (both sides build it from
 *      net/demo_matrices.hh; dyadic values make the comparison
 *      exact, not approximate);
 *   3. a kBatch-priority fail-fast burst observes kOverloaded over
 *      the wire (run the server with a small --max-inflight, the CI
 *      leg uses 4) while at least one request still succeeds;
 *   4. a 1 us deadline observes kDeadlineExceeded over the wire.
 *
 * Metrics mode (--metrics): fetch the server's Prometheus
 * exposition over the wire (Op::kMetrics) and print it verbatim —
 * the CI leg pipes this through grep to assert known families are
 * live on a real endpoint.
 *
 * Chaos mode (--chaos): self-contained resilience gate, no external
 * server needed. Forks a child running an in-process net::Server
 * with the fault injector armed (drops, delays, truncations, header
 * bit-flips, short writes), a tiny admission gate, a tenant quota,
 * the shed ladder, and a fast idle reaper — then hammers it from
 * --chaos-threads RetryingClients. Exit 0 requires every request to
 * eventually succeed BIT-IDENTICAL to the local oracle, the tenant
 * in-flight gauge to drain to zero, and the child to exit 0 on
 * SIGTERM. Prints the retry/reconnect tallies and the server's
 * resilience counters.
 *
 * Endpoint flags: --unix PATH | --tcp PORT [--host H] — exactly one
 * transport (chaos mode needs neither). Sweep knobs: --conns
 * A,B,... --window N --duration-ms D. After a sweep the server's
 * resilience counters (sheds, quota rejects, injected faults,
 * reaped connections) are fetched and printed when present.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <unordered_map>
#include <vector>

#include "engine/dispatch.hh"
#include "formats/csr_matrix.hh"
#include "net/client.hh"
#include "net/demo_matrices.hh"
#include "net/fault.hh"
#include "net/retry_client.hh"
#include "net/server.hh"
#include "sim/exec_model.hh"

namespace
{

using namespace smash;
using Clock = std::chrono::steady_clock;

struct Endpoint
{
    std::string unixPath;
    std::string host = "localhost";
    int tcpPort = -1;
};

bool
connectClient(net::Client& client, const Endpoint& ep,
              std::string& error)
{
    if (!ep.unixPath.empty())
        return client.connectUnixSocket(ep.unixPath, error);
    return client.connectTcpSocket(
        ep.host, static_cast<std::uint16_t>(ep.tcpPort), error);
}

/** Per-worker tallies shipped parent-ward over the pipe. */
struct WorkerStats
{
    std::uint64_t ok = 0;
    std::uint64_t overloaded = 0;
    std::uint64_t deadline = 0;
    std::uint64_t quota = 0;
    std::uint64_t other = 0;
    std::vector<std::uint32_t> latencies_us; //!< ok requests only
};

/** Pipes are plain fds — read/write, not the socket helpers. */
bool
writeAll(int fd, const void* buf, std::size_t n)
{
    const auto* p = static_cast<const std::uint8_t*>(buf);
    std::size_t sent = 0;
    while (sent < n) {
        const ssize_t r = ::write(fd, p + sent, n - sent);
        if (r < 0 && errno == EINTR)
            continue;
        if (r <= 0)
            return false;
        sent += static_cast<std::size_t>(r);
    }
    return true;
}

bool
readAll(int fd, void* buf, std::size_t n)
{
    auto* p = static_cast<std::uint8_t*>(buf);
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, p + got, n - got);
        if (r < 0 && errno == EINTR)
            continue;
        if (r <= 0)
            return false;
        got += static_cast<std::size_t>(r);
    }
    return true;
}

/** Closed loop in a forked worker: keep @p window SpMV requests
 *  outstanding until the deadline, then ship stats and _exit. */
void
runWorker(const Endpoint& ep, int pipe_fd, int duration_ms,
          int window, int seed)
{
    WorkerStats stats;
    net::Client client;
    std::string error;
    if (connectClient(client, ep, error)) {
        std::unordered_map<std::uint64_t, Clock::time_point> sent;
        const Clock::time_point end =
            Clock::now() + std::chrono::milliseconds(duration_ms);
        int variant = seed;
        const auto sendOne = [&] {
            serve::SpmvRequest req{"ranker",
                                   net::demoVector(variant++), {}};
            const std::uint64_t id = client.sendSpmv(req);
            if (id != 0)
                sent.emplace(id, Clock::now());
            return id != 0;
        };
        for (int i = 0; i < window && sendOne(); ++i) {
        }
        while (!sent.empty()) {
            const std::optional<net::Client::SpmvResponse> resp =
                client.readSpmvResponse();
            if (!resp)
                break;
            const Clock::time_point now = Clock::now();
            const auto it = sent.find(resp->id);
            switch (resp->result.status().code()) {
              case serve::StatusCode::kOk:
                  ++stats.ok;
                  if (it != sent.end() &&
                      stats.latencies_us.size() < (1u << 18))
                      stats.latencies_us.push_back(
                          static_cast<std::uint32_t>(
                              std::chrono::duration_cast<
                                  std::chrono::microseconds>(
                                  now - it->second)
                                  .count()));
                  break;
              case serve::StatusCode::kOverloaded:
                  ++stats.overloaded;
                  break;
              case serve::StatusCode::kDeadlineExceeded:
                  ++stats.deadline;
                  break;
              case serve::StatusCode::kQuotaExceeded:
                  ++stats.quota;
                  break;
              default:
                  ++stats.other;
                  break;
            }
            if (it != sent.end())
                sent.erase(it);
            if (now < end)
                sendOne();
        }
    }
    const std::uint64_t header[6] = {
        stats.ok, stats.overloaded, stats.deadline, stats.quota,
        stats.other, stats.latencies_us.size()};
    writeAll(pipe_fd, header, sizeof(header));
    if (!stats.latencies_us.empty())
        writeAll(pipe_fd, stats.latencies_us.data(),
                 stats.latencies_us.size() * sizeof(std::uint32_t));
    ::close(pipe_fd);
    ::_exit(0);
}

std::uint32_t
percentile(std::vector<std::uint32_t>& v, double p)
{
    if (v.empty())
        return 0;
    const std::size_t at = std::min(
        v.size() - 1,
        static_cast<std::size_t>(p * double(v.size())));
    std::nth_element(v.begin(), v.begin() + long(at), v.end());
    return v[at];
}

/** One sweep point: fork @p conns workers, merge their stats. */
bool
runSweepPoint(const Endpoint& ep, int conns, int window,
              int duration_ms)
{
    std::vector<pid_t> pids;
    std::vector<int> read_fds;
    for (int c = 0; c < conns; ++c) {
        int fds[2];
        if (::pipe(fds) != 0) {
            std::cerr << "pipe: " << std::strerror(errno) << "\n";
            return false;
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            std::cerr << "fork: " << std::strerror(errno) << "\n";
            return false;
        }
        if (pid == 0) {
            ::close(fds[0]);
            for (int fd : read_fds)
                ::close(fd);
            runWorker(ep, fds[1], duration_ms, window, c * 9973);
        }
        ::close(fds[1]);
        pids.push_back(pid);
        read_fds.push_back(fds[0]);
    }

    WorkerStats total;
    bool ok = true;
    for (int fd : read_fds) {
        std::uint64_t header[6];
        if (!readAll(fd, header, sizeof(header))) {
            ok = false;
        } else {
            total.ok += header[0];
            total.overloaded += header[1];
            total.deadline += header[2];
            total.quota += header[3];
            total.other += header[4];
            std::vector<std::uint32_t> lat(header[5]);
            if (!lat.empty() &&
                !readAll(fd, lat.data(),
                         lat.size() * sizeof(std::uint32_t)))
                ok = false;
            total.latencies_us.insert(total.latencies_us.end(),
                                      lat.begin(), lat.end());
        }
        ::close(fd);
    }
    for (const pid_t pid : pids) {
        int status = 0;
        ::waitpid(pid, &status, 0);
    }

    const double secs = double(duration_ms) / 1000.0;
    const double rate = double(total.ok) / secs;
    std::printf("%5d %6d %9.0f %9u %9u %9llu %11llu %7llu\n", conns,
                window, rate,
                percentile(total.latencies_us, 0.50),
                percentile(total.latencies_us, 0.99),
                static_cast<unsigned long long>(total.ok),
                static_cast<unsigned long long>(total.overloaded),
                static_cast<unsigned long long>(total.quota));
    return ok && total.ok > 0;
}

/** Fetch + print the server's resilience counter families (sheds,
 *  quota rejects, injected faults, reaped conns), when any fired. */
void
printResilienceCounters(const Endpoint& ep)
{
    net::Client client;
    std::string error;
    if (!connectClient(client, ep, error))
        return;
    const serve::Result<std::string> text = client.metrics();
    if (!text.ok())
        return;
    std::istringstream lines(text.value());
    std::string line;
    bool any = false;
    while (std::getline(lines, line)) {
        if (line.rfind("smash_shed", 0) == 0 ||
            line.rfind("smash_tenant", 0) == 0 ||
            line.rfind("smash_net_faults", 0) == 0 ||
            line.rfind("smash_net_conns_reaped", 0) == 0) {
            if (!any)
                std::cout << "server resilience counters:\n";
            any = true;
            std::cout << "  " << line << "\n";
        }
    }
}

/** Local bit-exact oracle for the demo "ranker" SpMV. */
std::vector<Value>
localSpmv(const fmt::CsrMatrix& csr, const std::vector<Value>& x)
{
    sim::NativeExec e;
    std::vector<Value> y(static_cast<std::size_t>(csr.rows()),
                         Value(0));
    eng::spmv(csr, x, y, e);
    return y;
}

int
runSmoke(const Endpoint& ep)
{
    net::Client client;
    std::string error;
    if (!connectClient(client, ep, error)) {
        std::cerr << "smoke: connect failed: " << error << "\n";
        return 1;
    }

    // Gate 1: liveness.
    const serve::Status pong = client.ping();
    if (!pong.ok()) {
        std::cerr << "smoke: ping failed: " << pong.message() << "\n";
        return 1;
    }

    // Gate 2: remote results bit-identical to the local engine.
    const fmt::CsrMatrix csr =
        fmt::CsrMatrix::fromCoo(net::demoRanker());
    for (int seed = 0; seed < 4; ++seed) {
        const std::vector<Value> x = net::demoVector(seed);
        serve::Result<std::vector<Value>> r =
            client.spmv(serve::SpmvRequest{"ranker", x, {}});
        if (!r.ok()) {
            std::cerr << "smoke: spmv failed: "
                      << r.status().message() << "\n";
            return 1;
        }
        const std::vector<Value> expect = localSpmv(csr, x);
        if (r.value().size() != expect.size() ||
            std::memcmp(r.value().data(), expect.data(),
                        expect.size() * sizeof(Value)) != 0) {
            std::cerr << "smoke: remote spmv differs from local "
                         "oracle (seed "
                      << seed << ")\n";
            return 1;
        }
    }

    // Gate 3: the admission gate's kOverloaded survives the wire.
    // kBatch priority keeps admitted requests parked in the batcher
    // (batchDelay) while the fail-fast burst lands, so with a small
    // server --max-inflight the burst must see both outcomes. The
    // burst is sent in chunks with a full drain between them: a
    // single 256-deep pipeline with no reads can deadlock both
    // sides in sendto if scheduling lets most requests through —
    // the OK responses (~1.5 KiB each) overflow the client's
    // receive buffer, the server's writer blocks, the server stops
    // reading, and the client is still blocked sending. Chunking
    // bounds the un-drained response volume below any sane buffer
    // while each chunk still out-paces a small --max-inflight.
    serve::RequestOptions burst_options;
    burst_options.priority = serve::Priority::kBatch;
    burst_options.admission = serve::Admission::kFailFast;
    std::uint64_t burst_ok = 0, burst_overloaded = 0;
    constexpr int kBurstChunk = 32;
    for (int base = 0; base < 256; base += kBurstChunk) {
        int outstanding = 0;
        for (int i = 0; i < kBurstChunk; ++i) {
            if (client.sendSpmv(serve::SpmvRequest{
                    "ranker", net::demoVector(base + i),
                    burst_options}) != 0)
                ++outstanding;
        }
        for (; outstanding > 0; --outstanding) {
            const std::optional<net::Client::SpmvResponse> resp =
                client.readSpmvResponse();
            if (!resp) {
                std::cerr << "smoke: burst read failed\n";
                return 1;
            }
            if (resp->result.ok())
                ++burst_ok;
            else if (resp->result.status().code() ==
                     serve::StatusCode::kOverloaded)
                ++burst_overloaded;
        }
    }
    if (burst_ok == 0 || burst_overloaded == 0) {
        std::cerr << "smoke: burst saw ok=" << burst_ok
                  << " overloaded=" << burst_overloaded
                  << " (expected both > 0; run the server with a "
                     "small --max-inflight, e.g. 4)\n";
        return 1;
    }

    // Gate 4: kDeadlineExceeded survives the wire. A 1 us budget at
    // kBatch priority expires in the batcher's flush delay, so the
    // pipeline resolves it at the expiry check instead of computing.
    serve::RequestOptions tight;
    tight.priority = serve::Priority::kBatch;
    tight.deadline = std::chrono::microseconds(1);
    bool saw_deadline = false;
    for (int i = 0; i < 8 && !saw_deadline; ++i) {
        serve::Result<std::vector<Value>> r = client.spmv(
            serve::SpmvRequest{"ranker", net::demoVector(i), tight});
        saw_deadline = r.status().code() ==
            serve::StatusCode::kDeadlineExceeded;
    }
    if (!saw_deadline) {
        std::cerr << "smoke: no kDeadlineExceeded over the wire\n";
        return 1;
    }

    std::cout << "smoke ok: ping, 4 bit-identical spmv round-trips, "
              << "overloaded+ok burst (" << burst_ok << " ok, "
              << burst_overloaded
              << " overloaded), deadline observed\n";
    return 0;
}

int
runMetrics(const Endpoint& ep)
{
    net::Client client;
    std::string error;
    if (!connectClient(client, ep, error)) {
        std::cerr << "metrics: connect failed: " << error << "\n";
        return 1;
    }
    const serve::Result<std::string> text = client.metrics();
    if (!text.ok()) {
        std::cerr << "metrics: " << text.status().message() << "\n";
        return 1;
    }
    std::cout << text.value();
    return 0;
}

/** The forked chaos server: fault injector armed, tight admission,
 *  tenant quota, shed ladder, fast reaper. Signals readiness with
 *  one byte on @p ready_fd, then drains on SIGTERM and exits 0. */
void
runChaosServer(int ready_fd, const std::string& sock_path,
               const std::string& fault_spec)
{
    net::FaultConfig faults;
    std::string error;
    if (!net::parseFaultSpec(fault_spec, faults, error)) {
        std::cerr << "chaos server: " << error << "\n";
        ::_exit(1);
    }
    net::FaultInjector::global().configure(faults);

    sigset_t stop_signals;
    sigemptyset(&stop_signals);
    sigaddset(&stop_signals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &stop_signals, nullptr);

    serve::MatrixRegistry registry;
    net::populateDemoRegistry(registry, 1);

    net::ServerOptions options;
    options.unixPath = sock_path;
    options.session.threads = 2;
    // Small gate + per-tenant quota: the chaos run must provoke
    // kOverloaded and kQuotaExceeded, not just transport faults.
    options.session.maxInflight = 8;
    options.tenantQuota.ratePerSec = 2000;
    options.tenantQuota.burst = 64;
    options.tenantQuota.maxInflight = 6;
    options.session.shed.queueTarget =
        std::chrono::microseconds(20000);
    options.idleTimeout = std::chrono::milliseconds(250);

    net::Server server(registry, options);
    if (!server.start(error)) {
        std::cerr << "chaos server: " << error << "\n";
        ::_exit(1);
    }
    const char ready = 'k';
    writeAll(ready_fd, &ready, 1);
    ::close(ready_fd);

    int sig = 0;
    sigwait(&stop_signals, &sig);
    server.shutdown();
    ::_exit(0);
}

int
runChaos(int threads, int requests_per_thread,
         const std::string& fault_spec)
{
    const std::string sock_path = "/tmp/smash_chaos_" +
        std::to_string(::getpid()) + ".sock";

    int ready_fds[2];
    if (::pipe(ready_fds) != 0) {
        std::cerr << "chaos: pipe: " << std::strerror(errno) << "\n";
        return 1;
    }
    const pid_t child = ::fork();
    if (child < 0) {
        std::cerr << "chaos: fork: " << std::strerror(errno) << "\n";
        return 1;
    }
    if (child == 0) {
        ::close(ready_fds[0]);
        runChaosServer(ready_fds[1], sock_path, fault_spec);
    }
    ::close(ready_fds[1]);
    char ready = 0;
    if (!readAll(ready_fds[0], &ready, 1)) {
        std::cerr << "chaos: server never became ready\n";
        ::waitpid(child, nullptr, 0);
        return 1;
    }
    ::close(ready_fds[0]);

    const fmt::CsrMatrix csr =
        fmt::CsrMatrix::fromCoo(net::demoRanker());

    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> mismatches{0};
    std::atomic<std::uint64_t> gave_up{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> reconnects{0};

    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t)
        workers.emplace_back([&, t] {
            net::Endpoint ep;
            ep.unixPath = sock_path;
            net::RetryPolicy policy;
            policy.maxAttempts = 6;
            policy.initialBackoff = std::chrono::milliseconds(1);
            policy.maxBackoff = std::chrono::milliseconds(40);
            policy.jitterSeed = 77 + std::uint64_t(t);
            policy.retryBudgetCap = 0; // chaos: retry to completion
            net::RetryingClient rc(ep, policy,
                                   "chaos-" + std::to_string(t));
            for (int i = 0; i < requests_per_thread; ++i) {
                const std::vector<Value> x =
                    net::demoVector(t * 131 + i);
                const std::vector<Value> expect = localSpmv(csr, x);
                // RetryPolicy bounds one call; the outer loop keeps
                // calling until the request set is complete (the
                // battery's promise), with a wall-clock escape so a
                // wedged server cannot hang the gate forever.
                const Clock::time_point give_up_at =
                    Clock::now() + std::chrono::seconds(30);
                bool done = false;
                while (!done && Clock::now() < give_up_at) {
                    serve::Result<std::vector<Value>> r = rc.spmv(
                        serve::SpmvRequest{"ranker", x, {}});
                    if (!r.ok())
                        continue;
                    if (r.value().size() != expect.size() ||
                        std::memcmp(r.value().data(), expect.data(),
                                    expect.size() * sizeof(Value)) !=
                            0)
                        mismatches.fetch_add(1);
                    completed.fetch_add(1);
                    done = true;
                }
                if (!done) {
                    gave_up.fetch_add(1);
                    break;
                }
            }
            retries.fetch_add(rc.stats().retries);
            reconnects.fetch_add(rc.stats().reconnects);
        });
    for (std::thread& w : workers)
        w.join();

    // Leak probe before teardown: with every response resolved the
    // tenant in-flight gauge must read 0 on a fresh scrape.
    bool leak = false;
    bool probed = false;
    {
        Endpoint ep;
        ep.unixPath = sock_path;
        // The probe connection eats injected faults too — retry the
        // scrape on a fresh connection until one gets through.
        for (int attempt = 0; attempt < 8 && !probed; ++attempt) {
            net::Client probe;
            std::string error;
            if (!connectClient(probe, ep, error))
                continue;
            const serve::Result<std::string> text = probe.metrics();
            if (!text.ok())
                continue;
            probed = true;
            std::istringstream lines(text.value());
            std::string line;
            while (std::getline(lines, line)) {
                if (line.rfind("smash_tenant_inflight ", 0) == 0 &&
                    line != "smash_tenant_inflight 0")
                    leak = true;
            }
        }
        printResilienceCounters(ep);
    }

    ::kill(child, SIGTERM);
    int status = 0;
    ::waitpid(child, &status, 0);
    const bool clean_exit =
        WIFEXITED(status) && WEXITSTATUS(status) == 0;

    const std::uint64_t expected =
        std::uint64_t(threads) * std::uint64_t(requests_per_thread);
    std::cout << "chaos: " << completed.load() << "/" << expected
              << " requests completed, " << mismatches.load()
              << " mismatches, " << retries.load() << " retries, "
              << reconnects.load() << " reconnects, child "
              << (clean_exit ? "exited 0" : "EXITED ABNORMALLY")
              << (leak ? ", TENANT SLOT LEAK" : "") << "\n";
    ::unlink(sock_path.c_str());

    const bool pass = completed.load() == expected &&
        mismatches.load() == 0 && gave_up.load() == 0 && clean_exit &&
        probed && !leak;
    std::cout << (pass ? "chaos ok\n" : "chaos FAILED\n");
    return pass ? 0 : 1;
}

int
usage(const char* argv0)
{
    std::cerr
        << "usage: " << argv0
        << " (--unix PATH | --tcp PORT [--host H]) "
           "[--smoke | --metrics]\n"
        << "       [--conns A,B,...] [--window N] [--duration-ms D]\n"
        << "       | --chaos [--chaos-threads T] "
           "[--chaos-requests N] [--chaos-faults SPEC]\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    Endpoint ep;
    bool smoke = false;
    bool metrics = false;
    bool chaos = false;
    int chaos_threads = 4;
    int chaos_requests = 150;
    std::string chaos_faults =
        "drop=0.03,delay=0.03:1,truncate=0.03,bitflip=0.03,"
        "short=0.08,seed=42";
    std::vector<int> conns = {1, 2, 4, 8};
    int window = 4;
    int duration_ms = 2000;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--unix" && has_value) {
            ep.unixPath = argv[++i];
        } else if (arg == "--tcp" && has_value) {
            ep.tcpPort = std::atoi(argv[++i]);
        } else if (arg == "--host" && has_value) {
            ep.host = argv[++i];
        } else if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--metrics") {
            metrics = true;
        } else if (arg == "--chaos") {
            chaos = true;
        } else if (arg == "--chaos-threads" && has_value) {
            chaos_threads = std::max(1, std::atoi(argv[++i]));
        } else if (arg == "--chaos-requests" && has_value) {
            chaos_requests = std::max(1, std::atoi(argv[++i]));
        } else if (arg == "--chaos-faults" && has_value) {
            chaos_faults = argv[++i];
        } else if (arg == "--window" && has_value) {
            window = std::max(1, std::atoi(argv[++i]));
        } else if (arg == "--duration-ms" && has_value) {
            duration_ms = std::max(50, std::atoi(argv[++i]));
        } else if (arg == "--conns" && has_value) {
            conns.clear();
            std::string list = argv[++i];
            for (std::size_t at = 0; at < list.size();) {
                const std::size_t comma = list.find(',', at);
                const std::string tok =
                    list.substr(at, comma - at);
                if (const int n = std::atoi(tok.c_str()); n > 0)
                    conns.push_back(n);
                at = comma == std::string::npos ? list.size()
                                                : comma + 1;
            }
            if (conns.empty())
                return usage(argv[0]);
        } else {
            return usage(argv[0]);
        }
    }
    if (chaos) // self-contained: forks its own server
        return runChaos(chaos_threads, chaos_requests, chaos_faults);
    if (ep.unixPath.empty() == (ep.tcpPort < 0))
        return usage(argv[0]); // exactly one transport

    if (metrics)
        return runMetrics(ep);
    if (smoke)
        return runSmoke(ep);

    std::printf("%5s %6s %9s %9s %9s %9s %11s %7s\n", "conns",
                "window", "req/s", "p50(us)", "p99(us)", "ok",
                "overloaded", "quota");
    bool all_ok = true;
    for (const int c : conns)
        all_ok = runSweepPoint(ep, c, window, duration_ms) && all_ok;
    printResilienceCounters(ep);
    return all_ok ? 0 : 1;
}
