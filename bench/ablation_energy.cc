/**
 * @file
 * Energy ablation (beyond the paper's figures; supports its §8
 * energy-efficiency claim): first-order energy of one SpMV per
 * scheme on three suite matrices spanning the sparsity range
 * (M2 sparse / M8 medium / M13 dense-low-locality). Energy follows
 * the activity counters of the same simulations the performance
 * figures use, so the ordering story (fewer instructions + less
 * DRAM traffic -> less energy) is directly checkable.
 */

#include <iostream>

#include "common/table.hh"
#include "engine/dispatch.hh"
#include "harness.hh"
#include "isa/bmu.hh"
#include "sim/energy.hh"

namespace smash::bench
{
namespace
{

struct EnergyRow
{
    sim::EnergyBreakdown energy;
    Counter instructions = 0;
};

EnergyRow
measure(SpmvScheme scheme, const MatrixBundle& bundle)
{
    sim::Machine machine;
    sim::SimExec e(machine);
    std::vector<Value> x(static_cast<std::size_t>(bundle.coo.cols()),
                         Value(1));
    std::vector<Value> y(static_cast<std::size_t>(bundle.coo.rows()),
                         Value(0));
    isa::Bmu bmu;
    eng::SpmvOptions opts;
    eng::MatrixRef m = bundle.csr;
    switch (scheme) {
      case SpmvScheme::kTacoCsr:
        break;
      case SpmvScheme::kTacoBcsr:
        m = bundle.bcsr;
        break;
      case SpmvScheme::kSmashSw:
        m = bundle.smash;
        break;
      case SpmvScheme::kSmashHw:
        m = bundle.smash;
        opts = {eng::SpmvAlgo::kHw, &bmu};
        break;
      default:
        SMASH_PANIC("scheme not covered by the energy ablation");
    }
    eng::spmv(m, x, y, e, opts);
    EnergyRow row;
    sim::BmuActivity activity{
        .wordsScanned = bmu.stats().wordsScanned,
        .bufferRefills = bmu.stats().bufferRefills};
    row.energy = sim::energyOf(
        machine, sim::EnergyConfig{},
        scheme == SpmvScheme::kSmashHw ? &activity : nullptr);
    row.instructions = machine.core().instructions();
    return row;
}

int
run()
{
    const double scale = wl::benchScale(0.25);
    preamble("Energy ablation (extension)",
             "First-order SpMV energy per scheme (CACTI-class per-event "
             "constants; see src/sim/energy.hh)",
             scale);

    const std::vector<wl::MatrixSpec> all = wl::table3Specs();
    const int picks[] = {1, 7, 12}; // M2, M8, M13

    TextTable table("SpMV energy (nJ) — lower is better");
    table.setHeader({"matrix", "scheme", "core", "caches", "DRAM", "BMU",
                     "total", "vs CSR"});
    for (int pick : picks) {
        wl::MatrixSpec spec = wl::scaleSpec(all[static_cast<std::size_t>(
            pick)], scale);
        MatrixBundle bundle = buildBundle(spec);

        const std::pair<SpmvScheme, const char*> schemes[] = {
            {SpmvScheme::kTacoCsr, "TACO-CSR"},
            {SpmvScheme::kTacoBcsr, "TACO-BCSR"},
            {SpmvScheme::kSmashSw, "SW-SMASH"},
            {SpmvScheme::kSmashHw, "SMASH"},
        };
        double csr_total = 0;
        for (const auto& [scheme, name] : schemes) {
            EnergyRow row = measure(scheme, bundle);
            double caches =
                row.energy.l1Pj + row.energy.l2Pj + row.energy.l3Pj;
            if (scheme == SpmvScheme::kTacoCsr)
                csr_total = row.energy.totalPj();
            table.addRow({spec.name, name,
                          formatFixed(row.energy.corePj / 1e3, 1),
                          formatFixed(caches / 1e3, 1),
                          formatFixed(row.energy.dramPj / 1e3, 1),
                          formatFixed(row.energy.bmuPj / 1e3, 2),
                          formatFixed(row.energy.totalNj(), 1),
                          formatFixed(row.energy.totalPj() / csr_total,
                                      2)});
        }
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: SMASH-HW below TACO-CSR on every row "
                 "(fewer instructions, no pointer-chasing refetches); "
                 "SW-SMASH pays its extra scan instructions; the BMU's "
                 "own energy stays far below the core's share.\n";
    return 0;
}

} // namespace
} // namespace smash::bench

int
main()
{
    return smash::bench::run();
}
