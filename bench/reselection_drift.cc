/**
 * @file
 * Reselection-under-drift study (extension): SpMV throughput of a
 * long-lived served matrix whose structure drifts, with the format
 * pinned at registration versus re-selected by the registry's drift
 * detector.
 *
 * The matrix starts banded (tridiagonal — §7.2.3 auto-selection
 * picks DIA, whose stored-diagonal walk is ideal there). Rounds of
 * scattered COO deltas then push it toward uniform scatter: every
 * delta lands on a fresh diagonal, so the pinned DIA encoding
 * accretes near-empty stored diagonals and its SpMV walks ever more
 * padding, while the adaptive registry notices the profile crossing
 * the format boundary and re-encodes once into a scatter-friendly
 * format. The study reports post-drift SpMV time for both and fails
 * (exit 1) if reselection does not at least match the pinned
 * format — the acceptance bar of the update-and-reselect subsystem.
 *
 *   --smoke       tiny workload + fewer reps (CI)
 *   --threads N   accepted for harness uniformity (compute is the
 *                 serial native kernel; the study isolates format
 *                 effects, not parallel scaling)
 *   SMASH_BENCH_SCALE  shrinks the matrix and the drift volume
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "engine/dispatch.hh"
#include "harness.hh"
#include "serve/registry.hh"
#include "workloads/matrix_gen.hh"
#include "workloads/matrix_suite.hh"

namespace smash::bench
{
namespace
{

std::vector<Value>
operand(Index n)
{
    std::vector<Value> x(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i)
        x[static_cast<std::size_t>(i)] =
            Value(1) + Value((i * 7) % 13) * Value(0.0625);
    return x;
}

/** Best-of-@p reps serial SpMV seconds on the current encoding. */
double
spmvSeconds(serve::MatrixRegistry& registry, const std::string& name,
            const std::vector<Value>& x, std::vector<Value>& y,
            int reps)
{
    const serve::MatrixRegistry::EncodingPtr m =
        registry.encoded(name);
    double best = 1e30;
    for (int i = 0; i < reps; ++i) {
        std::fill(y.begin(), y.end(), Value(0));
        sim::NativeExec e;
        best = std::min(best, secondsOf([&] {
            eng::spmv(m->ref(), x, y, e);
        }));
    }
    return best;
}

double
maxAbsDiff(const std::vector<Value>& a, const std::vector<Value>& b)
{
    double m = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(static_cast<double>(a[i] - b[i])));
    return m;
}

int
run(int argc, char** argv)
{
    bool smoke = false;
    std::vector<char*> args;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else
            args.push_back(argv[i]);
    }
    parseBenchCli(static_cast<int>(args.size()), args.data());
    const double scale = wl::benchScale(smoke ? 0.25 : 1.0);
    preamble("Reselection under drift (extension)",
             "post-drift SpMV of a served matrix: format pinned at "
             "registration vs drift-triggered re-selection",
             scale);

    const Index n = std::max<Index>(
        smoke ? 512 : 1024, static_cast<Index>(2048 * scale));
    const Index rounds = smoke ? 4 : 8;
    const Index per_round = n / 2;
    const int reps = smoke ? 3 : 5;

    // Two registries see identical content: one with the drift
    // detector off (the format stays whatever registration chose),
    // one with the default policy (hook-less, so the re-encode runs
    // inline on the mutating thread — the async path is the serving
    // pipeline's and is covered by tests/test_reselect.cc).
    serve::MatrixRegistry pinned;
    serve::ReselectPolicy off;
    off.enabled = false;
    pinned.setReselectPolicy(off);
    serve::MatrixRegistry adaptive;

    const eng::Format start = pinned.put("m", wl::genTridiagonal(n));
    adaptive.put("m", wl::genTridiagonal(n));
    std::cout << "Matrix: " << n << "x" << n << " tridiagonal, "
              << "registered as " << eng::toString(start) << "; drift: "
              << rounds << " rounds x " << per_round
              << " scattered deltas\n\n";

    const std::vector<Value> x = operand(n);
    std::vector<Value> y_pinned(static_cast<std::size_t>(n));
    std::vector<Value> y_adaptive(static_cast<std::size_t>(n));
    const double before =
        spmvSeconds(pinned, "m", x, y_pinned, reps);

    for (Index round = 0; round < rounds; ++round) {
        // Identical delta streams: both registries see the same drift.
        const fmt::CooMatrix deltas = wl::genScatterDeltas(
            n, n, per_round, 7 + static_cast<std::uint64_t>(round));
        pinned.applyUpdates("m", deltas);
        adaptive.applyUpdates("m", deltas);
    }

    const double t_pinned =
        spmvSeconds(pinned, "m", x, y_pinned, reps);
    const double t_adaptive =
        spmvSeconds(adaptive, "m", x, y_adaptive, reps);
    const double err = maxAbsDiff(y_pinned, y_adaptive);

    const eng::StructureStats profile = adaptive.profile("m");
    TextTable table("Post-drift SpMV (nnz " +
                    std::to_string(profile.nnz) + ", " +
                    std::to_string(profile.numDiagonals) +
                    " occupied diagonals)");
    table.setHeader({"config", "format", "SpMV ms", "vs pinned"});
    table.addRow({"pinned at registration",
                  eng::toString(pinned.format("m")),
                  formatFixed(t_pinned * 1e3, 3), "1.00"});
    table.addRow({"drift-reselected",
                  eng::toString(adaptive.format("m")),
                  formatFixed(t_adaptive * 1e3, 3),
                  formatFixed(t_pinned / t_adaptive, 2)});
    table.print(std::cout);

    std::cout << "\nPre-drift " << eng::toString(start) << " SpMV: "
              << formatFixed(before * 1e3, 3) << " ms; reselects: "
              << adaptive.reselects("m")
              << "; max |y_pinned - y_reselected| = " << err << "\n"
              << "Expected shape: scattered deltas land on fresh "
                 "diagonals, so the pinned DIA walk pays ever more "
                 "padding while the re-selected format only pays for "
                 "stored non-zeros.\n";

    if (err > 1e-9) {
        std::cerr << "pinned and reselected results diverge (" << err
                  << ")!\n";
        return 1;
    }
    if (adaptive.reselects("m") == 0) {
        std::cerr << "drift never triggered a reselection!\n";
        return 1;
    }
    // The acceptance bar: reselected-format SpMV must be at least
    // as fast as the pinned format after drift (10% noise floor).
    if (t_adaptive > t_pinned * 1.1) {
        std::cerr << "reselected format is slower than the pinned "
                     "one after drift ("
                  << formatFixed(t_adaptive * 1e3, 3) << " ms vs "
                  << formatFixed(t_pinned * 1e3, 3) << " ms)!\n";
        return 1;
    }
    return 0;
}

} // namespace
} // namespace smash::bench

int
main(int argc, char** argv)
{
    return smash::bench::run(argc, argv);
}
