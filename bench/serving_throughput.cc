/**
 * @file
 * Serving-throughput study (extension): requests/second and
 * latency percentiles of the serve::Session pipeline as a function
 * of batch size, thread count, and priority class. The baseline
 * issues every request as an individual eng::spmv call (a
 * max-batch-1 session: same pool, same pipeline, no coalescing);
 * the batched configurations coalesce up to B concurrent requests
 * into one eng::spmvBatch traversal. Batching amortizes the
 * per-non-zero indexing work (row_ptr walks, column loads, bitmap
 * scans) across the whole batch, so requests/sec should rise with B
 * until memory bandwidth saturates. A mixed-priority run then
 * reports p50/p99 per class from the pipeline's latency histograms:
 * kHigh buys low tail latency by flushing immediately, kBatch buys
 * throughput by waiting for deeper batches.
 *
 *   --threads N                pool size (default 4)
 *   --exec native|parallel     compute stage execution model
 *   --exec sim                 skip the wall-clock study; print the
 *                              simulated per-request cycle cost of
 *                              batch sizes 1 and 8 instead
 *   --smoke                    tiny workload + pass/fail gate (CI):
 *                              exits 1 on oracle divergence or a
 *                              batched-vs-individual regression
 *   SMASH_BENCH_SCALE          shrinks matrix and request count
 *   SMASH_TRACE=1              record pipeline/pool/dispatch trace
 *                              events; the run ends by writing them
 *                              as Chrome trace-event JSON to
 *                              SMASH_TRACE_OUT (default
 *                              smash_trace.json)
 */

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <vector>

#include "common/table.hh"
#include "engine/dispatch.hh"
#include "harness.hh"
#include "obs/trace.hh"
#include "serve/session.hh"
#include "sim/machine.hh"
#include "workloads/matrix_gen.hh"

namespace smash::bench
{
namespace
{

/** Distinct request operands, reused cyclically. */
constexpr Index kOperandKinds = 8;

std::vector<Value>
requestOperand(Index cols, Index kind)
{
    std::vector<Value> x(static_cast<std::size_t>(cols));
    for (Index i = 0; i < cols; ++i)
        x[static_cast<std::size_t>(i)] =
            Value(1) + Value((i * 7 + kind * 3) % 13) * Value(0.0625);
    return x;
}

double
maxAbsDiff(const std::vector<Value>& a, const std::vector<Value>& b)
{
    double m = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(static_cast<double>(a[i] - b[i])));
    return m;
}

/** Priority mix of the latency study: 1 high : 4 normal : 3 batch. */
serve::Priority
mixedPriority(Index r)
{
    const Index slot = r % 8;
    if (slot == 0)
        return serve::Priority::kHigh;
    return slot <= 4 ? serve::Priority::kNormal
                     : serve::Priority::kBatch;
}

struct ConfigRun
{
    double seconds = 0;
    double err = 0;
};

/**
 * Submit @p n typed requests, wait for all; seconds + max err.
 * @p mixed assigns the 1:4:3 priority mix and prints the
 * per-priority latency table (histograms die with the session).
 */
ConfigRun
runConfig(serve::MatrixRegistry& registry, const std::string& name,
          serve::SessionOptions opts, Index n,
          const std::vector<std::vector<Value>>& operands,
          const std::vector<std::vector<Value>>& oracles, bool mixed)
{
    serve::Session session(registry, opts);
    std::vector<std::future<serve::Result<std::vector<Value>>>>
        futures;
    futures.reserve(static_cast<std::size_t>(n));
    const double seconds = secondsOf([&] {
        for (Index r = 0; r < n; ++r) {
            serve::RequestOptions ropts;
            if (mixed)
                ropts.priority = mixedPriority(r);
            futures.push_back(session.submit(serve::SpmvRequest{
                name,
                operands[static_cast<std::size_t>(r % kOperandKinds)],
                ropts}));
        }
        for (auto& f : futures)
            f.wait();
    });
    double err = 0;
    for (Index r = 0; r < n; ++r) {
        serve::Result<std::vector<Value>> result =
            futures[static_cast<std::size_t>(r)].get();
        if (!result.ok()) {
            std::cerr << "request " << r << " failed: "
                      << result.status().toString() << "\n";
            return {seconds, 1e30};
        }
        err = std::max(
            err, maxAbsDiff(result.value(),
                            oracles[static_cast<std::size_t>(
                                r % kOperandKinds)]));
    }
    session.drain();
    if (mixed) {
        TextTable table("Latency by priority class (mixed traffic: "
                        "1 high : 4 normal : 3 batch)");
        table.setHeader({"priority", "requests", "p50 (us)",
                         "p99 (us)"});
        for (serve::Priority p :
             {serve::Priority::kHigh, serve::Priority::kNormal,
              serve::Priority::kBatch}) {
            const serve::LatencyHistogram& h =
                session.stats().latency(p);
            table.addRow({serve::toString(p),
                          std::to_string(h.count()),
                          formatFixed(h.percentileUs(0.5), 1),
                          formatFixed(h.percentileUs(0.99), 1)});
        }
        table.print(std::cout);
        std::cout << "\n";

        // Where a request's lifetime goes: per-stage p50/p99 from
        // the pipeline's span stamps, plus the aggregate
        // queue-vs-compute split.
        TextTable stages("Per-stage latency (all priorities)");
        stages.setHeader({"stage", "spans", "p50 (us)", "p99 (us)"});
        for (std::size_t s = 0; s < serve::kNumPipelineStages; ++s) {
            const auto stage = static_cast<serve::PipelineStage>(s);
            const serve::LatencyHistogram& h =
                session.stats().stage(stage);
            stages.addRow({serve::toString(stage),
                           std::to_string(h.count()),
                           formatFixed(h.percentileUs(0.5), 1),
                           formatFixed(h.percentileUs(0.99), 1)});
        }
        stages.print(std::cout);
        const double queue_us =
            static_cast<double>(session.stats().queueUs());
        const double compute_us =
            static_cast<double>(session.stats().computeUs());
        const double total_us = queue_us + compute_us;
        std::cout << "Queue vs compute: "
                  << formatFixed(
                         total_us > 0 ? 100.0 * queue_us / total_us : 0,
                         1)
                  << "% queued (admit+prepare+batch_wait), "
                  << formatFixed(total_us > 0
                                     ? 100.0 * compute_us / total_us
                                     : 0,
                                 1)
                  << "% computing (compute+deliver)\n\n";
    }
    return {seconds, err};
}

/** Simulated cycles of one run of @p fn on a fresh machine. */
template <typename Fn>
double
simCycles(Fn&& fn)
{
    sim::Machine machine;
    sim::SimExec exec(machine);
    fn(exec);
    return machine.core().cycles();
}

int
run(int argc, char** argv)
{
    bool smoke = false;
    std::vector<char*> args;
    for (int i = 0; i < argc; ++i) {
        if (i > 0 && std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else
            args.push_back(argv[i]);
    }
    const BenchCli cli =
        parseBenchCli(static_cast<int>(args.size()), args.data());
    const double scale = wl::benchScale(smoke ? 0.02 : 0.25);
    preamble("Serving throughput (extension)",
             "serve::Session requests/sec and latency percentiles vs "
             "batch size — batched multi-RHS SpMV against individual "
             "eng::spmv calls, through the typed serve::Result API",
             scale);

    const Index rows = std::max<Index>(
        smoke ? 2048 : 4096, static_cast<Index>(32768 * scale));
    const Index nnz = std::max<Index>(
        smoke ? 65536 : 131072, static_cast<Index>(1250000 * scale));
    fmt::CooMatrix coo = wl::genClustered(rows, rows, nnz, 8, 97);

    serve::MatrixRegistry registry;
    const eng::Format chosen = registry.put("ranker", std::move(coo));
    std::cout << "Matrix: " << rows << "x" << rows << ", nnz "
              << registry.info("ranker").nnz
              << ", auto-selected format " << eng::toString(chosen)
              << "; threads " << cli.threads << ", compute exec "
              << toString(cli.exec) << "\n\n";

    std::vector<std::vector<Value>> operands;
    for (Index k = 0; k < kOperandKinds; ++k)
        operands.push_back(requestOperand(rows, k));

    // Conversion happens once, here, so every configuration below
    // measures steady-state serving (the conversion-overlap story
    // is the pipeline's; fig20 covers the cost itself).
    const serve::MatrixRegistry::EncodingPtr held =
        registry.encoded("ranker");
    const eng::SparseMatrixAny& m = *held;

    if (cli.exec == ExecKind::kSim) {
        // Cycle-accurate amortization: per-request cost of a batch
        // of 8 vs a single request.
        const Index nrhs = 8;
        std::vector<Value> x1 = kern::padVector(operands[0], m.xLength());
        std::vector<Value> y1(static_cast<std::size_t>(rows), Value(0));
        const double single = simCycles([&](sim::SimExec& e) {
            eng::spmv(m.ref(), x1, y1, e);
        });
        fmt::DenseMatrix x(m.xLength(), nrhs);
        for (Index r = 0; r < nrhs; ++r)
            for (Index j = 0; j < rows; ++j)
                x.at(j, r) = operands[static_cast<std::size_t>(
                    r % kOperandKinds)][static_cast<std::size_t>(j)];
        fmt::DenseMatrix y(rows, nrhs);
        const double batched = simCycles([&](sim::SimExec& e) {
            eng::spmvBatch(m.ref(), x, y, e);
        });
        TextTable table("Simulated cycles per request");
        table.setHeader({"batch", "cycles/request", "vs batch 1"});
        table.addRow({"1", formatFixed(single, 0), "1.00"});
        table.addRow({"8", formatFixed(batched / nrhs, 0),
                      formatFixed(single / (batched / nrhs), 2)});
        table.print(std::cout);
        return 0;
    }

    std::vector<std::vector<Value>> oracles;
    {
        sim::NativeExec ne;
        for (Index k = 0; k < kOperandKinds; ++k) {
            std::vector<Value> y(static_cast<std::size_t>(rows),
                                 Value(0));
            eng::spmv(m.ref(), operands[static_cast<std::size_t>(k)], y,
                      ne);
            oracles.push_back(std::move(y));
        }
    }

    const Index nreq = std::max<Index>(
        smoke ? 48 : 64, static_cast<Index>(2048 * scale));
    const serve::ComputeExec compute = cli.exec == ExecKind::kParallel
        ? serve::ComputeExec::kParallel
        : serve::ComputeExec::kSerial;

    serve::SessionOptions base;
    base.threads = cli.threads;
    base.maxDelay = std::chrono::microseconds(200);
    base.compute = compute;
    base.pinWorkers = cli.pin;

    // Baseline: the same requests as individual eng::spmv calls
    // (max-batch-1 pipeline) at the same thread count.
    serve::SessionOptions individual = base;
    individual.maxBatch = 1;
    const ConfigRun ind = runConfig(registry, "ranker", individual,
                                    nreq, operands, oracles, false);
    const double rps_ind = static_cast<double>(nreq) / ind.seconds;

    TextTable table(
        "Requests/sec, " + std::to_string(nreq) + " requests, " +
        std::to_string(cli.threads) +
        " threads (baseline: individual eng::spmv, " +
        formatFixed(rps_ind, 0) + " req/s)");
    table.setHeader(
        {"max batch", "req/s", "speedup vs individual", "max |err|"});
    table.addRow({"1 (individual)", formatFixed(rps_ind, 0), "1.00",
                  formatFixed(ind.err, 12)});

    double speedup8 = 0;
    double max_err = ind.err;
    for (Index batch : {4, 8, 16, 32}) {
        serve::SessionOptions opts = base;
        opts.maxBatch = batch;
        const ConfigRun r = runConfig(registry, "ranker", opts, nreq,
                                      operands, oracles, false);
        const double rps = static_cast<double>(nreq) / r.seconds;
        if (batch == 8)
            speedup8 = rps / rps_ind;
        max_err = std::max(max_err, r.err);
        table.addRow({std::to_string(batch), formatFixed(rps, 0),
                      formatFixed(rps / rps_ind, 2),
                      formatFixed(r.err, 12)});
    }
    table.print(std::cout);
    std::cout << "\n";

    // Mixed-priority latency study at max batch 16: kHigh requests
    // flush immediately (low tail), kBatch requests wait for deep
    // coalescing (high throughput), kNormal sits between.
    serve::SessionOptions mixed = base;
    mixed.maxBatch = 16;
    const ConfigRun mix = runConfig(registry, "ranker", mixed, nreq,
                                    operands, oracles, true);
    const double rps_mix = static_cast<double>(nreq) / mix.seconds;
    max_err = std::max(max_err, mix.err);
    std::cout << "Mixed-priority run: " << formatFixed(rps_mix, 0)
              << " req/s\n";

    std::cout << "\nBatch 8 vs individual at " << cli.threads
              << " threads: " << formatFixed(speedup8, 2)
              << "x requests/sec\n"
              << "Expected shape: requests/sec grows with the batch "
                 "size because one matrix traversal serves the whole "
                 "batch; gains flatten once the nrhs-wide inner loop "
                 "saturates memory bandwidth. kHigh p99 undercuts "
                 "kBatch p99 because high-priority arrivals skip the "
                 "flush wait.\n";
    if (obs::traceEnabled()) {
        // All sessions are drained and destroyed: every recording
        // thread is quiesced, so the dump sees consistent rings.
        const char* out_env = std::getenv("SMASH_TRACE_OUT");
        const std::string trace_path =
            out_env != nullptr ? out_env : "smash_trace.json";
        std::ofstream trace_out(trace_path);
        if (!trace_out) {
            std::cerr << "cannot write " << trace_path << "\n";
            return 1;
        }
        const obs::TraceCollector& tc = obs::TraceCollector::global();
        tc.dumpJson(trace_out);
        std::cout << "\nwrote " << tc.retained() << " trace events ("
                  << tc.dropped() << " dropped by ring wrap) to "
                  << trace_path << "\n";
    }

    if (max_err > 1e-9) {
        std::cerr << "served results diverge from the serial oracle ("
                  << max_err << ")!\n";
        return 1;
    }
    if (smoke && speedup8 < 0.5) {
        // The gate is deliberately loose: tiny CI workloads are
        // noisy, but a typed-API path that halves throughput vs the
        // individual baseline would still be caught.
        std::cerr << "smoke gate: batch-8 throughput regressed to "
                  << speedup8 << "x of the individual baseline\n";
        return 1;
    }
    return 0;
}

} // namespace
} // namespace smash::bench

int
main(int argc, char** argv)
{
    return smash::bench::run(argc, argv);
}
