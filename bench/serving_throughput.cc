/**
 * @file
 * Serving-throughput study (extension): requests/second of the
 * serve::Session pipeline as a function of batch size and thread
 * count. The baseline issues every request as an individual
 * eng::spmv call (a max-batch-1 session: same pool, same pipeline,
 * no coalescing); the batched configurations coalesce up to B
 * concurrent requests into one eng::spmvBatch traversal. Batching
 * amortizes the per-non-zero indexing work (row_ptr walks, column
 * loads, bitmap scans) across the whole batch, so requests/sec
 * should rise with B until memory bandwidth saturates.
 *
 *   --threads N                pool size (default 4)
 *   --exec native|parallel     compute stage execution model
 *   --exec sim                 skip the wall-clock study; print the
 *                              simulated per-request cycle cost of
 *                              batch sizes 1 and 8 instead
 *   SMASH_BENCH_SCALE          shrinks matrix and request count
 */

#include <cmath>
#include <future>
#include <iostream>
#include <vector>

#include "common/table.hh"
#include "engine/dispatch.hh"
#include "harness.hh"
#include "serve/session.hh"
#include "sim/machine.hh"
#include "workloads/matrix_gen.hh"

namespace smash::bench
{
namespace
{

/** Distinct request operands, reused cyclically. */
constexpr Index kOperandKinds = 8;

std::vector<Value>
requestOperand(Index cols, Index kind)
{
    std::vector<Value> x(static_cast<std::size_t>(cols));
    for (Index i = 0; i < cols; ++i)
        x[static_cast<std::size_t>(i)] =
            Value(1) + Value((i * 7 + kind * 3) % 13) * Value(0.0625);
    return x;
}

double
maxAbsDiff(const std::vector<Value>& a, const std::vector<Value>& b)
{
    double m = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(static_cast<double>(a[i] - b[i])));
    return m;
}

/** Submit @p n requests, wait for all; returns (seconds, max err). */
std::pair<double, double>
runConfig(serve::MatrixRegistry& registry, const std::string& name,
          serve::SessionOptions opts, Index n,
          const std::vector<std::vector<Value>>& operands,
          const std::vector<std::vector<Value>>& oracles)
{
    serve::Session session(registry, opts);
    std::vector<std::future<std::vector<Value>>> futures;
    futures.reserve(static_cast<std::size_t>(n));
    const double seconds = secondsOf([&] {
        for (Index r = 0; r < n; ++r)
            futures.push_back(session.submit(
                name,
                operands[static_cast<std::size_t>(r % kOperandKinds)]));
        for (auto& f : futures)
            f.wait();
    });
    double err = 0;
    for (Index r = 0; r < n; ++r)
        err = std::max(
            err,
            maxAbsDiff(futures[static_cast<std::size_t>(r)].get(),
                       oracles[static_cast<std::size_t>(
                           r % kOperandKinds)]));
    return {seconds, err};
}

/** Simulated cycles of one run of @p fn on a fresh machine. */
template <typename Fn>
double
simCycles(Fn&& fn)
{
    sim::Machine machine;
    sim::SimExec exec(machine);
    fn(exec);
    return machine.core().cycles();
}

int
run(int argc, char** argv)
{
    const BenchCli cli = parseBenchCli(argc, argv);
    const double scale = wl::benchScale(0.25);
    preamble("Serving throughput (extension)",
             "serve::Session requests/sec vs batch size — batched "
             "multi-RHS SpMV against individual eng::spmv calls",
             scale);

    const Index rows = std::max<Index>(
        4096, static_cast<Index>(32768 * scale));
    const Index nnz = std::max<Index>(
        131072, static_cast<Index>(1250000 * scale));
    fmt::CooMatrix coo = wl::genClustered(rows, rows, nnz, 8, 97);

    serve::MatrixRegistry registry;
    const eng::Format chosen = registry.put("ranker", std::move(coo));
    std::cout << "Matrix: " << rows << "x" << rows << ", nnz "
              << registry.info("ranker").nnz
              << ", auto-selected format " << eng::toString(chosen)
              << "; threads " << cli.threads << ", compute exec "
              << toString(cli.exec) << "\n\n";

    std::vector<std::vector<Value>> operands;
    for (Index k = 0; k < kOperandKinds; ++k)
        operands.push_back(requestOperand(rows, k));

    // Conversion happens once, here, so every configuration below
    // measures steady-state serving (the conversion-overlap story
    // is the pipeline's; fig20 covers the cost itself).
    const serve::MatrixRegistry::EncodingPtr held =
        registry.encoded("ranker");
    const eng::SparseMatrixAny& m = *held;

    if (cli.exec == ExecKind::kSim) {
        // Cycle-accurate amortization: per-request cost of a batch
        // of 8 vs a single request.
        const Index nrhs = 8;
        std::vector<Value> x1 = kern::padVector(operands[0], m.xLength());
        std::vector<Value> y1(static_cast<std::size_t>(rows), Value(0));
        const double single = simCycles([&](sim::SimExec& e) {
            eng::spmv(m.ref(), x1, y1, e);
        });
        fmt::DenseMatrix x(m.xLength(), nrhs);
        for (Index r = 0; r < nrhs; ++r)
            for (Index j = 0; j < rows; ++j)
                x.at(j, r) = operands[static_cast<std::size_t>(
                    r % kOperandKinds)][static_cast<std::size_t>(j)];
        fmt::DenseMatrix y(rows, nrhs);
        const double batched = simCycles([&](sim::SimExec& e) {
            eng::spmvBatch(m.ref(), x, y, e);
        });
        TextTable table("Simulated cycles per request");
        table.setHeader({"batch", "cycles/request", "vs batch 1"});
        table.addRow({"1", formatFixed(single, 0), "1.00"});
        table.addRow({"8", formatFixed(batched / nrhs, 0),
                      formatFixed(single / (batched / nrhs), 2)});
        table.print(std::cout);
        return 0;
    }

    std::vector<std::vector<Value>> oracles;
    {
        sim::NativeExec ne;
        for (Index k = 0; k < kOperandKinds; ++k) {
            std::vector<Value> y(static_cast<std::size_t>(rows),
                                 Value(0));
            eng::spmv(m.ref(), operands[static_cast<std::size_t>(k)], y,
                      ne);
            oracles.push_back(std::move(y));
        }
    }

    const Index nreq =
        std::max<Index>(64, static_cast<Index>(2048 * scale));
    const serve::ComputeExec compute = cli.exec == ExecKind::kParallel
        ? serve::ComputeExec::kParallel
        : serve::ComputeExec::kSerial;

    serve::SessionOptions base;
    base.threads = cli.threads;
    base.maxDelay = std::chrono::microseconds(200);
    base.compute = compute;

    // Baseline: the same requests as individual eng::spmv calls
    // (max-batch-1 pipeline) at the same thread count.
    serve::SessionOptions individual = base;
    individual.maxBatch = 1;
    const auto [t_ind, err_ind] = runConfig(
        registry, "ranker", individual, nreq, operands, oracles);
    const double rps_ind = static_cast<double>(nreq) / t_ind;

    TextTable table(
        "Requests/sec, " + std::to_string(nreq) + " requests, " +
        std::to_string(cli.threads) +
        " threads (baseline: individual eng::spmv, " +
        formatFixed(rps_ind, 0) + " req/s)");
    table.setHeader(
        {"max batch", "req/s", "speedup vs individual", "max |err|"});
    table.addRow({"1 (individual)", formatFixed(rps_ind, 0), "1.00",
                  formatFixed(err_ind, 12)});

    double speedup8 = 0;
    double max_err = err_ind;
    for (Index batch : {4, 8, 16, 32}) {
        serve::SessionOptions opts = base;
        opts.maxBatch = batch;
        const auto [t, err] = runConfig(registry, "ranker", opts, nreq,
                                        operands, oracles);
        const double rps = static_cast<double>(nreq) / t;
        if (batch == 8)
            speedup8 = rps / rps_ind;
        max_err = std::max(max_err, err);
        table.addRow({std::to_string(batch), formatFixed(rps, 0),
                      formatFixed(rps / rps_ind, 2),
                      formatFixed(err, 12)});
    }
    table.print(std::cout);

    std::cout << "\nBatch 8 vs individual at " << cli.threads
              << " threads: " << formatFixed(speedup8, 2)
              << "x requests/sec\n"
              << "Expected shape: requests/sec grows with the batch "
                 "size because one matrix traversal serves the whole "
                 "batch; gains flatten once the nrhs-wide inner loop "
                 "saturates memory bandwidth.\n";
    if (max_err > 1e-9) {
        std::cerr << "served results diverge from the serial oracle ("
                  << max_err << ")!\n";
        return 1;
    }
    return 0;
}

} // namespace
} // namespace smash::bench

int
main(int argc, char** argv)
{
    return smash::bench::run(argc, argv);
}
