/**
 * @file
 * §5.2.1 use case (beyond the paper's figures): sparse iterative
 * solvers and eigenvalue calculation over interchangeable SpMV
 * backends. Two experiments:
 *
 *   1. Conjugate Gradient on a 2-D Poisson system, simulated, with
 *      CSR / SW-SMASH / SMASH-HW backends: identical iterates, so
 *      cycle and instruction differences are pure indexing cost.
 *   2. Preconditioning study (native): plain CG vs Jacobi-PCG vs
 *      ILU(0)-PCG iteration counts on the same system — exercising
 *      the sparse-LU substrate.
 */

#include <iostream>

#include "common/table.hh"
#include "engine/operator.hh"
#include "harness.hh"
#include "isa/bmu.hh"
#include "solvers/ilu.hh"
#include "solvers/krylov.hh"
#include "workloads/matrix_gen.hh"

namespace smash::bench
{
namespace
{

struct SolveCost
{
    solve::SolveReport report;
    double cycles = 0;
    Counter instructions = 0;
};

/** Simulated CG with a chosen SpMV backend (engine dispatch). */
SolveCost
simulatedCg(sim::Machine& machine, eng::MatrixRef m,
            const eng::SpmvOptions& opts, int max_iters)
{
    sim::SimExec e(machine);
    std::vector<Value> b(static_cast<std::size_t>(m.rows()), Value(1));
    std::vector<Value> x(static_cast<std::size_t>(m.rows()), Value(0));
    solve::IdentityPreconditioner ident;
    SolveCost cost;
    cost.report = solve::preconditionedCg(
        eng::makeOperator(m, e, opts),
        [&](const std::vector<Value>& r, std::vector<Value>& z,
            sim::SimExec& ee) { ident(r, z, ee); },
        b, x, 1e-8, max_iters, e);
    cost.cycles = machine.core().cycles();
    cost.instructions = machine.core().instructions();
    return cost;
}

int
run()
{
    const double scale = wl::benchScale(0.25);
    preamble("Solver use case (extension, paper §5.2.1)",
             "CG over CSR / SW-SMASH / SMASH-HW backends (simulated), "
             "plus preconditioner study (native)",
             scale);

    // Grid sized so the full-scale system has ~16k unknowns.
    const Index side = std::max<Index>(
        8, static_cast<Index>(128 * std::sqrt(scale)));
    fmt::CooMatrix coo = wl::genPoisson2d(side, side);
    fmt::CsrMatrix a = fmt::CsrMatrix::fromCoo(coo);
    core::SmashMatrix smash = core::SmashMatrix::fromCoo(
        coo, core::HierarchyConfig::fromPaperNotation({16, 4, 2}));
    std::cout << "Poisson grid " << side << "x" << side << " ("
              << a.rows() << " unknowns, " << a.nnz() << " non-zeros)\n\n";
    const int max_iters = 120;

    // --- Experiment 1: backend comparison under simulation. ---
    TextTable table("Simulated CG cost per backend (identical iterates)");
    table.setHeader({"backend", "iterations", "instructions", "cycles",
                     "speedup vs CSR"});

    sim::Machine m_csr;
    SolveCost c_csr = simulatedCg(m_csr, a, {}, max_iters);

    sim::Machine m_sw;
    SolveCost c_sw = simulatedCg(m_sw, smash, {}, max_iters);

    sim::Machine m_hw;
    isa::Bmu bmu;
    SolveCost c_hw = simulatedCg(
        m_hw, smash, {eng::SpmvAlgo::kHw, &bmu}, max_iters);

    auto add = [&](const char* name, const SolveCost& c) {
        table.addRow({name, std::to_string(c.report.iterations),
                      std::to_string(c.instructions),
                      formatFixed(c.cycles, 0),
                      formatFixed(c_csr.cycles / c.cycles, 2)});
    };
    add("TACO-CSR", c_csr);
    add("SW-SMASH", c_sw);
    add("SMASH (BMU)", c_hw);
    table.print(std::cout);
    std::cout << "\n";

    // --- Experiment 2: preconditioning (native, correctness-level). ---
    sim::NativeExec e;
    auto apply = eng::makeOperator(a, e);
    std::vector<Value> b(static_cast<std::size_t>(a.rows()), Value(1));

    TextTable pc("Preconditioner study (native; tol 1e-8)");
    pc.setHeader({"method", "iterations", "converged"});

    {
        std::vector<Value> x(b.size(), 0.0);
        solve::IdentityPreconditioner ident;
        solve::SolveReport r = solve::preconditionedCg(
            apply,
            [&](const std::vector<Value>& rr, std::vector<Value>& z,
                sim::NativeExec& ee) { ident(rr, z, ee); },
            b, x, 1e-8, 2000, e);
        pc.addRow({"CG", std::to_string(r.iterations),
                   r.converged ? "yes" : "no"});
    }
    {
        std::vector<Value> x(b.size(), 0.0);
        std::vector<Value> diag(b.size(), 4.0);
        solve::JacobiPreconditioner jac(diag);
        solve::SolveReport r = solve::preconditionedCg(
            apply,
            [&](const std::vector<Value>& rr, std::vector<Value>& z,
                sim::NativeExec& ee) { jac(rr, z, ee); },
            b, x, 1e-8, 2000, e);
        pc.addRow({"Jacobi-PCG", std::to_string(r.iterations),
                   r.converged ? "yes" : "no"});
    }
    {
        std::vector<Value> x(b.size(), 0.0);
        solve::Ilu0Preconditioner ilu(solve::ilu0(a));
        solve::SolveReport r = solve::preconditionedCg(
            apply,
            [&](const std::vector<Value>& rr, std::vector<Value>& z,
                sim::NativeExec& ee) { ilu(rr, z, ee); },
            b, x, 1e-8, 2000, e);
        pc.addRow({"ILU(0)-PCG", std::to_string(r.iterations),
                   r.converged ? "yes" : "no"});
    }
    pc.print(std::cout);
    std::cout << "\nExpected shape: all backends take the same CG "
                 "iterations (up to floating-point rounding of the "
                 "block-order sums); the BMU backend runs them in fewer "
                 "cycles while the software scan pays extra instructions "
                 "(Poisson rows are very sparse — the Fig. 10 M1/M2 "
                 "regime); ILU(0) roughly halves the iteration count. "
                 "Jacobi matches plain CG because the Poisson diagonal "
                 "is constant (diagonal scaling is a no-op for CG).\n";
    return 0;
}

} // namespace
} // namespace smash::bench

int
main()
{
    return smash::bench::run();
}
