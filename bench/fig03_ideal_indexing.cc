/**
 * @file
 * Reproduces paper Figure 3: speedup and normalized executed
 * instructions of an *ideal indexing* scheme (non-zero positions
 * known for free) over baseline CSR, averaged across the Table-3
 * suite, for Sparse Matrix Addition, SpMV, and SpMM.
 *
 * Paper reference values: speedups 2.21x (SpMatAdd), 2.13x (SpMV),
 * 2.81x (SpMM); instruction reductions 49%, 42%, 65%.
 */

#include <iostream>

#include "common/table.hh"
#include "engine/dispatch.hh"
#include "harness.hh"
#include "workloads/matrix_gen.hh"

namespace smash::bench
{
namespace
{

struct Ratio
{
    double speedup = 0;
    double instructions = 0;
};

Ratio
spaddRatio(const MatrixBundle& bundle)
{
    // The addition partner reuses the matrix's structure class with
    // a different seed (same sparsity, disjoint-ish pattern).
    wl::MatrixSpec spec_b = bundle.spec;
    spec_b.seed += 7777;
    fmt::CsrMatrix b = fmt::CsrMatrix::fromCoo(wl::generateMatrix(spec_b));

    sim::Machine m1, m2;
    {
        sim::SimExec e(m1);
        eng::spadd(bundle.csr, b, e);
    }
    {
        sim::SimExec e(m2);
        eng::spadd(bundle.csr, b, e, eng::SpaddAlgo::kIdeal);
    }
    return {m1.core().cycles() / m2.core().cycles(),
            static_cast<double>(m2.core().instructions()) /
                static_cast<double>(m1.core().instructions())};
}

int
run()
{
    const double scale = wl::benchScale(0.25);
    preamble("Figure 3",
             "Ideal indexing vs. CSR: speedup and normalized "
             "instructions for SpMatAdd / SpMV / SpMM "
             "(average over the 15-matrix suite)",
             scale);

    double add_speed = 0, add_instr = 0;
    double mv_speed = 0, mv_instr = 0;
    double mm_speed = 0, mm_instr = 0;
    int count = 0;

    for (const wl::MatrixSpec& full_spec : wl::table3Specs()) {
        wl::MatrixSpec spec = wl::scaleSpec(full_spec, scale);
        MatrixBundle bundle = buildBundle(spec);

        Ratio add = spaddRatio(bundle);
        SimResult mv_csr = simSpmv(SpmvScheme::kTacoCsr, bundle);
        SimResult mv_ideal = simSpmv(SpmvScheme::kIdealCsr, bundle);
        SpmmBundle spmm = buildSpmmBundle(bundle);
        SimResult mm_csr = simSpmm(SpmvScheme::kTacoCsr, bundle, spmm);
        SimResult mm_ideal = simSpmm(SpmvScheme::kIdealCsr, bundle, spmm);

        add_speed += add.speedup;
        add_instr += add.instructions;
        mv_speed += mv_csr.cycles / mv_ideal.cycles;
        mv_instr += static_cast<double>(mv_ideal.instructions) /
            static_cast<double>(mv_csr.instructions);
        mm_speed += mm_csr.cycles / mm_ideal.cycles;
        mm_instr += static_cast<double>(mm_ideal.instructions) /
            static_cast<double>(mm_csr.instructions);
        ++count;
    }

    TextTable table("Figure 3 — Ideal CSR over CSR (suite average)");
    table.setHeader({"kernel", "speedup", "paper speedup",
                     "norm. instructions", "paper norm. instr"});
    table.addRow({"SpMatAdd", formatFixed(add_speed / count, 2), "2.21",
                  formatFixed(add_instr / count, 2), "0.51"});
    table.addRow({"SpMV", formatFixed(mv_speed / count, 2), "2.13",
                  formatFixed(mv_instr / count, 2), "0.58"});
    table.addRow({"SpMM", formatFixed(mm_speed / count, 2), "2.81",
                  formatFixed(mm_instr / count, 2), "0.35"});
    table.print(std::cout);
    return 0;
}

} // namespace
} // namespace smash::bench

int
main()
{
    return smash::bench::run();
}
