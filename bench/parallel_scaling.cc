/**
 * @file
 * Thread-scaling study (extension): native SpMV wall clock of the
 * engine's ParallelExec drivers vs the serial kernels on a >= 1M-nnz
 * generated matrix, for CSR (nnz-balanced row ranges) and SMASH
 * (Bitmap-0 word ranges with per-thread accumulators), at 1/2/4/8
 * threads. Results are validated element-wise against the serial
 * path. Speedups depend on the machine's core count (printed);
 * on a single hardware thread the study degenerates to measuring
 * pool overhead, which is itself worth knowing.
 */

#include <algorithm>
#include <cmath>
#include <iostream>
#include <thread>

#include "common/parallel_exec.hh"
#include "common/table.hh"
#include "engine/dispatch.hh"
#include "harness.hh"
#include "workloads/matrix_gen.hh"

namespace smash::bench
{
namespace
{

double
maxAbsDiff(const std::vector<Value>& a, const std::vector<Value>& b)
{
    double m = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(static_cast<double>(a[i] - b[i])));
    return m;
}

/** Best-of-reps wall clock of fn(). */
template <typename Fn>
double
bestSeconds(int reps, Fn&& fn)
{
    double best = 1e30;
    for (int r = 0; r < reps; ++r)
        best = std::min(best, secondsOf(fn));
    return best;
}

int
run()
{
    const double scale = wl::benchScale(1.0);
    preamble("Parallel scaling (extension)",
             "ParallelExec SpMV speedup over the serial native path "
             "(CSR row ranges, SMASH word ranges)",
             scale);
    std::cout << "Hardware threads available: "
              << std::thread::hardware_concurrency() << "\n\n";

    // >= 1M non-zeros at full scale, clustered so both CSR and
    // SMASH are exercised in their intended regime. ~38 nnz/row
    // keeps the Bitmap-0 area (one bit per 8 elements of the padded
    // matrix) within a few MiB.
    const Index rows = std::max<Index>(
        4096, static_cast<Index>(32768 * scale));
    const Index nnz = std::max<Index>(
        131072, static_cast<Index>(1250000 * scale));
    fmt::CooMatrix coo = wl::genClustered(rows, rows, nnz, 8, 97);
    fmt::CsrMatrix csr = fmt::CsrMatrix::fromCoo(coo);
    core::SmashMatrix smash = core::SmashMatrix::fromCoo(
        coo, core::HierarchyConfig::fromPaperNotation({16, 4, 2}));
    std::cout << "Matrix: " << rows << "x" << rows << ", nnz "
              << coo.nnz() << ", SMASH locality "
              << formatFixed(smash.localityOfSparsity(), 2) << "\n\n";

    std::vector<Value> x(static_cast<std::size_t>(rows), Value(1));
    for (Index i = 0; i < rows; ++i)
        x[static_cast<std::size_t>(i)] += Value(i % 9) * Value(0.125);

    const int reps = 5;
    sim::NativeExec serial;

    std::vector<Value> y_csr(static_cast<std::size_t>(rows), Value(0));
    const double t_csr = bestSeconds(reps, [&] {
        std::fill(y_csr.begin(), y_csr.end(), Value(0));
        eng::spmv(csr, x, y_csr, serial);
    });
    std::vector<Value> y_smash(static_cast<std::size_t>(rows), Value(0));
    const double t_smash = bestSeconds(reps, [&] {
        std::fill(y_smash.begin(), y_smash.end(), Value(0));
        eng::spmv(smash, x, y_smash, serial);
    });

    TextTable table("SpMV wall clock, best of " +
                    std::to_string(reps) + " (serial baseline: CSR " +
                    formatFixed(t_csr * 1e3, 2) + " ms, SMASH " +
                    formatFixed(t_smash * 1e3, 2) + " ms)");
    table.setHeader({"threads", "CSR ms", "CSR speedup", "SMASH ms",
                     "SMASH speedup", "max |err|"});

    for (int threads : {1, 2, 4, 8}) {
        exec::ParallelExec pe(threads);
        std::vector<Value> y(static_cast<std::size_t>(rows), Value(0));

        const double tp_csr = bestSeconds(reps, [&] {
            std::fill(y.begin(), y.end(), Value(0));
            eng::spmv(csr, x, y, pe);
        });
        std::fill(y.begin(), y.end(), Value(0));
        eng::spmv(csr, x, y, pe);
        double err = maxAbsDiff(y, y_csr);

        const double tp_smash = bestSeconds(reps, [&] {
            std::fill(y.begin(), y.end(), Value(0));
            eng::spmv(smash, x, y, pe);
        });
        std::fill(y.begin(), y.end(), Value(0));
        eng::spmv(smash, x, y, pe);
        err = std::max(err, maxAbsDiff(y, y_smash));

        table.addRow({std::to_string(threads),
                      formatFixed(tp_csr * 1e3, 2),
                      formatFixed(t_csr / tp_csr, 2),
                      formatFixed(tp_smash * 1e3, 2),
                      formatFixed(t_smash / tp_smash, 2),
                      formatFixed(err, 12)});
        if (err > 1e-9) {
            std::cerr << "parallel/serial mismatch at " << threads
                      << " threads!\n";
            return 1;
        }
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: near-linear CSR scaling up to the "
                 "physical core count (the row ranges are nnz-balanced "
                 "and share nothing); SMASH scales similarly with a "
                 "constant merge cost for the per-thread accumulators. "
                 "Beyond the core count, work stealing keeps the "
                 "oversubscribed configurations from regressing.\n";
    return 0;
}

} // namespace
} // namespace smash::bench

int
main()
{
    return smash::bench::run();
}
