/**
 * @file
 * Thread-scaling study (extension): native SpMV wall clock of the
 * engine's ParallelExec drivers vs the serial kernels on a >= 1M-nnz
 * generated matrix, for CSR (nnz-balanced row ranges) and SMASH
 * (Bitmap-0 word ranges with per-thread accumulators), at 1/2/4/8
 * threads. Results are validated element-wise against the serial
 * path. Speedups depend on the machine's core count (printed);
 * on a single hardware thread the study degenerates to measuring
 * pool overhead, which is itself worth knowing.
 *
 * The matrices are wrapped in SparseMatrixAny, so repeated
 * dispatches hit the cached partition plans — the steady-state
 * serving regime, where the per-call partitioning setup (row cuts,
 * the SMASH word-rank pre-scan) is paid once, not per request.
 * --pin additionally pins the pool workers (sticky chunks then
 * stay core-resident).
 */

#include <algorithm>
#include <cmath>
#include <iostream>
#include <thread>

#include "common/parallel_exec.hh"
#include "common/table.hh"
#include "engine/dispatch.hh"
#include "harness.hh"
#include "workloads/matrix_gen.hh"

namespace smash::bench
{
namespace
{

double
maxAbsDiff(const std::vector<Value>& a, const std::vector<Value>& b)
{
    double m = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(static_cast<double>(a[i] - b[i])));
    return m;
}

/** Best-of-reps wall clock of fn(). */
template <typename Fn>
double
bestSeconds(int reps, Fn&& fn)
{
    double best = 1e30;
    for (int r = 0; r < reps; ++r)
        best = std::min(best, secondsOf(fn));
    return best;
}

int
run(int argc, char** argv)
{
    BenchCli defaults;
    defaults.exec = ExecKind::kParallel;
    const BenchCli cli = parseBenchCli(argc, argv, defaults);
    if (cli.exec != ExecKind::kParallel) {
        // This study is by definition ParallelExec vs the serial
        // native path; accepting --exec and ignoring it would be
        // misleading.
        std::cerr << "parallel_scaling always compares ParallelExec "
                     "against the serial native path; --exec is not "
                     "supported here\n";
        return 2;
    }
    const double scale = wl::benchScale(1.0);
    preamble("Parallel scaling (extension)",
             "ParallelExec SpMV speedup over the serial native path "
             "(CSR row ranges, SMASH word ranges)",
             scale);
    std::cout << "Hardware threads available: "
              << std::thread::hardware_concurrency() << "\n\n";

    // >= 1M non-zeros at full scale, clustered so both CSR and
    // SMASH are exercised in their intended regime. ~38 nnz/row
    // keeps the Bitmap-0 area (one bit per 8 elements of the padded
    // matrix) within a few MiB.
    const Index rows = std::max<Index>(
        4096, static_cast<Index>(32768 * scale));
    const Index nnz = std::max<Index>(
        131072, static_cast<Index>(1250000 * scale));
    fmt::CooMatrix coo = wl::genClustered(rows, rows, nnz, 8, 97);
    // SparseMatrixAny holders: dispatches below go through each
    // matrix's PlanCache, so every thread count's partition is
    // computed once and the timed repetitions run plan-cached.
    eng::SparseMatrixAny csr(fmt::CsrMatrix::fromCoo(coo));
    eng::SparseMatrixAny smash(core::SmashMatrix::fromCoo(
        coo, core::HierarchyConfig::fromPaperNotation({16, 4, 2})));
    std::cout << "Matrix: " << rows << "x" << rows << ", nnz "
              << coo.nnz() << ", SMASH locality "
              << formatFixed(smash.as<core::SmashMatrix>()
                                 .localityOfSparsity(),
                             2)
              << (cli.pin ? ", workers pinned" : "") << "\n\n";

    std::vector<Value> x(static_cast<std::size_t>(rows), Value(1));
    for (Index i = 0; i < rows; ++i)
        x[static_cast<std::size_t>(i)] += Value(i % 9) * Value(0.125);

    // Sweep the standard counts, plus --threads when it adds one.
    std::vector<int> thread_counts{1, 2, 4, 8};
    if (std::find(thread_counts.begin(), thread_counts.end(),
                  cli.threads) == thread_counts.end())
        thread_counts.push_back(cli.threads);

    const int reps = 5;
    sim::NativeExec serial;

    std::vector<Value> y_csr(static_cast<std::size_t>(rows), Value(0));
    const double t_csr = bestSeconds(reps, [&] {
        std::fill(y_csr.begin(), y_csr.end(), Value(0));
        eng::spmv(csr, x, y_csr, serial);
    });
    std::vector<Value> y_smash(static_cast<std::size_t>(rows), Value(0));
    const double t_smash = bestSeconds(reps, [&] {
        std::fill(y_smash.begin(), y_smash.end(), Value(0));
        eng::spmv(smash, x, y_smash, serial);
    });

    TextTable table("SpMV wall clock, best of " +
                    std::to_string(reps) + " (serial baseline: CSR " +
                    formatFixed(t_csr * 1e3, 2) + " ms, SMASH " +
                    formatFixed(t_smash * 1e3, 2) + " ms)");
    table.setHeader({"threads", "CSR ms", "CSR speedup", "SMASH ms",
                     "SMASH speedup", "max |err|"});

    for (int threads : thread_counts) {
        exec::ParallelExec pe(
            exec::ThreadPool::Options{threads, cli.pin});
        std::vector<Value> y(static_cast<std::size_t>(rows), Value(0));

        const double tp_csr = bestSeconds(reps, [&] {
            std::fill(y.begin(), y.end(), Value(0));
            eng::spmv(csr, x, y, pe);
        });
        std::fill(y.begin(), y.end(), Value(0));
        eng::spmv(csr, x, y, pe);
        double err = maxAbsDiff(y, y_csr);

        const double tp_smash = bestSeconds(reps, [&] {
            std::fill(y.begin(), y.end(), Value(0));
            eng::spmv(smash, x, y, pe);
        });
        std::fill(y.begin(), y.end(), Value(0));
        eng::spmv(smash, x, y, pe);
        err = std::max(err, maxAbsDiff(y, y_smash));

        table.addRow({std::to_string(threads),
                      formatFixed(tp_csr * 1e3, 2),
                      formatFixed(t_csr / tp_csr, 2),
                      formatFixed(tp_smash * 1e3, 2),
                      formatFixed(t_smash / tp_smash, 2),
                      formatFixed(err, 12)});
        if (err > 1e-9) {
            std::cerr << "parallel/serial mismatch at " << threads
                      << " threads!\n";
            return 1;
        }
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: near-linear CSR scaling up to the "
                 "physical core count (the row ranges are nnz-balanced "
                 "and share nothing); SMASH scales similarly with a "
                 "constant merge cost for the per-thread accumulators. "
                 "Beyond the core count, work stealing keeps the "
                 "oversubscribed configurations from regressing.\n";
    return 0;
}

} // namespace
} // namespace smash::bench

int
main(int argc, char** argv)
{
    return smash::bench::run(argc, argv);
}
