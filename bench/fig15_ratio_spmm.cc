/**
 * @file
 * Reproduces paper Figure 15: sensitivity of SMASH SpMM speedup to
 * the Bitmap-0 : NZA compression ratio (2:1, 4:1, 8:1), normalized
 * to 2:1, per matrix. Paper reference: 8:1 costs ~5% on average (up
 * to 15%), with clustered matrices gaining.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"

namespace smash::bench
{
namespace
{

int
run()
{
    const double scale = wl::benchScale(0.05);
    preamble("Figure 15",
             "SMASH SpMM speedup vs Bitmap-0 compression ratio "
             "(normalized to B0-2:1; B = A^T[:, :64])",
             scale);

    TextTable table("Figure 15 — SpMM sensitivity to Bitmap-0 ratio");
    table.setHeader({"matrix.config", "B0-2:1", "B0-4:1", "B0-8:1"});

    double sum4 = 0, sum8 = 0;
    int count = 0;
    for (const wl::MatrixSpec& full_spec : wl::table3Specs()) {
        wl::MatrixSpec spec = wl::scaleSpec(full_spec, scale);
        std::vector<Index> upper(spec.paperConfig.begin(),
                                 spec.paperConfig.end() - 1);
        double cycles[3];
        int idx = 0;
        for (Index b0 : {2, 4, 8}) {
            std::vector<Index> cfg = upper;
            cfg.push_back(b0);
            MatrixBundle bundle = buildBundle(spec, cfg);
            SpmmBundle spmm = buildSpmmBundle(bundle, cfg);
            cycles[idx++] =
                simSpmm(SpmvScheme::kSmashHw, bundle, spmm).cycles;
        }
        std::string label = spec.name + "." + std::to_string(upper[0]) +
            "." + std::to_string(upper[1]);
        table.addRow({label, "1.00",
                      formatFixed(cycles[0] / cycles[1], 2),
                      formatFixed(cycles[0] / cycles[2], 2)});
        sum4 += cycles[0] / cycles[1];
        sum8 += cycles[0] / cycles[2];
        ++count;
    }
    table.addRow({"AVG (paper 8:1: ~0.95)", "1.00",
                  formatFixed(sum4 / count, 2),
                  formatFixed(sum8 / count, 2)});
    table.print(std::cout);
    return 0;
}

} // namespace
} // namespace smash::bench

int
main()
{
    return smash::bench::run();
}
