/**
 * @file
 * Model ablations (beyond the paper): shows which machine-model
 * ingredients the headline SpMV result depends on, on one
 * mid-suite matrix (M8) —
 *
 *   1. full model (Table 2)                     — the default
 *   2. no stride prefetchers                    — streaming arrays
 *      stop hitting, CSR gets *worse*, SMASH's relative win shrinks
 *   3. MLP = 1 (no miss overlap)                — dependence tagging
 *      stops mattering; the gap collapses toward the instruction
 *      ratio
 *   4. hierarchy depth sweep (1/2/3 levels)     — the paper's
 *      Bitmap-hierarchy design choice (§4.1): deep hierarchies cost
 *      nothing on dense rows and pay off on sparse ones
 */

#include <iostream>

#include "common/table.hh"
#include "engine/dispatch.hh"
#include "harness.hh"
#include "isa/bmu.hh"

namespace smash::bench
{
namespace
{

SimResult
runWith(const MatrixBundle& bundle, SpmvScheme scheme,
        const sim::CoreConfig& core, const sim::MemoryConfig& mem)
{
    sim::Machine machine(core, mem);
    sim::SimExec e(machine);
    std::vector<Value> x(static_cast<std::size_t>(bundle.coo.cols()),
                         Value(1));
    std::vector<Value> y(static_cast<std::size_t>(bundle.coo.rows()),
                         Value(0));
    switch (scheme) {
      case SpmvScheme::kTacoCsr:
        eng::spmv(bundle.csr, x, y, e);
        break;
      case SpmvScheme::kSmashHw: {
        isa::Bmu bmu;
        eng::spmv(bundle.smash, x, y, e,
                  {eng::SpmvAlgo::kHw, &bmu});
        break;
      }
      default:
        SMASH_PANIC("ablation covers CSR and SMASH-HW only");
    }
    SimResult r;
    r.cycles = machine.core().cycles();
    r.instructions = machine.core().instructions();
    r.dramReads = machine.memory().dram().stats().reads;
    return r;
}

int
run()
{
    const double scale = wl::benchScale(0.25);
    preamble("Ablation (extension)",
             "Machine-model and hierarchy-depth ablations for the "
             "SpMV result on M8 (pkustk07)",
             scale);

    wl::MatrixSpec spec = wl::scaleSpec(wl::table3Specs()[7], scale);

    // --- Machine-model ablations. ---
    sim::CoreConfig core_default;
    sim::MemoryConfig mem_default;
    sim::CoreConfig core_no_mlp;
    core_no_mlp.mlp = 1.0;
    sim::MemoryConfig mem_no_pf;
    mem_no_pf.l1.prefetcher = false;
    mem_no_pf.l2.prefetcher = false;
    mem_no_pf.l3.prefetcher = false;

    MatrixBundle bundle = buildBundle(spec);
    TextTable table("SMASH-HW speedup over TACO-CSR under model ablations");
    table.setHeader({"model variant", "CSR Mcycles", "SMASH Mcycles",
                     "speedup"});
    struct Variant
    {
        const char* name;
        sim::CoreConfig core;
        sim::MemoryConfig mem;
    };
    const Variant variants[] = {
        {"full model (Table 2)", core_default, mem_default},
        {"no prefetchers", core_default, mem_no_pf},
        {"MLP = 1 (no overlap)", core_no_mlp, mem_default},
    };
    for (const Variant& v : variants) {
        SimResult csr = runWith(bundle, SpmvScheme::kTacoCsr, v.core,
                                v.mem);
        SimResult hw = runWith(bundle, SpmvScheme::kSmashHw, v.core,
                               v.mem);
        table.addRow({v.name, formatFixed(csr.cycles / 1e6, 2),
                      formatFixed(hw.cycles / 1e6, 2),
                      formatFixed(csr.cycles / hw.cycles, 2)});
    }
    table.print(std::cout);

    // --- Hierarchy-depth ablation. ---
    TextTable depth("SMASH-HW SpMV vs hierarchy depth (same block size)");
    depth.setHeader({"config (top-down)", "SMASH Mcycles",
                     "BMU refills", "speedup vs CSR"});
    SimResult csr = runWith(bundle, SpmvScheme::kTacoCsr, core_default,
                            mem_default);
    // Depths 1-3 (the BMU has three buffers per group, §4.2.1).
    const std::vector<std::vector<Index>> configs = {
        {2}, {4, 2}, {16, 4, 2}, {32, 16, 2}};
    for (const auto& cfg : configs) {
        MatrixBundle b = buildBundle(spec, cfg);
        SimResult hw = runWith(b, SpmvScheme::kSmashHw, core_default,
                               mem_default);
        depth.addRow({b.smash.config().toString(),
                      formatFixed(hw.cycles / 1e6, 2),
                      std::to_string(hw.dramReads),
                      formatFixed(csr.cycles / hw.cycles, 2)});
    }
    depth.print(std::cout);
    return 0;
}

} // namespace
} // namespace smash::bench

int
main()
{
    return smash::bench::run();
}
