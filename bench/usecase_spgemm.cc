/**
 * @file
 * General SpGEMM use case (extension; the paper's SpMM evaluation
 * uses inner-product index matching, §5.2): row-wise Gustavson
 * C := A B with sparse output, comparing how A's non-zeros are
 * discovered — CSR streaming, SMASH software scan, SMASH BMU — plus
 * the outer-product dataflow as a second baseline. All variants
 * produce identical CSR output; differences are indexing cost.
 */

#include <iostream>

#include "common/table.hh"
#include "engine/dispatch.hh"
#include "formats/convert.hh"
#include "harness.hh"
#include "isa/bmu.hh"

namespace smash::bench
{
namespace
{

int
run()
{
    const double scale = wl::benchScale(0.02);
    preamble("SpGEMM use case (extension)",
             "Gustavson C := A*B with sparse output; A's non-zeros "
             "discovered via CSR / SW-SMASH / SMASH-HW; outer-product "
             "baseline",
             scale);

    const std::vector<wl::MatrixSpec> all = wl::table3Specs();
    const int picks[] = {1, 7, 12}; // M2, M8, M13

    TextTable table("Simulated SpGEMM (B = A^T), cost per scheme");
    table.setHeader({"matrix", "scheme", "instructions", "cycles",
                     "speedup vs Gustavson-CSR", "C nnz"});

    for (int pick : picks) {
        wl::MatrixSpec spec = wl::scaleSpec(all[static_cast<std::size_t>(
            pick)], scale);
        MatrixBundle bundle = buildBundle(spec);
        fmt::CsrMatrix b = fmt::transpose(bundle.csr);
        fmt::CscMatrix a_csc = fmt::csrToCsc(bundle.csr);

        double csr_cycles = 0;
        auto report = [&](const char* name, sim::Machine& m,
                          const fmt::CsrMatrix& c) {
            if (csr_cycles == 0)
                csr_cycles = m.core().cycles();
            table.addRow({spec.name, name,
                          std::to_string(m.core().instructions()),
                          formatFixed(m.core().cycles(), 0),
                          formatFixed(csr_cycles / m.core().cycles(), 2),
                          std::to_string(c.nnz())});
        };

        {
            sim::Machine m;
            sim::SimExec e(m);
            fmt::CsrMatrix c = eng::spgemm(bundle.csr, b, e);
            report("Gustavson-CSR", m, c);
        }
        {
            sim::Machine m;
            sim::SimExec e(m);
            fmt::CsrMatrix c = eng::spgemm(a_csc, b, e);
            report("Outer-product", m, c);
        }
        {
            sim::Machine m;
            sim::SimExec e(m);
            fmt::CsrMatrix c = eng::spgemm(bundle.smash, b, e);
            report("SW-SMASH", m, c);
        }
        {
            sim::Machine m;
            sim::SimExec e(m);
            isa::Bmu bmu;
            fmt::CsrMatrix c = eng::spgemm(bundle.smash, b, e,
                                           {.bmu = &bmu});
            report("SMASH (BMU)", m, c);
        }
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: all schemes emit identical C nnz; "
                 "SMASH-HW beats SW-SMASH; the scatter-heavy phases "
                 "(SPA updates) bound the achievable speedup, so gains "
                 "are smaller than in SpMV where indexing dominates.\n";
    return 0;
}

} // namespace
} // namespace smash::bench

int
main()
{
    return smash::bench::run();
}
