/**
 * @file
 * Reproduces paper Figure 19: total compression ratio (uncompressed
 * size / compressed size) of CSR and SMASH per matrix, with the
 * paper's assumptions: NZA blocks of 2 elements, hierarchy Mi.b2.b1
 * upper levels, compact bitmap storage (Fig. 4b).
 *
 * Paper reference: CSR compresses better on the very sparse
 * matrices (M1-M4); SMASH matches or beats CSR (up to 2.48x better)
 * as density/locality rise; gene matrices (M13, M15) stay close to
 * CSR because their locality of sparsity is low.
 *
 * Storage accounting needs no simulation, so this bench runs at
 * full Table-3 scale by default.
 */

#include <cmath>
#include <iostream>

#include "common/table.hh"
#include "harness.hh"

namespace smash::bench
{
namespace
{

int
run()
{
    const double scale = wl::benchScale(1.0);
    preamble("Figure 19",
             "Total compression ratio: uncompressed / (format bytes); "
             "SMASH uses block size 2 and compact bitmaps",
             scale);

    TextTable table("Figure 19 — total compression ratio (higher = better)");
    table.setHeader({"matrix.config", "sparsity%", "locality", "CSR",
                     "SMASH", "SMASH/CSR"});

    double geo = 0;
    int count = 0;
    for (const wl::MatrixSpec& full_spec : wl::table3Specs()) {
        wl::MatrixSpec spec = wl::scaleSpec(full_spec, scale);
        // The caption fixes the NZA block at 2 elements; keep the
        // caption's upper levels.
        std::vector<Index> cfg(spec.paperConfig.begin(),
                               spec.paperConfig.end() - 1);
        cfg.push_back(2);
        MatrixBundle bundle = buildBundle(spec, cfg);

        double dense_bytes =
            static_cast<double>(spec.rows) *
            static_cast<double>(spec.cols) * sizeof(Value);
        double csr_ratio = dense_bytes /
            static_cast<double>(bundle.csr.storageBytes());
        double smash_ratio = dense_bytes /
            static_cast<double>(bundle.smash.storageBytesCompact());

        std::string label = spec.name + "." + std::to_string(cfg[0]) +
            "." + std::to_string(cfg[1]);
        table.addRow({label, formatFixed(spec.sparsityPct, 2),
                      formatFixed(bundle.locality, 2),
                      formatFixed(csr_ratio, 1),
                      formatFixed(smash_ratio, 1),
                      formatFixed(smash_ratio / csr_ratio, 2)});
        geo += std::log(smash_ratio / csr_ratio);
        ++count;
    }
    table.addRow({"GMEAN SMASH/CSR (paper: ~1, up to 2.48 on dense)",
                  "", "", "", "", formatFixed(std::exp(geo / count), 2)});
    table.print(std::cout);
    return 0;
}

} // namespace
} // namespace smash::bench

int
main()
{
    return smash::bench::run();
}
