/**
 * @file
 * Reproduces the paper's §7.6 area claim: a BMU with 4 groups of
 * 3 x 256 B bitmap buffers (3 KiB SRAM) plus 140 B of registers
 * costs at most 0.076% of a modern Xeon core. Prints the analytic
 * area model's breakdown and an ablation over BMU sizings.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "isa/area_model.hh"

namespace smash::bench
{
namespace
{

int
run()
{
    preamble("Section 7.6",
             "BMU area overhead (CACTI-class analytic model)", 1.0);

    isa::AreaReport base = isa::computeBmuArea();
    TextTable breakdown("BMU area breakdown (paper configuration)");
    breakdown.setHeader({"component", "value"});
    breakdown.addRow({"SRAM capacity",
                      formatFixed(base.sramBytes / 1024.0, 2) + " KiB"});
    breakdown.addRow({"SRAM area",
                      formatFixed(base.sramAreaMm2 * 1000, 3) +
                      " x10^-3 mm^2"});
    breakdown.addRow({"register area",
                      formatFixed(base.registerAreaMm2 * 1000, 3) +
                      " x10^-3 mm^2"});
    breakdown.addRow({"scan-logic area",
                      formatFixed(base.logicAreaMm2 * 1000, 3) +
                      " x10^-3 mm^2"});
    breakdown.addRow({"total",
                      formatFixed(base.totalAreaMm2 * 1000, 3) +
                      " x10^-3 mm^2"});
    breakdown.addRow({"core overhead",
                      formatFixed(base.coreOverheadPct, 4) +
                      " % (paper: <= 0.076%)"});
    breakdown.print(std::cout);

    TextTable ablation("Ablation — overhead vs BMU sizing");
    ablation.setHeader({"groups", "buffers", "buffer bytes",
                        "SRAM KiB", "overhead %"});
    for (int groups : {2, 4, 8}) {
        for (std::size_t buffer_bytes : {128UL, 256UL, 512UL}) {
            isa::BmuSizing sizing;
            sizing.groups = groups;
            sizing.bufferBytes = buffer_bytes;
            isa::AreaReport r = isa::computeBmuArea(sizing);
            ablation.addRow({std::to_string(groups), "3",
                             std::to_string(buffer_bytes),
                             formatFixed(r.sramBytes / 1024.0, 2),
                             formatFixed(r.coreOverheadPct, 4)});
        }
    }
    ablation.print(std::cout);
    return 0;
}

} // namespace
} // namespace smash::bench

int
main()
{
    return smash::bench::run();
}
