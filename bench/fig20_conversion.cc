/**
 * @file
 * Reproduces paper Figure 20: end-to-end execution time breakdown
 * (CSRtoSMASH conversion / kernel / SMASHtoCSR conversion) when the
 * matrix must live in CSR but is processed with SMASH, for SpMV,
 * SpMM, and PageRank. Native wall-clock measurement.
 *
 * Paper reference: conversion dominates the short-running SpMV
 * (~55% of end-to-end; kernel 45%... breakdown 30/45/25), is minor
 * for SpMM (6/90/4), and negligible for PageRank (0.2/99.5/0.3).
 */

#include <iostream>

#include "common/table.hh"
#include "engine/dispatch.hh"
#include "graph/pagerank.hh"
#include "harness.hh"
#include "workloads/graph_suite.hh"

namespace smash::bench
{
namespace
{

struct Breakdown
{
    double toSmash = 0;
    double kernel = 0;
    double toCsr = 0;

    std::vector<std::string>
    row(const std::string& label) const
    {
        double total = toSmash + kernel + toCsr;
        return {label,
                formatFixed(toSmash / total * 100, 1) + "%",
                formatFixed(kernel / total * 100, 1) + "%",
                formatFixed(toCsr / total * 100, 1) + "%"};
    }
};

int
run()
{
    const double scale = wl::benchScale(0.25);
    preamble("Figure 20",
             "End-to-end breakdown with CSR-resident data processed "
             "via SMASH: CSRtoSMASH / kernel / SMASHtoCSR "
             "(native wall clock)",
             scale);

    // A mid-suite matrix (M8) represents the kernel benches, as the
    // paper's figure aggregates over the suite.
    wl::MatrixSpec spec = wl::scaleSpec(wl::table3Specs()[7], scale);
    MatrixBundle bundle = buildBundle(spec);
    core::HierarchyConfig cfg = wl::paperHierarchy(spec);
    sim::NativeExec e;

    TextTable table("Figure 20 — execution time breakdown");
    table.setHeader({"workload", "CSRtoSMASH", "kernel", "SMASHtoCSR"});

    // --- SpMV: one kernel invocation per conversion. ---
    {
        Breakdown b;
        core::SmashMatrix sm;
        b.toSmash = secondsOf([&] {
            sm = core::SmashMatrix::fromCsr(bundle.csr, cfg);
        });
        std::vector<Value> x(static_cast<std::size_t>(spec.cols), 1.0);
        std::vector<Value> xp = kern::padVector(x, sm.paddedCols());
        std::vector<Value> y(static_cast<std::size_t>(spec.rows), 0.0);
        b.kernel = secondsOf([&] { eng::spmv(sm, xp, y, e); });
        fmt::CsrMatrix back;
        b.toCsr = secondsOf([&] { back = sm.toCsr(); });
        table.addRow(b.row("SpMV (paper 30/45/25)"));
    }

    // --- SpMM: the kernel does rows x 64 dot products. ---
    {
        Breakdown b;
        core::SmashMatrix sm;
        b.toSmash = secondsOf([&] {
            sm = core::SmashMatrix::fromCsr(bundle.csr, cfg);
        });
        SpmmBundle spmm = buildSpmmBundle(bundle);
        fmt::DenseMatrix c(spec.rows, spmm.cols);
        b.kernel = secondsOf([&] {
            eng::spmm(sm, spmm.btSmash, c, e);
        });
        fmt::CsrMatrix back;
        b.toCsr = secondsOf([&] { back = sm.toCsr(); });
        table.addRow(b.row("SpMM (paper 6/90/4)"));
    }

    // --- PageRank: long-running iterative workload on G2-scale. ---
    {
        wl::GraphSpec gspec = wl::scaleSpec(wl::table4Specs()[1],
                                            std::min(scale, 0.05));
        graph::Graph g = wl::generateGraph(gspec);
        fmt::CsrMatrix pr_csr = fmt::CsrMatrix::fromCoo(
            g.toPageRankMatrix());
        Breakdown b;
        core::SmashMatrix sm;
        b.toSmash = secondsOf([&] {
            sm = core::SmashMatrix::fromCsr(pr_csr, cfg);
        });
        graph::PageRankParams params;
        params.iterations = 30; // long-running, as in the paper
        b.kernel = secondsOf([&] {
            graph::pagerankSmashSw(sm, params, e);
        });
        fmt::CsrMatrix back;
        b.toCsr = secondsOf([&] { back = sm.toCsr(); });
        table.addRow(b.row("PageRank (paper 0.2/99.5/0.3)"));
    }

    table.print(std::cout);
    std::cout << "(shape to hold: conversion dominates short SpMV, is "
                 "minor for SpMM, negligible for PageRank)\n";
    return 0;
}

} // namespace
} // namespace smash::bench

int
main()
{
    return smash::bench::run();
}
