/**
 * @file
 * Reproduces paper Figure 18: speedup and normalized executed
 * instructions of the SMASH-based PageRank and Betweenness
 * Centrality over the CSR-based implementations, on the four
 * Table-4 graphs (synthetic stand-ins, see DESIGN.md).
 *
 * Paper reference: PageRank-SMASH 1.27x, BC-SMASH 1.31x, with
 * smaller gains than the raw kernels because indexing is a smaller
 * share of the end-to-end run.
 */

#include <iostream>

#include "common/table.hh"
#include "graph/bc.hh"
#include "graph/pagerank.hh"
#include "harness.hh"
#include "workloads/graph_suite.hh"

namespace smash::bench
{
namespace
{

int
run()
{
    const double scale = wl::benchScale(0.02);
    preamble("Figure 18",
             "PageRank + Betweenness Centrality: SMASH vs CSR "
             "(Table-4 graph stand-ins; PageRank 5 iterations, "
             "BC 4 sources)",
             scale);

    TextTable table("Figure 18 — graph workloads, SMASH over CSR");
    table.setHeader({"graph", "V", "E", "PR speedup", "PR norm.instr",
                     "BC speedup", "BC norm.instr"});

    graph::PageRankParams pr_params;
    graph::BcParams bc_params;
    double pr_sum = 0, bc_sum = 0;
    int count = 0;
    for (const wl::GraphSpec& full_spec : wl::table4Specs()) {
        wl::GraphSpec spec = wl::scaleSpec(full_spec, scale);
        graph::Graph g = wl::generateGraph(spec);

        // PageRank operates on M = A^T D^-1; BC on the adjacency.
        fmt::CooMatrix pr_coo = g.toPageRankMatrix();
        fmt::CsrMatrix pr_csr = fmt::CsrMatrix::fromCoo(pr_coo);
        core::SmashMatrix pr_smash = core::SmashMatrix::fromCoo(
            pr_coo, core::HierarchyConfig::fromPaperNotation({16, 4, 2}));
        fmt::CsrMatrix adj = g.toAdjacencyMatrix();
        core::SmashMatrix adj_smash = core::SmashMatrix::fromCoo(
            adj.toCoo(),
            core::HierarchyConfig::fromPaperNotation({16, 4, 2}));

        sim::Machine m_pr_csr, m_pr_hw, m_bc_csr, m_bc_hw;
        {
            sim::SimExec e(m_pr_csr);
            graph::pagerankCsr(pr_csr, pr_params, e);
        }
        {
            sim::SimExec e(m_pr_hw);
            isa::Bmu bmu;
            graph::pagerankSmashHw(pr_smash, bmu, pr_params, e);
        }
        {
            sim::SimExec e(m_bc_csr);
            graph::bcCsr(adj, bc_params, e);
        }
        {
            sim::SimExec e(m_bc_hw);
            isa::Bmu bmu;
            graph::bcSmashHw(adj_smash, bmu, bc_params, e);
        }

        double pr_speed = m_pr_csr.core().cycles() /
            m_pr_hw.core().cycles();
        double bc_speed = m_bc_csr.core().cycles() /
            m_bc_hw.core().cycles();
        table.addRow({spec.name,
                      std::to_string(g.numVertices()),
                      std::to_string(g.numEdges()),
                      formatFixed(pr_speed, 2),
                      formatFixed(static_cast<double>(
                          m_pr_hw.core().instructions()) /
                          static_cast<double>(
                              m_pr_csr.core().instructions()), 2),
                      formatFixed(bc_speed, 2),
                      formatFixed(static_cast<double>(
                          m_bc_hw.core().instructions()) /
                          static_cast<double>(
                              m_bc_csr.core().instructions()), 2)});
        pr_sum += pr_speed;
        bc_sum += bc_speed;
        ++count;
    }
    table.addRow({"AVG (paper: PR 1.27, BC 1.31)", "", "",
                  formatFixed(pr_sum / count, 2), "",
                  formatFixed(bc_sum / count, 2), ""});
    table.print(std::cout);
    return 0;
}

} // namespace
} // namespace smash::bench

int
main()
{
    return smash::bench::run();
}
