#include "harness.hh"

#include <chrono>
#include <iostream>

#include "common/logging.hh"
#include "formats/convert.hh"
#include "kernels/spmm.hh"
#include "kernels/spmv.hh"

namespace smash::bench
{

void
preamble(const std::string& figure, const std::string& what, double scale)
{
    std::cout
        << "================================================================\n"
        << "SMASH reproduction — " << figure << "\n"
        << what << "\n"
        << "Simulated system (paper Table 2): 4-wide OOO core; "
        << "L1 32KB/8w/2cyc, L2 256KB/8w/8cyc, L3 1MB/16w/20cyc,\n"
        << "  64B lines, LRU, stride prefetchers; DDR4 1ch/16-bank "
        << "open-row (hit 110 / miss 170 cyc); MLP 4.\n"
        << "Workload scale factor: " << scale
        << " (override with SMASH_BENCH_SCALE in (0,1]; rows and nnz"
        << " shrink together, sparsity%/structure preserved)\n"
        << "================================================================\n";
}

MatrixBundle
buildBundle(const wl::MatrixSpec& spec,
            const std::vector<Index>& hierarchy)
{
    MatrixBundle b{spec, wl::generateMatrix(spec), {}, {}, {}, 0.0};
    b.csr = fmt::CsrMatrix::fromCoo(b.coo);
    b.bcsr = fmt::BcsrMatrix::fromCoo(b.coo, 4, 4);
    core::HierarchyConfig cfg = hierarchy.empty()
        ? wl::paperHierarchy(spec)
        : core::HierarchyConfig::fromPaperNotation(hierarchy);
    b.smash = core::SmashMatrix::fromCoo(b.coo, cfg);
    b.locality = b.smash.localityOfSparsity();
    return b;
}

namespace
{

std::vector<Value>
onesVector(Index n)
{
    return std::vector<Value>(static_cast<std::size_t>(n), Value(1));
}

template <typename Fn>
SimResult
measureSim(Fn&& fn)
{
    sim::Machine machine;
    sim::SimExec exec(machine);
    fn(exec);
    SimResult r;
    r.cycles = machine.core().cycles();
    r.instructions = machine.core().instructions();
    r.dramReads = machine.memory().dram().stats().reads;
    return r;
}

Index
bcsrPaddedCols(const fmt::BcsrMatrix& m)
{
    return static_cast<Index>(
        roundUp(static_cast<std::uint64_t>(m.cols()),
                static_cast<std::uint64_t>(m.blockCols())));
}

} // namespace

SimResult
simSpmv(SpmvScheme scheme, const MatrixBundle& bundle)
{
    const Index rows = bundle.coo.rows();
    const Index cols = bundle.coo.cols();
    std::vector<Value> x = onesVector(cols);
    std::vector<Value> y(static_cast<std::size_t>(rows), Value(0));

    switch (scheme) {
      case SpmvScheme::kTacoCsr:
        return measureSim([&](sim::SimExec& e) {
            kern::spmvCsr(bundle.csr, x, y, e);
        });
      case SpmvScheme::kMklCsr:
        return measureSim([&](sim::SimExec& e) {
            kern::spmvCsrUnrolled(bundle.csr, x, y, e);
        });
      case SpmvScheme::kIdealCsr:
        return measureSim([&](sim::SimExec& e) {
            kern::spmvCsrIdeal(bundle.csr, x, y, e);
        });
      case SpmvScheme::kTacoBcsr: {
        std::vector<Value> xb =
            kern::padVector(x, bcsrPaddedCols(bundle.bcsr));
        return measureSim([&](sim::SimExec& e) {
            kern::spmvBcsr(bundle.bcsr, xb, y, e);
        });
      }
      case SpmvScheme::kSmashSw: {
        std::vector<Value> xp =
            kern::padVector(x, bundle.smash.paddedCols());
        return measureSim([&](sim::SimExec& e) {
            kern::spmvSmashSw(bundle.smash, xp, y, e);
        });
      }
      case SpmvScheme::kSmashHw: {
        std::vector<Value> xp =
            kern::padVector(x, bundle.smash.paddedCols());
        return measureSim([&](sim::SimExec& e) {
            isa::Bmu bmu;
            kern::spmvSmashHw(bundle.smash, bmu, xp, y, e);
        });
      }
    }
    SMASH_PANIC("unknown SpMV scheme");
}

double
nativeSpmvSeconds(SpmvScheme scheme, const MatrixBundle& bundle, int reps)
{
    const Index rows = bundle.coo.rows();
    const Index cols = bundle.coo.cols();
    std::vector<Value> x = onesVector(cols);
    std::vector<Value> xb = kern::padVector(x, bcsrPaddedCols(bundle.bcsr));
    std::vector<Value> xp = kern::padVector(x, bundle.smash.paddedCols());
    std::vector<Value> y(static_cast<std::size_t>(rows), Value(0));
    sim::NativeExec e;

    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        double t = secondsOf([&] {
            switch (scheme) {
              case SpmvScheme::kTacoCsr:
                kern::spmvCsr(bundle.csr, x, y, e);
                break;
              case SpmvScheme::kMklCsr:
                kern::spmvCsrUnrolled(bundle.csr, x, y, e);
                break;
              case SpmvScheme::kIdealCsr:
                kern::spmvCsrIdeal(bundle.csr, x, y, e);
                break;
              case SpmvScheme::kTacoBcsr:
                kern::spmvBcsr(bundle.bcsr, xb, y, e);
                break;
              case SpmvScheme::kSmashSw:
                kern::spmvSmashSw(bundle.smash, xp, y, e);
                break;
              case SpmvScheme::kSmashHw: {
                isa::Bmu bmu;
                kern::spmvSmashHw(bundle.smash, bmu, xp, y, e);
                break;
              }
            }
        });
        best = t < best ? t : best;
    }
    return best;
}

SpmmBundle
buildSpmmBundle(const MatrixBundle& bundle,
                const std::vector<Index>& hierarchy)
{
    // B = A^T restricted to its first kSpmmCols columns: exercises
    // real index matching at tractable cost (DESIGN.md §5).
    SpmmBundle out;
    out.cols = std::min<Index>(kSpmmCols, bundle.coo.rows());
    fmt::CooMatrix b_coo(bundle.coo.cols(), out.cols);
    for (const fmt::CooEntry& entry : bundle.coo.entries()) {
        if (entry.row < out.cols)
            b_coo.add(entry.col, entry.row, entry.value);
    }
    b_coo.canonicalize();

    out.bCsc = fmt::CscMatrix::fromCoo(b_coo);
    fmt::CooMatrix bt_coo = fmt::transpose(
        fmt::CsrMatrix::fromCoo(b_coo)).toCoo();
    out.btBcsr = fmt::BcsrMatrix::fromCoo(bt_coo, 4, 4);
    core::HierarchyConfig cfg = hierarchy.empty()
        ? wl::paperHierarchy(bundle.spec)
        : core::HierarchyConfig::fromPaperNotation(hierarchy);
    out.btSmash = core::SmashMatrix::fromCoo(bt_coo, cfg);
    return out;
}

SimResult
simSpmm(SpmvScheme scheme, const MatrixBundle& a, const SpmmBundle& b)
{
    fmt::DenseMatrix c(a.coo.rows(), b.cols);
    switch (scheme) {
      case SpmvScheme::kTacoCsr:
      case SpmvScheme::kMklCsr:
        return measureSim([&](sim::SimExec& e) {
            kern::spmmCsr(a.csr, b.bCsc, c, e);
        });
      case SpmvScheme::kIdealCsr:
        return measureSim([&](sim::SimExec& e) {
            kern::spmmCsrIdeal(a.csr, b.bCsc, c, e);
        });
      case SpmvScheme::kTacoBcsr:
        return measureSim([&](sim::SimExec& e) {
            kern::spmmBcsr(a.bcsr, b.btBcsr, c, e);
        });
      case SpmvScheme::kSmashSw:
        return measureSim([&](sim::SimExec& e) {
            kern::spmmSmashSw(a.smash, b.btSmash, c, e);
        });
      case SpmvScheme::kSmashHw:
        return measureSim([&](sim::SimExec& e) {
            isa::Bmu bmu;
            kern::spmmSmashHw(a.smash, b.btSmash, bmu, c, e);
        });
    }
    SMASH_PANIC("unknown SpMM scheme");
}

double
nativeSpmmSeconds(SpmvScheme scheme, const MatrixBundle& a,
                  const SpmmBundle& b, int reps)
{
    fmt::DenseMatrix c(a.coo.rows(), b.cols);
    sim::NativeExec e;
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        double t = secondsOf([&] {
            switch (scheme) {
              case SpmvScheme::kTacoCsr:
              case SpmvScheme::kMklCsr:
                kern::spmmCsr(a.csr, b.bCsc, c, e);
                break;
              case SpmvScheme::kIdealCsr:
                kern::spmmCsrIdeal(a.csr, b.bCsc, c, e);
                break;
              case SpmvScheme::kTacoBcsr:
                kern::spmmBcsr(a.bcsr, b.btBcsr, c, e);
                break;
              case SpmvScheme::kSmashSw:
                kern::spmmSmashSw(a.smash, b.btSmash, c, e);
                break;
              case SpmvScheme::kSmashHw: {
                isa::Bmu bmu;
                kern::spmmSmashHw(a.smash, b.btSmash, bmu, c, e);
                break;
              }
            }
        });
        best = t < best ? t : best;
    }
    return best;
}

double
secondsOf(const std::function<void()>& fn)
{
    auto start = std::chrono::steady_clock::now();
    fn();
    auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

} // namespace smash::bench
