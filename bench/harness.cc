#include "harness.hh"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/logging.hh"
#include "engine/dispatch.hh"
#include "formats/convert.hh"

namespace smash::bench
{

namespace
{

[[noreturn]] void
usage(const char* prog, const std::string& complaint)
{
    std::cerr << prog << ": " << complaint << "\n"
              << "usage: " << prog
              << " [--threads N] [--exec {native,parallel,sim}]"
                 " [--pin]\n";
    std::exit(2);
}

} // namespace

const char*
toString(ExecKind kind)
{
    switch (kind) {
      case ExecKind::kNative:
        return "native";
      case ExecKind::kParallel:
        return "parallel";
      case ExecKind::kSim:
        return "sim";
    }
    SMASH_PANIC("unknown exec kind");
}

BenchCli
parseBenchCli(int argc, char** argv, const BenchCli& defaults)
{
    BenchCli cli = defaults;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--threads") == 0) {
            if (++i >= argc)
                usage(argv[0], "--threads needs a value");
            char* end = nullptr;
            const long n = std::strtol(argv[i], &end, 10);
            if (end == argv[i] || *end != '\0' || n < 1 || n > 1024)
                usage(argv[0], std::string("bad thread count '") +
                                   argv[i] + "'");
            cli.threads = static_cast<int>(n);
        } else if (std::strcmp(arg, "--exec") == 0) {
            if (++i >= argc)
                usage(argv[0], "--exec needs a value");
            if (std::strcmp(argv[i], "native") == 0)
                cli.exec = ExecKind::kNative;
            else if (std::strcmp(argv[i], "parallel") == 0)
                cli.exec = ExecKind::kParallel;
            else if (std::strcmp(argv[i], "sim") == 0)
                cli.exec = ExecKind::kSim;
            else
                usage(argv[0], std::string("bad exec kind '") +
                                   argv[i] + "'");
        } else if (std::strcmp(arg, "--pin") == 0) {
            cli.pin = true;
        } else {
            usage(argv[0], std::string("unknown flag '") + arg + "'");
        }
    }
    return cli;
}

namespace
{

/** Engine dispatch options equivalent to one bench scheme. */
eng::SpmvOptions
schemeOptions(SpmvScheme scheme, isa::Bmu* bmu)
{
    switch (scheme) {
      case SpmvScheme::kTacoCsr:
      case SpmvScheme::kTacoBcsr:
      case SpmvScheme::kSmashSw:
        return {eng::SpmvAlgo::kPlain, nullptr};
      case SpmvScheme::kMklCsr:
        return {eng::SpmvAlgo::kUnrolled, nullptr};
      case SpmvScheme::kIdealCsr:
        return {eng::SpmvAlgo::kIdeal, nullptr};
      case SpmvScheme::kSmashHw:
        return {eng::SpmvAlgo::kHw, bmu};
    }
    SMASH_PANIC("unknown scheme");
}

/** The encoding of @p bundle one scheme runs on. */
eng::MatrixRef
schemeMatrix(SpmvScheme scheme, const MatrixBundle& bundle)
{
    switch (scheme) {
      case SpmvScheme::kTacoCsr:
      case SpmvScheme::kMklCsr:
      case SpmvScheme::kIdealCsr:
        return bundle.csr;
      case SpmvScheme::kTacoBcsr:
        return bundle.bcsr;
      case SpmvScheme::kSmashSw:
      case SpmvScheme::kSmashHw:
        return bundle.smash;
    }
    SMASH_PANIC("unknown scheme");
}

} // namespace

void
preamble(const std::string& figure, const std::string& what, double scale)
{
    std::cout
        << "================================================================\n"
        << "SMASH reproduction — " << figure << "\n"
        << what << "\n"
        << "Simulated system (paper Table 2): 4-wide OOO core; "
        << "L1 32KB/8w/2cyc, L2 256KB/8w/8cyc, L3 1MB/16w/20cyc,\n"
        << "  64B lines, LRU, stride prefetchers; DDR4 1ch/16-bank "
        << "open-row (hit 110 / miss 170 cyc); MLP 4.\n"
        << "Workload scale factor: " << scale
        << " (override with SMASH_BENCH_SCALE in (0,1]; rows and nnz"
        << " shrink together, sparsity%/structure preserved)\n"
        << "================================================================\n";
}

MatrixBundle
buildBundle(const wl::MatrixSpec& spec,
            const std::vector<Index>& hierarchy)
{
    MatrixBundle b{spec, wl::generateMatrix(spec), {}, {}, {}, 0.0};
    b.csr = fmt::CsrMatrix::fromCoo(b.coo);
    b.bcsr = fmt::BcsrMatrix::fromCoo(b.coo, 4, 4);
    core::HierarchyConfig cfg = hierarchy.empty()
        ? wl::paperHierarchy(spec)
        : core::HierarchyConfig::fromPaperNotation(hierarchy);
    b.smash = core::SmashMatrix::fromCoo(b.coo, cfg);
    b.locality = b.smash.localityOfSparsity();
    return b;
}

namespace
{

std::vector<Value>
onesVector(Index n)
{
    return std::vector<Value>(static_cast<std::size_t>(n), Value(1));
}

template <typename Fn>
SimResult
measureSim(Fn&& fn)
{
    sim::Machine machine;
    sim::SimExec exec(machine);
    fn(exec);
    SimResult r;
    r.cycles = machine.core().cycles();
    r.instructions = machine.core().instructions();
    r.dramReads = machine.memory().dram().stats().reads;
    return r;
}

} // namespace

SimResult
simSpmv(SpmvScheme scheme, const MatrixBundle& bundle)
{
    const Index rows = bundle.coo.rows();
    const Index cols = bundle.coo.cols();
    eng::MatrixRef m = schemeMatrix(scheme, bundle);
    // Pre-pad outside the measured region so simulation bills no
    // host-side copy.
    std::vector<Value> x = kern::padVector(onesVector(cols), m.xLength());
    std::vector<Value> y(static_cast<std::size_t>(rows), Value(0));

    return measureSim([&](sim::SimExec& e) {
        isa::Bmu bmu;
        eng::spmv(m, x, y, e, schemeOptions(scheme, &bmu));
    });
}

double
nativeSpmvSeconds(SpmvScheme scheme, const MatrixBundle& bundle, int reps)
{
    const Index rows = bundle.coo.rows();
    const Index cols = bundle.coo.cols();
    eng::MatrixRef m = schemeMatrix(scheme, bundle);
    std::vector<Value> x = kern::padVector(onesVector(cols), m.xLength());
    std::vector<Value> y(static_cast<std::size_t>(rows), Value(0));
    sim::NativeExec e;
    isa::Bmu bmu;
    const eng::SpmvOptions opts = schemeOptions(scheme, &bmu);

    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        double t = secondsOf([&] { eng::spmv(m, x, y, e, opts); });
        best = t < best ? t : best;
    }
    return best;
}

SpmmBundle
buildSpmmBundle(const MatrixBundle& bundle,
                const std::vector<Index>& hierarchy)
{
    // B = A^T restricted to its first kSpmmCols columns: exercises
    // real index matching at tractable cost (DESIGN.md §5).
    SpmmBundle out;
    out.cols = std::min<Index>(kSpmmCols, bundle.coo.rows());
    fmt::CooMatrix b_coo(bundle.coo.cols(), out.cols);
    for (const fmt::CooEntry& entry : bundle.coo.entries()) {
        if (entry.row < out.cols)
            b_coo.add(entry.col, entry.row, entry.value);
    }
    b_coo.canonicalize();

    out.bCsc = fmt::CscMatrix::fromCoo(b_coo);
    fmt::CooMatrix bt_coo = fmt::transpose(
        fmt::CsrMatrix::fromCoo(b_coo)).toCoo();
    out.btBcsr = fmt::BcsrMatrix::fromCoo(bt_coo, 4, 4);
    core::HierarchyConfig cfg = hierarchy.empty()
        ? wl::paperHierarchy(bundle.spec)
        : core::HierarchyConfig::fromPaperNotation(hierarchy);
    out.btSmash = core::SmashMatrix::fromCoo(bt_coo, cfg);
    return out;
}

namespace
{

/** The (A, B-operand) encoding pair one SpMM scheme runs on. */
std::pair<eng::MatrixRef, eng::MatrixRef>
spmmOperands(SpmvScheme scheme, const MatrixBundle& a,
             const SpmmBundle& b)
{
    switch (scheme) {
      case SpmvScheme::kTacoCsr:
      case SpmvScheme::kMklCsr:
      case SpmvScheme::kIdealCsr:
        return {eng::MatrixRef(a.csr), eng::MatrixRef(b.bCsc)};
      case SpmvScheme::kTacoBcsr:
        return {eng::MatrixRef(a.bcsr), eng::MatrixRef(b.btBcsr)};
      case SpmvScheme::kSmashSw:
      case SpmvScheme::kSmashHw:
        return {eng::MatrixRef(a.smash), eng::MatrixRef(b.btSmash)};
    }
    SMASH_PANIC("unknown scheme");
}

} // namespace

SimResult
simSpmm(SpmvScheme scheme, const MatrixBundle& a, const SpmmBundle& b)
{
    fmt::DenseMatrix c(a.coo.rows(), b.cols);
    const auto [ma, mb] = spmmOperands(scheme, a, b);
    return measureSim([&, ma = ma, mb = mb](sim::SimExec& e) {
        isa::Bmu bmu;
        eng::spmm(ma, mb, c, e, schemeOptions(scheme, &bmu));
    });
}

double
nativeSpmmSeconds(SpmvScheme scheme, const MatrixBundle& a,
                  const SpmmBundle& b, int reps)
{
    fmt::DenseMatrix c(a.coo.rows(), b.cols);
    sim::NativeExec e;
    isa::Bmu bmu;
    const auto [ma, mb] = spmmOperands(scheme, a, b);
    const eng::SpmvOptions opts = schemeOptions(scheme, &bmu);
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        double t = secondsOf([&, ma = ma, mb = mb] {
            eng::spmm(ma, mb, c, e, opts);
        });
        best = t < best ? t : best;
    }
    return best;
}

double
secondsOf(const std::function<void()>& fn)
{
    auto start = std::chrono::steady_clock::now();
    fn();
    auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

} // namespace smash::bench
