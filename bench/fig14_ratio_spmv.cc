/**
 * @file
 * Reproduces paper Figure 14: sensitivity of SMASH SpMV speedup to
 * the Bitmap-0 : NZA compression ratio (2:1, 4:1, 8:1), normalized
 * to the 2:1 configuration, per matrix.
 *
 * Paper reference: 8:1 degrades performance by ~4% on average (up
 * to 13%) because the NZA stores more zeros, but clustered matrices
 * (M12, M14) *gain* from the higher ratio (up to +40% on M14).
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"

namespace smash::bench
{
namespace
{

int
run()
{
    const double scale = wl::benchScale(0.3);
    preamble("Figure 14",
             "SMASH SpMV speedup vs Bitmap-0 compression ratio "
             "(normalized to B0-2:1; hierarchy Mi.b2.b1 fixed)",
             scale);

    TextTable table("Figure 14 — SpMV sensitivity to Bitmap-0 ratio");
    table.setHeader({"matrix.config", "B0-2:1", "B0-4:1", "B0-8:1"});

    double sum4 = 0, sum8 = 0;
    int count = 0;
    for (const wl::MatrixSpec& full_spec : wl::table3Specs()) {
        wl::MatrixSpec spec = wl::scaleSpec(full_spec, scale);
        // Keep the caption's upper levels (b2.b1), sweep b0.
        std::vector<Index> upper(spec.paperConfig.begin(),
                                 spec.paperConfig.end() - 1);
        double cycles[3];
        int idx = 0;
        for (Index b0 : {2, 4, 8}) {
            std::vector<Index> cfg = upper;
            cfg.push_back(b0);
            MatrixBundle bundle = buildBundle(spec, cfg);
            cycles[idx++] = simSpmv(SpmvScheme::kSmashHw, bundle).cycles;
        }
        std::string label = spec.name + "." + std::to_string(upper[0]) +
            "." + std::to_string(upper[1]);
        table.addRow({label, "1.00",
                      formatFixed(cycles[0] / cycles[1], 2),
                      formatFixed(cycles[0] / cycles[2], 2)});
        sum4 += cycles[0] / cycles[1];
        sum8 += cycles[0] / cycles[2];
        ++count;
    }
    table.addRow({"AVG (paper 8:1: ~0.96)", "1.00",
                  formatFixed(sum4 / count, 2),
                  formatFixed(sum8 / count, 2)});
    table.print(std::cout);
    return 0;
}

} // namespace
} // namespace smash::bench

int
main()
{
    return smash::bench::run();
}
