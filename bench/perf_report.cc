/**
 * @file
 * Machine-readable performance baseline: runs the steady-state
 * SpMV / batched-SpMV / SpMM / serving suite and emits one JSON
 * document of {bench, format, threads, ns/op | req/s} records —
 * the repo's perf trajectory data (BENCH_<pr>.json), so later PRs
 * can be gated on real numbers instead of prose.
 *
 *   --threads N   pool size for the parallel and serving rows
 *                 (default 8)
 *   --pin         pin pool workers (sticky partitions stay
 *                 core-resident)
 *   --smoke       tiny workload + sanity gates (CI): exits 1 on
 *                 oracle divergence or a nonsensical record
 *   --isa LEVEL   force the kernel ISA level (scalar|avx2|avx512);
 *                 exits 1 on a level the host cannot execute
 *   --shards K    append sharded-vs-unsharded SpMV A/B rows: the
 *                 same workload served scatter–gather through a
 *                 K-band shard::ShardedMatrix (per-shard formats,
 *                 NUMA-subset first-touch) vs the monolithic
 *                 engine call; speedup = t_unsharded / t_sharded
 *   --out FILE    write the JSON there instead of stdout
 *   --metrics     after the suite, print the Prometheus text
 *                 exposition of every smash_* metric the run
 *                 produced (pipeline stage histograms, batcher
 *                 flush counters, plan-cache hit/miss, per-ISA
 *                 kernel invocation counts)
 *   SMASH_BENCH_SCALE scales the workload like every other bench
 *
 * The suite always appends a "spmv_trace_ab" row timing the serial
 * CSR SpMV with tracing runtime-disabled vs runtime-enabled; its
 * speedup field (t_off / t_on) documents the cost of leaving
 * SMASH_TRACE=1 on in production (target: within noise of 1.0).
 *
 * The v2 schema adds a "cpu" block (probed features, detected and
 * active ISA level) and per-row "isa"/"dispatch" fields, so A/B
 * comparisons across BENCH_<pr>.json files can tell a hardware
 * delta from a kernel delta.
 *
 * Every engine row computes through SparseMatrixAny holders, so
 * repetitions after the first run plan-cached and arena-warm — the
 * steady-state regime the serving layer lives in.
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cpu_features.hh"
#include "common/parallel_exec.hh"
#include "engine/dispatch.hh"
#include "formats/convert.hh"
#include "harness.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/session.hh"
#include "shard/sharded_matrix.hh"
#include "workloads/matrix_gen.hh"

namespace smash::bench
{
namespace
{

/** One emitted record; unset metrics stay negative and are elided. */
struct Record
{
    std::string bench;
    std::string format;
    int threads = 0;
    double nsPerOp = -1;
    double reqPerS = -1;
    double speedup = -1; //!< vs the suite's named baseline row
    std::string isa;      //!< kernel table the row dispatched to
    std::string dispatch; //!< driver shape (serial/rows/tiled/...)
};

void
writeJson(std::ostream& os, const std::vector<Record>& records,
          int threads, bool pin, double scale)
{
    const simd::CpuFeatures& cpu = simd::cpuFeatures();
    os << "{\n"
       << "  \"schema\": \"smash-perf-v2\",\n"
       << "  \"suite\": \"perf_report\",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"pinned\": " << (pin ? "true" : "false") << ",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"cpu\": {\"popcnt\": " << (cpu.popcnt ? "true" : "false")
       << ", \"avx2\": " << (cpu.avx2 ? "true" : "false")
       << ", \"bmi2\": " << (cpu.bmi2 ? "true" : "false")
       << ", \"avx512f\": " << (cpu.avx512f ? "true" : "false")
       << ", \"detected\": \""
       << simd::toString(simd::detectedIsaLevel())
       << "\", \"active\": \""
       << simd::toString(simd::activeIsaLevel()) << "\"},\n"
       << "  \"results\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const Record& r = records[i];
        os << "    {\"bench\": \"" << r.bench << "\", \"format\": \""
           << r.format << "\", \"threads\": " << r.threads;
        if (r.nsPerOp >= 0)
            os << ", \"ns_per_op\": " << formatFixed(r.nsPerOp, 1);
        if (r.reqPerS >= 0)
            os << ", \"req_per_s\": " << formatFixed(r.reqPerS, 0);
        if (r.speedup >= 0)
            os << ", \"speedup\": " << formatFixed(r.speedup, 3);
        if (!r.isa.empty())
            os << ", \"isa\": \"" << r.isa << "\"";
        if (!r.dispatch.empty())
            os << ", \"dispatch\": \"" << r.dispatch << "\"";
        os << "}" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

/** The active level's name, stamped on every record. */
std::string
activeIsaName()
{
    return simd::toString(simd::activeIsaLevel());
}

double
maxAbsDiff(const std::vector<Value>& a, const std::vector<Value>& b)
{
    double m = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(static_cast<double>(a[i] - b[i])));
    return m;
}

/** Best-of-reps wall clock of fn(). */
template <typename Fn>
double
bestSeconds(int reps, Fn&& fn)
{
    double best = 1e30;
    for (int r = 0; r < reps; ++r)
        best = std::min(best, secondsOf(fn));
    return best;
}

int
run(int argc, char** argv)
{
    bool smoke = false;
    bool metrics = false;
    int shards = 0;
    std::string out_path;
    std::vector<char*> args;
    for (int i = 0; i < argc; ++i) {
        if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (i > 0 && std::strcmp(argv[i], "--metrics") == 0) {
            metrics = true;
        } else if (i > 0 && std::strcmp(argv[i], "--shards") == 0 &&
                   i + 1 < argc) {
            shards = std::max(0, std::atoi(argv[++i]));
        } else if (i > 0 && std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            out_path = argv[++i];
        } else if (i > 0 && std::strcmp(argv[i], "--isa") == 0 &&
                   i + 1 < argc) {
            simd::IsaLevel level;
            const char* name = argv[++i];
            if (!simd::parseIsaLevel(name, level)) {
                std::cerr << "--isa " << name
                          << ": expected scalar|avx2|avx512\n";
                return 1;
            }
            if (!simd::setIsaLevel(level)) {
                std::cerr << "--isa " << name
                          << ": this host supports at most "
                          << simd::toString(simd::detectedIsaLevel())
                          << "\n";
                return 1;
            }
        } else {
            args.push_back(argv[i]);
        }
    }
    BenchCli defaults;
    defaults.threads = 8;
    const BenchCli cli =
        parseBenchCli(static_cast<int>(args.size()), args.data(),
                      defaults);
    const double scale = wl::benchScale(smoke ? 0.02 : 0.25);

    const Index rows = std::max<Index>(
        smoke ? 2048 : 4096, static_cast<Index>(32768 * scale));
    const Index nnz = std::max<Index>(
        smoke ? 65536 : 131072, static_cast<Index>(1250000 * scale));
    fmt::CooMatrix coo = wl::genClustered(rows, rows, nnz, 8, 97);

    eng::SparseMatrixAny csr(fmt::CsrMatrix::fromCoo(coo));
    eng::SparseMatrixAny smash(core::SmashMatrix::fromCoo(
        coo, core::HierarchyConfig::fromPaperNotation({16, 4, 2})));

    std::vector<Value> x(static_cast<std::size_t>(rows), Value(1));
    for (Index i = 0; i < rows; ++i)
        x[static_cast<std::size_t>(i)] += Value(i % 9) * Value(0.125);
    std::vector<Value> x_pad =
        kern::padVector(x, smash.xLength());

    const int reps = smoke ? 3 : 5;
    std::vector<Record> records;
    std::vector<Value> oracle(static_cast<std::size_t>(rows),
                              Value(0));
    {
        sim::NativeExec ne;
        eng::spmv(csr.ref(), x, oracle, ne);
    }
    double max_err = 0;

    // --- SpMV ns/op: serial and plan-cached parallel rows. ---
    const auto spmvRow = [&](const eng::SparseMatrixAny& m,
                             const std::vector<Value>& xm,
                             const std::string& fmt_name, int threads) {
        std::vector<Value> y(static_cast<std::size_t>(rows), Value(0));
        double seconds = 0;
        if (threads == 0) {
            sim::NativeExec ne;
            seconds = bestSeconds(reps, [&] {
                std::fill(y.begin(), y.end(), Value(0));
                eng::spmv(m.ref(), xm, y, ne);
            });
        } else {
            exec::ParallelExec pe(
                exec::ThreadPool::Options{threads, cli.pin});
            eng::spmv(m.ref(), xm, y, pe); // warm plans + arenas
            seconds = bestSeconds(reps, [&] {
                std::fill(y.begin(), y.end(), Value(0));
                eng::spmv(m.ref(), xm, y, pe);
            });
        }
        max_err = std::max(max_err, maxAbsDiff(y, oracle));
        Record r;
        r.bench = "spmv";
        r.format = fmt_name;
        r.threads = threads == 0 ? 1 : threads;
        if (threads == 0)
            r.format += "_serial";
        r.nsPerOp = seconds * 1e9;
        r.isa = activeIsaName();
        r.dispatch = threads == 0 ? "serial"
                     : fmt_name == "smash" ? "word_walk"
                                           : "rows";
        records.push_back(r);
    };
    spmvRow(csr, x, "csr", 0);
    spmvRow(smash, x_pad, "smash", 0);
    std::vector<int> counts;
    for (int t : {1, 2, cli.threads})
        if (std::find(counts.begin(), counts.end(), t) ==
            counts.end())
            counts.push_back(t); // no duplicate rows at --threads 1/2
    for (int t : counts) {
        spmvRow(csr, x, "csr", t);
        spmvRow(smash, x_pad, "smash", t);
    }

    // --- Batched SpMV (nrhs 8) ns/op per RHS. ---
    {
        const Index nrhs = 8;
        fmt::DenseMatrix xb(csr.xLength(), nrhs);
        for (Index r = 0; r < nrhs; ++r)
            for (Index j = 0; j < rows; ++j)
                xb.at(j, r) = x[static_cast<std::size_t>(j)];
        fmt::DenseMatrix yb(rows, nrhs);
        exec::ParallelExec pe(
            exec::ThreadPool::Options{cli.threads, cli.pin});
        eng::spmvBatch(csr.ref(), xb, yb, pe); // warm
        const double seconds = bestSeconds(reps, [&] {
            std::fill(yb.data().begin(), yb.data().end(), Value(0));
            eng::spmvBatch(csr.ref(), xb, yb, pe);
        });
        Record r;
        r.bench = "spmv_batch8";
        r.format = "csr";
        r.threads = cli.threads;
        r.nsPerOp = seconds * 1e9 / static_cast<double>(nrhs);
        r.isa = activeIsaName();
        r.dispatch = "rows";
        records.push_back(r);
        for (Index i = 0; i < rows; ++i)
            max_err = std::max(
                max_err,
                std::abs(static_cast<double>(
                    yb.at(i, 0) -
                    oracle[static_cast<std::size_t>(i)])));
    }

    // --- Cache-blocked tiled CSR A/B (tiled vs untiled walk). ---
    // The workload matrix is forced through the tiled driver (the
    // auto heuristic only fires once x overflows L2, which a
    // CI-sized run never reaches): the speedup field is the honest
    // untiled/tiled ratio at each thread count.
    {
        eng::setTileCols(std::max<Index>(64, rows / 8));
        std::vector<Value> y(static_cast<std::size_t>(rows), Value(0));
        std::vector<int> tiled_counts;
        for (int t : {1, cli.threads})
            if (std::find(tiled_counts.begin(), tiled_counts.end(),
                          t) == tiled_counts.end())
                tiled_counts.push_back(t);
        for (int t : tiled_counts) {
            exec::ParallelExec pe(
                exec::ThreadPool::Options{t, cli.pin});
            eng::setTileMode(eng::TileMode::kOff);
            eng::spmv(csr.ref(), x, y, pe); // warm
            const double untiled = bestSeconds(reps, [&] {
                std::fill(y.begin(), y.end(), Value(0));
                eng::spmv(csr.ref(), x, y, pe);
            });
            eng::setTileMode(eng::TileMode::kForce);
            eng::spmv(csr.ref(), x, y, pe); // warm the tile plan
            const double tiled = bestSeconds(reps, [&] {
                std::fill(y.begin(), y.end(), Value(0));
                eng::spmv(csr.ref(), x, y, pe);
            });
            max_err = std::max(max_err, maxAbsDiff(y, oracle));
            Record r;
            r.bench = "spmv_tiled";
            r.format = "csr";
            r.threads = t;
            r.nsPerOp = tiled * 1e9;
            r.speedup = untiled / tiled;
            r.isa = activeIsaName();
            r.dispatch = "tiled";
            records.push_back(r);
        }
        eng::setTileMode(eng::TileMode::kAuto);
        eng::setTileCols(0);
    }

    // --- Sharded vs unsharded SpMV A/B (--shards K). ---
    // The same workload, scatter–gathered through a K-band
    // ShardedMatrix (per-shard format selection, per-shard plan
    // caches, NUMA-subset first-touch) against the monolithic
    // engine call at each thread count. speedup is the honest
    // t_unsharded / t_sharded ratio.
    if (shards > 0) {
        const shard::ShardedMatrix sm(
            "bench", csr.as<fmt::CsrMatrix>(),
            static_cast<Index>(shards));
        std::vector<Value> y(static_cast<std::size_t>(rows), Value(0));
        std::vector<int> shard_counts;
        for (int t : {1, cli.threads})
            if (std::find(shard_counts.begin(), shard_counts.end(),
                          t) == shard_counts.end())
                shard_counts.push_back(t);
        for (int t : shard_counts) {
            exec::ThreadPool pool(
                exec::ThreadPool::Options{t, cli.pin});
            exec::ParallelExec pe(pool);
            eng::spmv(csr.ref(), x, y, pe); // warm plans + arenas
            const double unsharded = bestSeconds(reps, [&] {
                std::fill(y.begin(), y.end(), Value(0));
                eng::spmv(csr.ref(), x, y, pe);
            });
            std::fill(y.begin(), y.end(), Value(0));
            sm.spmv(x, y, &pool); // warm per-shard plans
            const double sharded = bestSeconds(reps, [&] {
                std::fill(y.begin(), y.end(), Value(0));
                sm.spmv(x, y, &pool);
            });
            max_err = std::max(max_err, maxAbsDiff(y, oracle));
            Record r;
            r.bench = "spmv_sharded";
            r.format = "shards" + std::to_string(shards);
            r.threads = t;
            r.nsPerOp = sharded * 1e9;
            r.speedup = unsharded / sharded;
            r.isa = activeIsaName();
            r.dispatch = "scatter_gather";
            records.push_back(r);
        }
    }

    // --- SpMM (CSR x CSC, 32 columns) ns/op. ---
    {
        const Index bcols = 32;
        fmt::CooMatrix bcoo =
            wl::genUniform(rows, bcols, rows * 2, 131);
        fmt::CscMatrix bcsc = fmt::CscMatrix::fromCoo(bcoo);
        eng::SparseMatrixAny bany(std::move(bcsc));
        fmt::DenseMatrix c(rows, bcols);
        exec::ParallelExec pe(
            exec::ThreadPool::Options{cli.threads, cli.pin});
        eng::spmm(csr.ref(), bany.ref(), c, pe); // warm
        const double seconds = bestSeconds(reps, [&] {
            std::fill(c.data().begin(), c.data().end(), Value(0));
            eng::spmm(csr.ref(), bany.ref(), c, pe);
        });
        Record r;
        r.bench = "spmm";
        r.format = "csr";
        r.threads = cli.threads;
        r.nsPerOp = seconds * 1e9;
        r.isa = activeIsaName();
        r.dispatch = "row_col_tiles";
        records.push_back(r);
    }

    // --- Serving req/s: individual vs batch-8 sessions. ---
    double rps_ind = 0;
    double rps_b8 = 0;
    {
        serve::MatrixRegistry registry;
        registry.put("ranker", coo);
        const Index nreq = std::max<Index>(
            smoke ? 48 : 64, static_cast<Index>(2048 * scale));
        const auto servingRun = [&](Index max_batch) {
            serve::SessionOptions opts;
            opts.threads = cli.threads;
            opts.maxBatch = max_batch;
            opts.pinWorkers = cli.pin;
            serve::Session session(registry, opts);
            std::vector<
                std::future<serve::Result<std::vector<Value>>>>
                futures;
            futures.reserve(static_cast<std::size_t>(nreq));
            const double seconds = secondsOf([&] {
                for (Index r = 0; r < nreq; ++r)
                    futures.push_back(session.submit(
                        serve::SpmvRequest{"ranker", x}));
                for (auto& f : futures)
                    f.wait();
            });
            for (auto& f : futures) {
                serve::Result<std::vector<Value>> result = f.get();
                if (!result.ok()) {
                    std::cerr << "serving request failed: "
                              << result.status().toString() << "\n";
                    max_err = 1e30;
                    continue;
                }
                max_err = std::max(
                    max_err, maxAbsDiff(result.value(), oracle));
            }
            session.drain();
            return static_cast<double>(nreq) / seconds;
        };
        servingRun(8); // warm the registry's encoding + plans
        rps_ind = servingRun(1);
        rps_b8 = servingRun(8);
        Record ind;
        ind.bench = "serving_spmv";
        ind.format = "individual";
        ind.threads = cli.threads;
        ind.reqPerS = rps_ind;
        ind.speedup = 1.0;
        ind.isa = activeIsaName();
        records.push_back(ind);
        Record b8;
        b8.bench = "serving_spmv";
        b8.format = "batch8";
        b8.threads = cli.threads;
        b8.reqPerS = rps_b8;
        b8.speedup = rps_b8 / rps_ind;
        b8.isa = activeIsaName();
        records.push_back(b8);
    }

    // --- Tracing overhead A/B on the serial CSR SpMV row. ---
    // Same workload as the spmv/csr_serial row; the only variable
    // is the runtime trace toggle (one relaxed load per guarded
    // site, plus one ring write per dispatch when on). speedup =
    // t_off / t_on, so a value near 1.0 certifies SMASH_TRACE=1 is
    // safe to leave enabled in production serving.
    {
        const bool was_on = obs::traceEnabled();
        std::vector<Value> y(static_cast<std::size_t>(rows), Value(0));
        sim::NativeExec ne;
        const auto once = [&] {
            std::fill(y.begin(), y.end(), Value(0));
            eng::spmv(csr.ref(), x, y, ne);
        };
        // Interleave the off/on measurements (A B A B ...) so clock
        // drift, frequency transitions, and cache-state trends hit
        // both sides equally instead of biasing whichever ran last.
        obs::setTraceEnabled(true);
        once(); // warm the instrumented path (statics, ring)
        obs::setTraceEnabled(false);
        once();
        double t_off = 1e30;
        double t_on = 1e30;
        for (int r = 0; r < reps * 2; ++r) {
            obs::setTraceEnabled(false);
            t_off = std::min(t_off, secondsOf(once));
            obs::setTraceEnabled(true);
            t_on = std::min(t_on, secondsOf(once));
        }
        obs::setTraceEnabled(was_on);
        max_err = std::max(max_err, maxAbsDiff(y, oracle));
        Record r;
        r.bench = "spmv_trace_ab";
        r.format = "csr_serial";
        r.threads = 1;
        r.nsPerOp = t_on * 1e9;
        r.speedup = t_off / t_on;
        r.isa = activeIsaName();
        r.dispatch = "serial";
        records.push_back(r);
    }

    std::ostringstream json;
    writeJson(json, records, cli.threads, cli.pin, scale);
    if (out_path.empty()) {
        std::cout << json.str();
    } else {
        std::ofstream out(out_path);
        if (!out) {
            std::cerr << "cannot write " << out_path << "\n";
            return 1;
        }
        out << json.str();
        std::cout << "wrote " << records.size() << " records to "
                  << out_path << "\n";
    }

    if (metrics) {
        // The whole suite just exercised the instrumented paths, so
        // the exposition carries real steady-state numbers:
        // pipeline stage histograms, batcher flush counters,
        // plan-cache hit/miss, per-ISA kernel invocations.
        std::cout << "# --- smash metrics exposition ---\n";
        obs::MetricsRegistry::global().exportText(std::cout);
    }

    if (max_err > 1e-9) {
        std::cerr << "perf_report: results diverge from the serial "
                     "oracle ("
                  << max_err << ")!\n";
        return 1;
    }
    if (smoke) {
        // Sanity gates only — tiny CI workloads are too noisy for a
        // throughput floor, but a zero/negative record or a
        // divergent oracle is a real failure.
        for (const Record& r : records) {
            if ((r.nsPerOp < 0 && r.reqPerS <= 0) ||
                (r.nsPerOp == 0)) {
                std::cerr << "perf_report: nonsensical record for "
                          << r.bench << "/" << r.format << "\n";
                return 1;
            }
        }
    }
    return 0;
}

} // namespace
} // namespace smash::bench

int
main(int argc, char** argv)
{
    return smash::bench::run(argc, argv);
}
